//! Full mixed-signal platform co-simulation.
//!
//! This is the paper's Fig. 2 instantiated for the gyro case study
//! (§4.2): MEMS ring → charge amplifiers → anti-alias filters → PGAs →
//! SAR ADCs → hardwired DSP chain → drive/rebalance/rate DACs → back to the
//! MEMS electrodes, with the 8051 monitoring CPU on its bridge and the JTAG
//! chain configuring the AFE. The multi-rate schedule mirrors the hardware:
//! the gyro ODE integrates at `dsp_rate × analog_oversample` (the
//! VHDL-AMS/analog solver), the DSP at `dsp_rate`, the CPU at its own
//! 20 MHz/12 machine-cycle rate, and register synchronization at a slow
//! monitoring cadence.

use crate::chain::{ChainConfig, ChainDrive, ConditioningChain, SenseMode};
use crate::firmware;
use crate::registers::{
    shared_afe_regs, shared_dsp_regs, AfeRegsJtag, DspReg, DspRegsBus16, DspRegsJtag,
    SharedAfeRegs, SharedDspRegs,
};
use crate::supervisor::{MonitorSample, SafetySupervisor, SupervisorConfig, SupervisorState};
use ascp_afe::adc::{AdcConfig, AdcFault, AdcLanes, SarAdc};
use ascp_afe::amp::{ChargeAmplifier, ChargeLanes, Pga, PgaLanes};
use ascp_afe::dac::{Dac, DacConfig, DacLanes};
use ascp_afe::filter::{AafLanes, AntiAliasFilter};
use ascp_afe::refs::VoltageReference;
use ascp_afe::regs::AfeReg;
use ascp_dsp::demod::{DemodLanes, IqSample};
use ascp_dsp::fixed::Q15;
use ascp_jtag::chain::JtagChain;
use ascp_jtag::device::RegAccessDevice;
use ascp_mcu8051::cpu::Cpu;
use ascp_mcu8051::periph::SystemBus;
use ascp_mems::gyro::GyroLanes;
use ascp_sim::fault::{AdcChannel, FaultEdge, FaultKind, FaultPlan};
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};
use ascp_sim::telemetry::trace::{SpanId, TraceRecorder};
use ascp_sim::telemetry::{
    CaptureBundle, Event, FlightRecorder, SignalFrame, Telemetry, TelemetryConfig,
    TelemetrySnapshot,
};
use ascp_sim::trace::{Trace, TraceSet};
use ascp_sim::units::{Celsius, DegPerSec, Hertz, Seconds, Volts};

/// Platform build variant (paper §4.2): the 'ASIC' version boots monitor
/// firmware from ROM; the 'prototype' version boots a UART down-loader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlatformVariant {
    /// ROM-resident monitor firmware.
    #[default]
    Asic,
    /// 1 KiB boot ROM + program download over UART.
    Prototype,
}

/// Full platform configuration.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Sensor under conditioning.
    pub gyro: ascp_mems::gyro::GyroParams,
    /// DSP sample rate.
    pub dsp_rate: Hertz,
    /// Analog solver substeps per DSP sample.
    pub analog_oversample: u32,
    /// ADC settings (applied to both acquisition channels).
    pub adc: AdcConfig,
    /// Primary-drive DAC settings.
    pub drive_dac: DacConfig,
    /// Rebalance (force-feedback) DAC settings. Defaults to 16 bits: in
    /// closed loop the feedback DAC's LSB bounds the rate resolution
    /// (≈1.8 °/s/LSB at 12 bits), so the force path gets the finest DAC in
    /// the IP portfolio.
    pub rebalance_dac: DacConfig,
    /// Rate-output DAC settings (2.5 V mid-scale, 5 mV/°/s at ±500 FS).
    pub rate_dac: DacConfig,
    /// Charge-amplifier gain, volts per displacement unit (both channels).
    pub charge_gain: f64,
    /// Secondary-channel PGA gain code (ladder index, ×2^code).
    pub secondary_pga_code: u8,
    /// Anti-alias corner (Hz).
    pub aaf_corner: f64,
    /// Sense-path mode.
    pub mode: SenseMode,
    /// Build variant.
    pub variant: PlatformVariant,
    /// Run the 8051 monitor in the loop.
    pub cpu_enabled: bool,
    /// Firmware override (defaults to the built-in monitor).
    pub firmware: Option<Vec<u8>>,
    /// Master noise seed.
    pub seed: u64,
    /// Observability settings (metrics, events, stage profiling).
    pub telemetry: TelemetryConfig,
    /// Scheduled fault injections (empty = a single branch per tick).
    pub faults: FaultPlan,
    /// Safety-supervisor settings (FSM, plausibility checks, probes).
    pub supervisor: SupervisorConfig,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self {
            gyro: ascp_mems::gyro::GyroParams::default(),
            dsp_rate: Hertz(250_000.0),
            // One exact-propagator step per DSP tick. The RK4 solver needed
            // 4 substeps to keep its truncation error below the Brownian
            // floor; the ZOH propagator is exact for the held electrode
            // forces at any step size (see DESIGN.md, analog solver).
            analog_oversample: 1,
            adc: AdcConfig::default(),
            drive_dac: DacConfig::default(),
            rebalance_dac: DacConfig {
                bits: 16,
                ..DacConfig::default()
            },
            rate_dac: DacConfig {
                midscale: Volts(2.5),
                ..DacConfig::default()
            },
            charge_gain: 4.0,
            secondary_pga_code: 9,
            aaf_corner: 30_000.0,
            mode: SenseMode::OpenLoop,
            variant: PlatformVariant::Asic,
            cpu_enabled: true,
            firmware: None,
            seed: 0x9a7f_03e1,
            telemetry: TelemetryConfig::default(),
            faults: FaultPlan::new(),
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// A platform configuration rejected by [`PlatformConfig::validate`] /
/// [`PlatformConfigBuilder::build`], naming the offending field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Wraps a validation message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The human-readable reason the configuration was rejected.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid platform config: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

impl From<String> for ConfigError {
    fn from(message: String) -> Self {
        Self::new(message)
    }
}

impl PlatformConfig {
    /// Starts a fluent builder seeded with the paper's case-study defaults.
    ///
    /// The builder is the supported way to construct a non-default
    /// configuration; it validates ranges on [`PlatformConfigBuilder::build`]
    /// instead of panicking later inside [`Platform::new`].
    #[must_use]
    pub fn builder() -> PlatformConfigBuilder {
        PlatformConfigBuilder::default()
    }

    /// Validates cross-component consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.gyro.validate()?;
        self.adc.validate()?;
        self.drive_dac.validate()?;
        self.rebalance_dac.validate()?;
        self.rate_dac.validate()?;
        if !(self.dsp_rate.0 > 0.0) {
            return Err(ConfigError::new("dsp_rate must be positive"));
        }
        if self.analog_oversample == 0 {
            return Err(ConfigError::new("analog_oversample must be non-zero"));
        }
        if self.charge_gain <= 0.0 {
            return Err(ConfigError::new("charge_gain must be positive"));
        }
        if usize::from(self.secondary_pga_code) >= Pga::GAIN_LADDER.len() {
            return Err(ConfigError::new(format!(
                "secondary_pga_code {} outside the gain ladder",
                self.secondary_pga_code
            )));
        }
        Ok(())
    }

    /// Design-time dimensioning: the open-loop gain from demodulated Q15 to
    /// rate-output Q15 (FS = ±500 °/s), derived from the component values —
    /// the paper's MATLAB "sub-blocks dimensioning" step.
    #[must_use]
    pub fn open_loop_rate_gain(&self) -> f64 {
        let gyro = ascp_mems::gyro::RingGyro::new(self.gyro);
        let mech = gyro.open_loop_scale(); // displacement per °/s
        let pga = Pga::GAIN_LADDER[self.secondary_pga_code as usize];
        let per_dps = mech * self.charge_gain / self.adc.vref.0 * pga;
        (1.0 / 500.0) / per_dps
    }

    /// Closed-loop dimensioning: °/s per unit rebalance command, scaled to
    /// the ±500 °/s output format.
    #[must_use]
    pub fn closed_loop_rate_gain(&self) -> f64 {
        let w = self.gyro.f0.angular();
        let force_per_dps =
            2.0 * self.gyro.angular_gain * 1f64.to_radians() * w * self.gyro.nominal_amplitude;
        let dps_per_cmd = self.gyro.force_scale / force_per_dps;
        dps_per_cmd / 500.0
    }
}

/// Fluent builder for [`PlatformConfig`] — the supported construction path
/// for every non-default configuration.
///
/// Field-by-field mutation of `PlatformConfig::default()` used to be the
/// house style for platform setup; it scattered copy-pasted override
/// blocks (and duplicated `quiet()` helpers) across every bench bin and
/// test. The builder centralizes those idioms as named setters and moves
/// range validation to [`PlatformConfigBuilder::build`], which returns a
/// [`ConfigError`] instead of panicking inside [`Platform::new`].
///
/// # Example
///
/// ```
/// use ascp_core::platform::PlatformConfig;
///
/// let cfg = PlatformConfig::builder()
///     .quiet()            // low sensor noise, monitor CPU off
///     .adc_bits(14)
///     .seed(7)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(cfg.adc.bits, 14);
/// assert!(!cfg.cpu_enabled);
/// assert!(PlatformConfig::builder().analog_oversample(0).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PlatformConfigBuilder {
    config: PlatformConfig,
}

impl PlatformConfigBuilder {
    /// The test/bench house configuration: quiet sensor
    /// (`noise_density = 0.005`) with the monitor CPU off. Replaces the
    /// per-file "quiet config" helpers the tests and bench bins used to
    /// copy around.
    #[must_use]
    pub fn quiet(mut self) -> Self {
        self.config.gyro.noise_density = 0.005;
        self.config.cpu_enabled = false;
        self
    }

    /// Replaces the sensor parameter set wholesale.
    #[must_use]
    pub fn gyro(mut self, gyro: ascp_mems::gyro::GyroParams) -> Self {
        self.config.gyro = gyro;
        self
    }

    /// Sensor rate-noise density (°/s/√Hz).
    #[must_use]
    pub fn noise_density(mut self, dps_rt_hz: f64) -> Self {
        self.config.gyro.noise_density = dps_rt_hz;
        self
    }

    /// Resonator Q temperature coefficient (1/°C).
    #[must_use]
    pub fn tc_q(mut self, tc: f64) -> Self {
        self.config.gyro.tc_q = tc;
        self
    }

    /// Quadrature temperature coefficient (°/s/°C).
    #[must_use]
    pub fn quadrature_tc(mut self, tc: f64) -> Self {
        self.config.gyro.quadrature_tc = tc;
        self
    }

    /// Sense-electrode cubic nonlinearity coefficient.
    #[must_use]
    pub fn sense_pickoff_nl(mut self, coeff: f64) -> Self {
        self.config.gyro.sense_pickoff_nl = coeff;
        self
    }

    /// DSP sample rate.
    #[must_use]
    pub fn dsp_rate(mut self, rate: Hertz) -> Self {
        self.config.dsp_rate = rate;
        self
    }

    /// Analog solver substeps per DSP sample.
    #[must_use]
    pub fn analog_oversample(mut self, substeps: u32) -> Self {
        self.config.analog_oversample = substeps;
        self
    }

    /// Replaces the acquisition-ADC settings (both channels).
    #[must_use]
    pub fn adc(mut self, adc: AdcConfig) -> Self {
        self.config.adc = adc;
        self
    }

    /// Acquisition-converter resolution (both channels).
    #[must_use]
    pub fn adc_bits(mut self, bits: u32) -> Self {
        self.config.adc.bits = bits;
        self
    }

    /// Charge-amplifier gain (V per displacement unit, both channels).
    #[must_use]
    pub fn charge_gain(mut self, gain: f64) -> Self {
        self.config.charge_gain = gain;
        self
    }

    /// Secondary-channel PGA gain code (ladder index).
    #[must_use]
    pub fn secondary_pga_code(mut self, code: u8) -> Self {
        self.config.secondary_pga_code = code;
        self
    }

    /// Anti-alias filter corner (Hz).
    #[must_use]
    pub fn aaf_corner(mut self, hz: f64) -> Self {
        self.config.aaf_corner = hz;
        self
    }

    /// Sense-path mode (open loop or force rebalance).
    #[must_use]
    pub fn loop_mode(mut self, mode: SenseMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Build variant (ASIC ROM monitor vs UART-boot prototype).
    #[must_use]
    pub fn variant(mut self, variant: PlatformVariant) -> Self {
        self.config.variant = variant;
        self
    }

    /// Runs (or parks) the 8051 monitor in the loop.
    #[must_use]
    pub fn cpu_enabled(mut self, enabled: bool) -> Self {
        self.config.cpu_enabled = enabled;
        self
    }

    /// Overrides the monitor firmware image.
    #[must_use]
    pub fn firmware(mut self, image: Vec<u8>) -> Self {
        self.config.firmware = Some(image);
        self
    }

    /// Master noise seed (every component derives its stream from this).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Observability settings.
    #[must_use]
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.config.telemetry = telemetry;
        self
    }

    /// Arms the flight recorder (a sub-field of the telemetry settings;
    /// like all observability it never affects simulation arithmetic).
    #[must_use]
    pub fn recorder(mut self, recorder: ascp_sim::telemetry::RecorderConfig) -> Self {
        self.config.telemetry.recorder = recorder;
        self
    }

    /// Replaces the scheduled fault plan wholesale.
    #[must_use]
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.config.faults = faults;
        self
    }

    /// Schedules a one-shot fault window `[start_s, start_s + duration_s)`.
    #[must_use]
    pub fn fault_one_shot(mut self, kind: FaultKind, start_s: f64, duration_s: f64) -> Self {
        self.config.faults.one_shot(kind, start_s, duration_s);
        self
    }

    /// Schedules a fault from `start_s` to the end of the run.
    #[must_use]
    pub fn fault_permanent(mut self, kind: FaultKind, start_s: f64) -> Self {
        self.config.faults.permanent(kind, start_s);
        self
    }

    /// Schedules deterministic intermittent bursts of `kind`.
    #[must_use]
    pub fn fault_intermittent(
        mut self,
        kind: FaultKind,
        start_s: f64,
        end_s: f64,
        period_s: f64,
        burst_s: f64,
        seed: u64,
    ) -> Self {
        self.config
            .faults
            .intermittent(kind, start_s, end_s, period_s, burst_s, seed);
        self
    }

    /// Replaces the safety-supervisor settings wholesale.
    #[must_use]
    pub fn supervisor(mut self, supervisor: SupervisorConfig) -> Self {
        self.config.supervisor = supervisor;
        self
    }

    /// Master enable for the safety supervisor.
    #[must_use]
    pub fn supervisor_enabled(mut self, enabled: bool) -> Self {
        self.config.supervisor.enabled = enabled;
        self
    }

    /// SPI-bus probe period in monitor ticks (0 = probe off).
    #[must_use]
    pub fn spi_probe_period(mut self, ticks: u32) -> Self {
        self.config.supervisor.spi_probe_period_ticks = ticks;
        self
    }

    /// JTAG IDCODE probe period in monitor ticks (0 = probe off).
    #[must_use]
    pub fn jtag_probe_period(mut self, ticks: u32) -> Self {
        self.config.supervisor.jtag_probe_period_ticks = ticks;
        self
    }

    /// Validates the assembled configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn build(self) -> Result<PlatformConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// JTAG chain indices of the platform's TAPs.
pub mod taps {
    /// The AFE configuration bank.
    pub const AFE: usize = 0;
    /// The DSP status/control bank.
    pub const DSP: usize = 1;
}

/// The full platform.
pub struct Platform {
    config: PlatformConfig,
    gyro: ascp_mems::gyro::RingGyro,
    charge_pri: ChargeAmplifier,
    charge_sec: ChargeAmplifier,
    aaf_pri: AntiAliasFilter,
    aaf_sec: AntiAliasFilter,
    pga_pri: Pga,
    pga_sec: Pga,
    adc_pri: SarAdc,
    adc_sec: SarAdc,
    drive_dac: Dac,
    rebalance_dac: Dac,
    rate_dac: Dac,
    vref: VoltageReference,
    chain: ConditioningChain,
    dsp_regs: SharedDspRegs,
    afe_regs: SharedAfeRegs,
    jtag: JtagChain,
    cpu: Cpu,
    bus: SystemBus,
    cpu_cycle_debt: f64,
    /// Cached `1 / dsp_rate` (set at construction; the rate is fixed).
    dsp_dt: f64,
    /// Cached `dsp_dt / analog_oversample` (set at construction).
    sub_dt: f64,
    /// Cached CPU machine cycles accrued per DSP tick (20 MHz / 12).
    cpu_cycles_per_tick: f64,
    /// Monitoring-cadence period in DSP ticks (1 kHz).
    monitor_period: u64,
    /// Ticks until the next monitoring-cadence service (countdown replaces
    /// a per-tick modulo on the hot path).
    monitor_countdown: u64,
    /// Cached `!config.faults.is_empty()` (the plan is fixed per run).
    faults_active: bool,
    /// Held drive forces between DAC updates (DAC units, ±1).
    drive_force: f64,
    rebalance_force: f64,
    tick: u64,
    temperature: Celsius,
    watchdog_resets: u32,
    telemetry: Telemetry,
    /// Scrape state for delta-based event emission (monitoring cadence).
    last_locked: bool,
    last_clips_pri: u64,
    last_clips_sec: u64,
    last_wd_resets: u32,
    last_uart_tx: u64,
    uart_was_idle: bool,
    last_dsp_writes: u64,
    last_afe_writes: u64,
    agc_settled_seen: bool,
    /// Safety supervisor (polled at the monitoring cadence).
    supervisor: SafetySupervisor,
    /// Reusable fault-edge buffer (no per-tick allocation).
    fault_edges: Vec<FaultEdge>,
    /// Multiplier on the MEMS drive force (0.0 while drive-loss faulted).
    drive_gate: f64,
    /// Multiplier on both pickoff signals (0.0 while disconnected).
    pickoff_gate: f64,
    /// ADC window extrema for the supervisor's plausibility checks
    /// (reset every monitor tick).
    pri_min: f64,
    pri_max: f64,
    sec_min: f64,
    sec_max: f64,
    /// Supervisor delta-tracking scrape state.
    last_sup_clips: u64,
    last_sup_wd: u32,
    last_spi_errors: u64,
    last_uart_errors: u64,
    last_jtag_errors: u64,
    /// IDCODE probe mismatches observed by the JTAG chain probe.
    jtag_probe_errors: u64,
    /// Monitoring-cadence tick counter (probe scheduling).
    monitor_ticks: u64,
    /// CpuHang fault currently latched (re-asserted after watchdog reset).
    cpu_hang_active: bool,
    /// Supervisor forced the chain open loop (restored on recovery).
    open_loop_forced: bool,
    /// Black-box flight recorder (`None` unless armed by config).
    /// Observability only: excluded from checkpoints and config digests.
    recorder: Option<FlightRecorder>,
    /// Attached span recorder (campaign tracing). Observability only.
    trace: Option<TraceRecorder>,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("tick", &self.tick)
            .field("temperature", &self.temperature)
            .field("mode", &self.chain.mode())
            .field("locked", &self.chain.is_locked())
            .finish()
    }
}

impl Platform {
    /// Builds and wires the whole platform at 25 °C, zero rate, at rest.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(config: PlatformConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("{e}");
        }
        let seed = config.seed;
        let gyro = ascp_mems::gyro::RingGyro::new(config.gyro);

        // Chain dimensioned from the component values.
        let mut chain_cfg = ChainConfig::default();
        chain_cfg.pll.sample_rate = config.dsp_rate.0;
        chain_cfg.pll.center_freq = config.gyro.f0.0;
        chain_cfg.agc.sample_rate = config.dsp_rate.0;
        chain_cfg.agc.setpoint =
            config.gyro.nominal_amplitude * config.charge_gain / config.adc.vref.0;
        chain_cfg.mode = config.mode;
        chain_cfg.rate_gain = config.open_loop_rate_gain();
        chain_cfg.rebalance_rate_gain = config.closed_loop_rate_gain();
        // Phase-compensate the force-feedback path: one DSP tick of
        // pipeline plus half a tick of DAC hold at the carrier frequency.
        chain_cfg.rebalance_phase_rad =
            -2.0 * std::f64::consts::PI * config.gyro.f0.0 * 1.5 / config.dsp_rate.0;
        let chain = ConditioningChain::new(chain_cfg);

        let dsp_regs = shared_dsp_regs();
        let afe_regs = shared_afe_regs();
        {
            let mut afe = afe_regs.borrow_mut();
            afe.write(
                AfeReg::PgaSecondaryGain,
                u16::from(config.secondary_pga_code),
            )
            .expect("valid gain code");
            afe.write(AfeReg::AdcBits, config.adc.bits as u16)
                .expect("valid ADC bits");
        }

        // JTAG chain over both register banks (device 0 nearest TDO).
        let jtag = JtagChain::new(vec![
            Box::new(RegAccessDevice::new(
                0x0a5c_0af1,
                AfeRegsJtag(afe_regs.clone()),
            )),
            Box::new(RegAccessDevice::new(
                0x0a5c_0d51,
                DspRegsJtag(dsp_regs.clone()),
            )),
        ]);

        // CPU subsystem.
        let mut bus = SystemBus::new();
        bus.dsp = Some(Box::new(DspRegsBus16(dsp_regs.clone())));
        let mut cpu = Cpu::new();
        let image = config.firmware.clone().unwrap_or_else(|| {
            match config.variant {
                PlatformVariant::Asic => firmware::monitor_image(),
                PlatformVariant::Prototype => firmware::uart_boot_image(),
            }
            .expect("built-in firmware assembles")
        });
        cpu.load_code(&image);

        let mut platform = Self {
            gyro,
            charge_pri: ChargeAmplifier::new(config.charge_gain, 50.0e-6, seed ^ 0x11),
            charge_sec: ChargeAmplifier::new(config.charge_gain, 50.0e-6, seed ^ 0x22),
            aaf_pri: AntiAliasFilter::butterworth(config.aaf_corner),
            aaf_sec: AntiAliasFilter::butterworth(config.aaf_corner),
            pga_pri: Pga::new(200_000.0, 100.0e-6, 2.0e-6, 20.0e-6, seed ^ 0x33),
            pga_sec: Pga::new(200_000.0, 100.0e-6, 2.0e-6, 20.0e-6, seed ^ 0x44),
            adc_pri: SarAdc::new(AdcConfig {
                seed: seed ^ 0x55,
                ..config.adc
            }),
            adc_sec: SarAdc::new(AdcConfig {
                seed: seed ^ 0x66,
                ..config.adc
            }),
            drive_dac: Dac::new(DacConfig {
                seed: seed ^ 0x77,
                ..config.drive_dac
            }),
            rebalance_dac: Dac::new(DacConfig {
                seed: seed ^ 0x88,
                ..config.rebalance_dac
            }),
            rate_dac: Dac::new(DacConfig {
                seed: seed ^ 0x99,
                ..config.rate_dac
            }),
            vref: VoltageReference::bandgap_2v5(seed ^ 0xaa),
            chain,
            dsp_regs,
            afe_regs,
            jtag,
            cpu,
            bus,
            cpu_cycle_debt: 0.0,
            dsp_dt: 1.0 / config.dsp_rate.0,
            sub_dt: 1.0 / config.dsp_rate.0 / f64::from(config.analog_oversample),
            cpu_cycles_per_tick: 20.0e6 / 12.0 / config.dsp_rate.0,
            monitor_period: (config.dsp_rate.0 as u64 / 1000).max(1),
            monitor_countdown: (config.dsp_rate.0 as u64 / 1000).max(1),
            faults_active: !config.faults.is_empty(),
            drive_force: 0.0,
            rebalance_force: 0.0,
            tick: 0,
            temperature: Celsius(25.0),
            watchdog_resets: 0,
            telemetry: Telemetry::new(config.telemetry.clone()),
            last_locked: false,
            last_clips_pri: 0,
            last_clips_sec: 0,
            last_wd_resets: 0,
            last_uart_tx: 0,
            uart_was_idle: true,
            last_dsp_writes: 0,
            last_afe_writes: 0,
            agc_settled_seen: false,
            supervisor: SafetySupervisor::new(config.supervisor.clone()),
            fault_edges: Vec::new(),
            drive_gate: 1.0,
            pickoff_gate: 1.0,
            pri_min: f64::INFINITY,
            pri_max: f64::NEG_INFINITY,
            sec_min: f64::INFINITY,
            sec_max: f64::NEG_INFINITY,
            last_sup_clips: 0,
            last_sup_wd: 0,
            last_spi_errors: 0,
            last_uart_errors: 0,
            last_jtag_errors: 0,
            jtag_probe_errors: 0,
            monitor_ticks: 0,
            cpu_hang_active: false,
            open_loop_forced: false,
            recorder: config
                .telemetry
                .recorder
                .armed()
                .then(|| FlightRecorder::new(config.telemetry.recorder.clone())),
            trace: None,
            config,
        };
        platform.apply_afe_registers();
        platform
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Applies a yaw rate stimulus.
    pub fn set_rate(&mut self, rate: DegPerSec) {
        self.gyro.set_rate(rate);
    }

    /// Applied yaw rate.
    #[must_use]
    pub fn rate(&self) -> DegPerSec {
        self.gyro.rate()
    }

    /// Sets ambient temperature across sensor and AFE.
    pub fn set_temperature(&mut self, t: Celsius) {
        self.temperature = t;
        self.gyro.set_temperature(t);
        self.pga_pri.set_temperature(t);
        self.pga_sec.set_temperature(t);
        self.vref.set_temperature(t);
        self.afe_regs.borrow_mut().set_temp_sensor(t.0);
        // The chain reads the (quantized) sensor register, as hardware does.
        let sensed = self.afe_regs.borrow().temp_celsius();
        self.chain.set_temperature(sensed);
    }

    /// Current ambient temperature.
    #[must_use]
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// The conditioning chain (status inspection).
    #[must_use]
    pub fn chain(&self) -> &ConditioningChain {
        &self.chain
    }

    /// Mutable chain access (calibration installs compensators here).
    pub fn chain_mut(&mut self) -> &mut ConditioningChain {
        &mut self.chain
    }

    /// The JTAG chain (AFE/DSP configuration and read-back).
    pub fn jtag_mut(&mut self) -> &mut JtagChain {
        &mut self.jtag
    }

    /// Shared DSP register handle (host-side monitoring).
    #[must_use]
    pub fn dsp_regs(&self) -> SharedDspRegs {
        self.dsp_regs.clone()
    }

    /// Shared AFE register handle.
    #[must_use]
    pub fn afe_regs(&self) -> SharedAfeRegs {
        self.afe_regs.clone()
    }

    /// The monitor CPU.
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// The CPU's peripheral bus (SPI/EEPROM/SRAM access).
    pub fn bus_mut(&mut self) -> &mut SystemBus {
        &mut self.bus
    }

    /// Rate output voltage (the datasheet-characterized analog output).
    #[must_use]
    pub fn rate_output(&self) -> Volts {
        self.rate_dac.held()
    }

    /// Rate output decoded to °/s using the nominal 5 mV/°/s, 2.5 V-null
    /// transfer (what a customer's ECU would compute).
    #[must_use]
    pub fn rate_output_dps(&self) -> f64 {
        (self.rate_output().0 - self.config.rate_dac.midscale.0) / 0.005
    }

    /// Watchdog-triggered CPU resets observed so far.
    #[must_use]
    pub fn watchdog_resets(&self) -> u32 {
        self.watchdog_resets
    }

    /// The safety supervisor (state and directives inspection).
    #[must_use]
    pub fn supervisor(&self) -> &SafetySupervisor {
        &self.supervisor
    }

    /// IDCODE probe mismatches observed so far (JTAG chain integrity).
    #[must_use]
    pub fn jtag_probe_errors(&self) -> u64 {
        self.jtag_probe_errors
    }

    /// The supervised rate estimate: `(value_dps, stale)`. While the
    /// supervisor trusts the live output this is the decoded DAC value;
    /// degraded, it holds the last rate observed healthy and flags it
    /// stale (the graceful-degradation output contract).
    #[must_use]
    pub fn supervised_rate_dps(&self) -> (f64, bool) {
        match self.supervisor.rate_estimate() {
            Some((held, _)) => (held, true),
            None => (self.rate_output_dps(), false),
        }
    }

    /// Number of DSP ticks executed.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Simulated time (s).
    #[must_use]
    pub fn time(&self) -> f64 {
        self.tick as f64 / self.config.dsp_rate.0
    }

    /// Applies the AFE register bank to the analog components (the
    /// digital-control path of the paper's programmable front end).
    fn apply_afe_registers(&mut self) {
        let afe = self.afe_regs.borrow();
        let sec_code = afe.read(AfeReg::PgaSecondaryGain) as u8;
        let pri_code = afe.read(AfeReg::PgaPrimaryGain) as u8;
        let corner = f64::from(afe.read(AfeReg::AafCorner)) * 100.0;
        let bits = u32::from(afe.read(AfeReg::AdcBits));
        drop(afe);
        self.pga_sec.set_gain_code(sec_code);
        self.pga_pri.set_gain_code(pri_code);
        if (self.aaf_pri.corner() - corner).abs() > 0.5 {
            self.aaf_pri.set_corner(corner);
            self.aaf_sec.set_corner(corner);
        }
        if bits != self.adc_pri.config().bits {
            let cfg = AdcConfig {
                bits,
                ..*self.adc_pri.config()
            };
            self.adc_pri = SarAdc::new(cfg);
            self.adc_sec = SarAdc::new(AdcConfig {
                seed: cfg.seed ^ 0x1,
                ..cfg
            });
        }
    }

    /// Advances one DSP tick (analog substeps + conversion + chain + DACs +
    /// CPU slice). Returns the chain drive outputs of this tick.
    pub fn step(&mut self) -> ChainDrive {
        self.step_inner()
    }

    /// Advances `n` DSP ticks as one blocked kernel call.
    ///
    /// Semantically identical to calling [`Platform::step`] `n` times (the
    /// campaign determinism contract depends on that), but the per-tick
    /// loop runs through the inlined tick body with every run invariant —
    /// `dsp_dt`, `sub_dt`, the per-run noise sigmas, the fault-plan
    /// emptiness flag and the monitoring-cadence countdown — already
    /// hoisted into fields, so the run-scale entry points ([`Platform::run`],
    /// [`Platform::run_traces`], the sampling loops and the campaign Step
    /// executor) pay no per-call setup or dispatch per tick.
    pub fn step_block(&mut self, n: u64) {
        if self.trace.is_some() && n >= Self::TRACE_BLOCK_MIN_TICKS {
            self.step_block_traced(n);
        } else {
            for _ in 0..n {
                self.step_inner();
            }
        }
    }

    /// Blocks shorter than this are not worth a span: the per-sample loops
    /// (50-tick decimation blocks) would otherwise explode the trace.
    const TRACE_BLOCK_MIN_TICKS: u64 = 256;

    /// [`Platform::step_block`] wrapped in a span carrying the tick count
    /// and the stage wall-time accumulated inside the block (the profiled
    /// stage boundaries of the tick kernel).
    fn step_block_traced(&mut self, n: u64) {
        let t0 = self.time();
        let stages_before: Vec<(&'static str, f64)> = self
            .telemetry
            .stage_times()
            .map(|(stage, seconds, _)| (stage, seconds))
            .collect();
        let id = self
            .trace
            .as_mut()
            .map_or(SpanId::NULL, |tr| tr.begin("step_block", t0));
        for _ in 0..n {
            self.step_inner();
        }
        let t1 = self.time();
        let stage_args: Vec<(String, String)> = self
            .telemetry
            .stage_times()
            .filter_map(|(stage, seconds, _)| {
                let before = stages_before
                    .iter()
                    .find(|&&(s, _)| s == stage)
                    .map_or(0.0, |&(_, secs)| secs);
                let delta = seconds - before;
                (delta > 0.0).then(|| (format!("stage.{stage}"), format!("{:.1}us", delta * 1.0e6)))
            })
            .collect();
        if let Some(tr) = self.trace.as_mut() {
            tr.annotate(id, "ticks", n.to_string());
            for (key, value) in stage_args {
                tr.annotate(id, key, value);
            }
            tr.end(id, t1);
        }
    }

    #[inline]
    fn step_inner(&mut self) -> ChainDrive {
        let dsp_dt = self.dsp_dt;
        let sub = self.config.analog_oversample;
        let sub_dt = self.sub_dt;
        // Fault engine: a single branch per tick when no faults are
        // scheduled (the common case).
        if self.faults_active {
            self.apply_faults();
        }
        // Sampled profiling: `mark` is Some only on profiled ticks.
        let mut mark = self.telemetry.profile_tick();

        // Analog solver substeps with held DAC outputs.
        let mut v_pri = Volts(0.0);
        let mut v_sec = Volts(0.0);
        for _ in 0..sub {
            let pick = self
                .gyro
                .step(self.drive_force, self.rebalance_force, sub_dt);
            v_pri = self.aaf_pri.process(
                self.charge_pri.convert(pick.primary * self.pickoff_gate),
                sub_dt,
            );
            v_sec = self.aaf_sec.process(
                self.charge_sec.convert(pick.secondary * self.pickoff_gate),
                sub_dt,
            );
        }
        if let Some(m) = mark {
            mark = Some(self.telemetry.stage_mark("analog_ode", m));
        }

        // Acquisition at the DSP rate.
        let pri_amp = self.pga_pri.process(v_pri, dsp_dt);
        let sec_amp = self.pga_sec.process(v_sec, dsp_dt);
        let pri_q = self.adc_pri.convert_q15(pri_amp);
        let sec_q = self.adc_sec.convert_q15(sec_amp);
        if self.config.supervisor.enabled {
            let pf = pri_q.to_f64();
            let sf = sec_q.to_f64();
            self.pri_min = self.pri_min.min(pf);
            self.pri_max = self.pri_max.max(pf);
            self.sec_min = self.sec_min.min(sf);
            self.sec_max = self.sec_max.max(sf);
        }
        if let Some(m) = mark {
            mark = Some(self.telemetry.stage_mark("acquisition", m));
        }

        // Hardwired DSP.
        let drive = self.chain.process(pri_q, sec_q);
        if let Some(m) = mark {
            mark = Some(self.telemetry.stage_mark("dsp_chain", m));
        }

        // Drive DACs (forces normalized to DAC full scale). The drive gate
        // models a broken drive electrode; the safe-output directive parks
        // the customer-facing rate DAC at mid-scale.
        let vref = self.config.drive_dac.vref.0;
        self.drive_force = self.drive_dac.write_q15(drive.primary).0 / vref * self.drive_gate;
        self.rebalance_force = self.rebalance_dac.write_q15(drive.secondary).0 / vref;
        let rate_word = if self.supervisor.wants_safe_output() {
            Q15::ZERO
        } else {
            drive.rate_out
        };
        self.rate_dac.write_q15(rate_word);

        // Real-time SRAM capture of the rate stream (prototype analysis).
        self.bus
            .sram
            .capture(drive.rate_out.raw().clamp(-32768, 32767) as i16 as u16);

        // Flight recorder: one frame per tick into the pre-trigger ring
        // (a no-op branch unless armed, and frozen rings stop recording).
        if let Some(rec) = self.recorder.as_mut() {
            rec.record(SignalFrame {
                t: self.tick as f64 * dsp_dt,
                rate_dps: (self.rate_dac.held().0 - self.config.rate_dac.midscale.0) / 0.005,
                demod_i: drive.rate_out.to_f64(),
                demod_q: self.chain.quad_out().to_f64(),
                agc_drive: self.chain.drive(),
                supervisor_state: self.supervisor.state().tag(),
            });
        }
        if let Some(m) = mark {
            mark = Some(self.telemetry.stage_mark("dac_update", m));
        }

        // CPU slice: 20 MHz / 12 machine cycles per second.
        if self.config.cpu_enabled {
            self.cpu_cycle_debt += self.cpu_cycles_per_tick;
            // Batched slice: `run_slice` replays cached blocks and ticks
            // the watchdog through the bus instruction hook at the same
            // per-instruction boundaries the old `step()` loop used; it
            // stops at a watchdog expiry so the reset lands on exactly
            // the instruction that crossed the deadline.
            while self.cpu_cycle_debt >= 1.0 {
                let outcome = self.cpu.run_slice(self.cpu_cycle_debt, &mut self.bus);
                #[allow(clippy::cast_precision_loss)]
                {
                    self.cpu_cycle_debt -= outcome.executed as f64;
                }
                if !outcome.stopped {
                    break;
                }
                // Safety reset: restart the firmware. A latched-up CPU
                // (CpuHang fault) re-hangs immediately — the bounded
                // retry budget in the supervisor decides when to stop.
                self.cpu.reset();
                self.watchdog_resets += 1;
                if self.cpu_hang_active {
                    self.cpu.set_hung(true);
                }
            }
            for (addr, byte) in self.bus.cache.take_writes() {
                self.cpu.code_write(addr, byte);
            }
        }
        if let Some(m) = mark {
            mark = Some(self.telemetry.stage_mark("cpu", m));
        }

        self.tick += 1;
        // Slow monitoring cadence: registers + AFE application + safety
        // supervision at 1 kHz. A countdown replaces the per-tick modulo.
        self.monitor_countdown -= 1;
        if self.monitor_countdown == 0 {
            self.monitor_service();
            if let Some(m) = mark {
                self.telemetry.stage_mark("register_sync", m);
            }
        }
        drive
    }

    /// The monitoring-cadence service body: register synchronization, AFE
    /// application, link probes, safety supervision and telemetry scrape.
    /// Shared by the scalar tick ([`Platform::step`]) and the lockstep
    /// fleet ([`PlatformFleet`]), which calls it per lane at each monitor
    /// boundary after writing its batched state back.
    fn monitor_service(&mut self) {
        self.monitor_countdown = self.monitor_period;
        self.chain.sync_registers(&self.dsp_regs);
        self.apply_afe_registers();
        self.monitor_ticks += 1;
        self.run_probes();
        self.poll_supervisor();
        self.scrape_telemetry();
    }

    /// Polls the fault plan and maps activation/clear edges onto the
    /// component models.
    fn apply_faults(&mut self) {
        let t = self.time();
        let mut edges = std::mem::take(&mut self.fault_edges);
        edges.clear();
        self.config.faults.poll(t, &mut edges);
        for e in &edges {
            self.apply_fault_edge(*e, t);
        }
        self.fault_edges = edges;
    }

    fn adc_mut(&mut self, channel: AdcChannel) -> &mut SarAdc {
        match channel {
            AdcChannel::Primary => &mut self.adc_pri,
            AdcChannel::Secondary => &mut self.adc_sec,
        }
    }

    fn apply_fault_edge(&mut self, e: FaultEdge, t: f64) {
        let on = e.activated;
        match e.kind {
            FaultKind::MemsDriveLoss => self.drive_gate = if on { 0.0 } else { 1.0 },
            FaultKind::SensorDisconnect => self.pickoff_gate = if on { 0.0 } else { 1.0 },
            FaultKind::AdcStuckBit {
                channel,
                bit,
                value,
            } => self
                .adc_mut(channel)
                .set_fault(on.then_some(AdcFault::StuckBit { bit, value })),
            FaultKind::AdcStuckCode { channel, code } => self
                .adc_mut(channel)
                .set_fault(on.then_some(AdcFault::StuckCode { code })),
            FaultKind::AdcOverload { channel, gain } => self
                .adc_mut(channel)
                .set_fault(on.then_some(AdcFault::Overload { gain })),
            FaultKind::ReferenceDroop { frac } => {
                // The bandgap feeds the reference buffers of every
                // converter: ADC codes inflate, DAC full scales shrink.
                let (droop, scale) = if on { (frac, 1.0 - frac) } else { (0.0, 1.0) };
                self.vref.set_droop(droop);
                self.adc_pri.set_ref_scale(scale);
                self.adc_sec.set_ref_scale(scale);
                self.drive_dac.set_ref_scale(scale);
                self.rebalance_dac.set_ref_scale(scale);
                self.rate_dac.set_ref_scale(scale);
            }
            FaultKind::PllUnlock => {
                if on {
                    self.chain.kick_pll();
                }
            }
            FaultKind::SpiBitErrors { rate } => {
                if on {
                    self.bus.spi.set_fault(rate, self.config.seed ^ 0x5b17);
                } else {
                    self.bus.spi.clear_fault();
                }
            }
            FaultKind::UartBitErrors { rate } => {
                if on {
                    self.cpu.set_uart_fault(rate, self.config.seed ^ 0x0a27);
                } else {
                    self.cpu.clear_uart_fault();
                }
            }
            FaultKind::JtagCorruption { rate } => {
                if on {
                    self.jtag.set_fault(rate, self.config.seed ^ 0x17a6);
                } else {
                    self.jtag.clear_fault();
                }
            }
            FaultKind::CpuHang => {
                self.cpu_hang_active = on;
                self.cpu.set_hung(on);
            }
            // Wire faults were introduced for the generic sensor channels
            // (see `ascp_core::frontend`); on the gyro platform the three
            // harness failures collapse onto the pickoff path. Not
            // connected and a ground short both kill the pickoff signal
            // (the synchronous demodulator rejects the resulting DC
            // level), a reversed connector inverts it.
            FaultKind::WireNotConnected | FaultKind::WireShortToGround => {
                self.pickoff_gate = if on { 0.0 } else { 1.0 };
            }
            FaultKind::WireReversePolarity => {
                self.pickoff_gate = if on { -1.0 } else { 1.0 };
            }
        }
        self.telemetry.record_event(if on {
            Event::FaultInjected {
                t,
                fault: e.kind.label(),
            }
        } else {
            Event::FaultCleared {
                t,
                fault: e.kind.label(),
            }
        });
    }

    /// Active communication-link probes at the monitoring cadence: a
    /// one-byte SPI bus probe (parity-checked by the external receiver
    /// model) and a JTAG IDCODE scan compared against the known chain.
    /// Both are off by default (`*_probe_period_ticks == 0`).
    fn run_probes(&mut self) {
        let sup = &self.config.supervisor;
        if !sup.enabled {
            return;
        }
        let spi_period = u64::from(sup.spi_probe_period_ticks);
        if spi_period > 0 && self.monitor_ticks.is_multiple_of(spi_period) {
            // Corruption surfaces in the SPI line-error counter.
            let _ = self.bus.spi.probe();
        }
        let jtag_period = u64::from(sup.jtag_probe_period_ticks);
        if jtag_period > 0 && self.monitor_ticks.is_multiple_of(jtag_period) {
            match self.jtag.read_idcodes() {
                Ok(ids) if ids == [0x0a5c_0af1, 0x0a5c_0d51] => {}
                _ => self.jtag_probe_errors += 1,
            }
        }
    }

    /// Peak-to-peak and midpoint of an ADC observation window; a window
    /// that saw no samples reads as healthy.
    fn window_stats(min: f64, max: f64) -> (f64, f64) {
        if max < min {
            (1.0, 0.0)
        } else {
            (max - min, 0.5 * (max + min))
        }
    }

    fn reset_adc_window(&mut self) {
        self.pri_min = f64::INFINITY;
        self.pri_max = f64::NEG_INFINITY;
        self.sec_min = f64::INFINITY;
        self.sec_max = f64::NEG_INFINITY;
    }

    /// Builds the monitoring sample, advances the supervisor FSM and
    /// applies its graceful-degradation directives.
    fn poll_supervisor(&mut self) {
        if !self.config.supervisor.enabled {
            return;
        }
        let t = self.time();
        let clips = self.adc_pri.clips() + self.adc_sec.clips();
        let spi_errors = self.bus.spi.line_errors();
        let uart_errors = self.cpu.uart_line_errors();
        let jtag_errors = self.jtag_probe_errors;
        let (pri_pp, pri_mid) = Self::window_stats(self.pri_min, self.pri_max);
        let (sec_pp, sec_mid) = Self::window_stats(self.sec_min, self.sec_max);
        let sample = MonitorSample {
            t,
            locked: self.chain.is_locked(),
            settled: self.chain.is_settled(),
            envelope: self.chain.envelope(),
            setpoint: self.chain.config().agc.setpoint,
            adc_clips_delta: clips - self.last_sup_clips,
            adc_pri_pp: pri_pp,
            adc_pri_mid: pri_mid,
            adc_sec_pp: sec_pp,
            adc_sec_mid: sec_mid,
            rate_dps: self.rate_output_dps(),
            rate_raw: self.chain.rate_out().raw(),
            closed_loop: self.chain.mode() == SenseMode::ClosedLoop,
            watchdog_resets_delta: self.watchdog_resets - self.last_sup_wd,
            spi_errors_delta: spi_errors - self.last_spi_errors,
            uart_errors_delta: uart_errors - self.last_uart_errors,
            jtag_errors_delta: jtag_errors - self.last_jtag_errors,
        };
        self.last_sup_clips = clips;
        self.last_sup_wd = self.watchdog_resets;
        self.last_spi_errors = spi_errors;
        self.last_uart_errors = uart_errors;
        self.last_jtag_errors = jtag_errors;
        self.reset_adc_window();
        let prev_state = self.supervisor.state();
        let prev_faults = self.supervisor.faults_detected();
        self.supervisor.poll(&sample, &mut self.telemetry);
        let state = self.supervisor.state();
        if state != prev_state {
            if let Some(tr) = self.trace.as_mut() {
                tr.instant(
                    format!("supervisor {}->{}", prev_state.label(), state.label()),
                    t,
                );
            }
        }
        self.check_recorder_triggers(prev_state, prev_faults, t);

        // Graceful degradation: open-loop fallback while the rebalance
        // path is implicated, restored once the FSM is Normal again.
        if self.supervisor.wants_open_loop() {
            if self.chain.mode() == SenseMode::ClosedLoop {
                self.chain.set_mode(SenseMode::OpenLoop);
                self.open_loop_forced = true;
            }
        } else if self.open_loop_forced && self.supervisor.state() == SupervisorState::Normal {
            self.chain.set_mode(self.config.mode);
            self.open_loop_forced = false;
        }
    }

    /// Evaluates the flight-recorder triggers after a supervisor poll and
    /// freezes the ring on the first one that fires. Trigger precedence
    /// follows severity (SafeState > leaving Normal > check episode), but
    /// only the *first* freeze ever populates the capture, so a cascade
    /// still reports its initial failure.
    fn check_recorder_triggers(&mut self, prev_state: SupervisorState, prev_faults: u64, t: f64) {
        let Some(rec) = self.recorder.as_ref() else {
            return;
        };
        if rec.is_frozen() {
            return;
        }
        let cfg = rec.config().clone();
        let state = self.supervisor.state();
        let cause = if cfg.trigger_safe_state
            && state == SupervisorState::SafeState
            && prev_state != SupervisorState::SafeState
        {
            Some("safe_state")
        } else if cfg.trigger_degraded
            && prev_state == SupervisorState::Normal
            && state != SupervisorState::Normal
        {
            Some("degraded")
        } else if cfg.trigger_check_fail && self.supervisor.faults_detected() > prev_faults {
            Some("check_fail")
        } else {
            None
        };
        let Some(cause) = cause else {
            return;
        };
        let events: Vec<Event> = {
            let log = self.telemetry.events();
            let skip = log.len().saturating_sub(cfg.event_capacity);
            log.iter().skip(skip).cloned().collect()
        };
        let registers = self.key_registers();
        if let Some(rec) = self.recorder.as_mut() {
            rec.freeze(cause, t, events, registers);
        }
        if let Some(tr) = self.trace.as_mut() {
            tr.instant(format!("recorder trigger: {cause}"), t);
        }
    }

    /// Key DSP register values for a flight-recorder capture bundle (the
    /// read-back state a bench engineer would dump over JTAG at failure).
    fn key_registers(&self) -> Vec<(String, u16)> {
        let named = [
            ("dsp.status", DspReg::Status),
            ("dsp.pll_freq_lo", DspReg::PllFreqLo),
            ("dsp.pll_freq_hi", DspReg::PllFreqHi),
            ("dsp.agc_envelope", DspReg::AgcEnvelope),
            ("dsp.rate_out", DspReg::RateOut),
            ("dsp.quad_out", DspReg::QuadOut),
            ("dsp.phase_error", DspReg::PhaseError),
            ("dsp.drive_amp", DspReg::DriveAmp),
            ("dsp.temperature", DspReg::Temperature),
            ("dsp.control", DspReg::Control),
            ("dsp.heartbeat", DspReg::Heartbeat),
        ];
        let regs = self.dsp_regs.borrow();
        named
            .iter()
            .map(|&(name, reg)| (name.to_owned(), regs.read(reg)))
            .collect()
    }

    /// Attaches a span recorder: subsequent blocked runs emit `step_block`
    /// spans and supervisor transitions become instant markers.
    pub fn attach_trace(&mut self, trace: TraceRecorder) {
        self.trace = Some(trace);
    }

    /// Detaches and returns the span recorder, when one is attached.
    pub fn take_trace(&mut self) -> Option<TraceRecorder> {
        self.trace.take()
    }

    /// Mutable access to the attached span recorder.
    pub fn trace_mut(&mut self) -> Option<&mut TraceRecorder> {
        self.trace.as_mut()
    }

    /// The flight recorder, when armed.
    #[must_use]
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_ref()
    }

    /// Removes and returns the flight recorder's frozen capture (re-arming
    /// the ring), when a trigger has fired.
    pub fn take_capture(&mut self) -> Option<CaptureBundle> {
        self.recorder
            .as_mut()
            .and_then(FlightRecorder::take_capture)
    }

    /// Mirrors the components' local counters into the telemetry registry
    /// and emits milestone events from the deltas since the last scrape.
    /// Runs at the monitoring cadence — the same rhythm at which the
    /// paper's 8051 routine "constantly checks the system status" (§4.2).
    fn scrape_telemetry(&mut self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let t = self.time();

        self.telemetry.counter_set("sim.ticks", self.tick);
        self.telemetry.counter_set(
            "adc.conversions",
            self.adc_pri.conversions() + self.adc_sec.conversions(),
        );
        self.telemetry
            .counter_set("adc.clips", self.adc_pri.clips() + self.adc_sec.clips());
        self.telemetry.counter_set(
            "dac.updates",
            self.drive_dac.updates() + self.rebalance_dac.updates() + self.rate_dac.updates(),
        );
        self.telemetry
            .counter_set("pll.lock_transitions", self.chain.lock_transitions());
        self.telemetry
            .counter_set("chain.saturation_events", self.chain.saturation_events());
        self.telemetry
            .counter_set("cpu.instructions", self.cpu.instructions());
        self.telemetry
            .counter_set("cpu.machine_cycles", self.cpu.cycles());
        self.telemetry
            .counter_set("cpu.watchdog_resets", u64::from(self.watchdog_resets));
        self.telemetry
            .counter_set("cpu.uart_tx_bytes", self.cpu.uart_tx_total());
        self.telemetry
            .counter_set("cpu.xlate_block_hits", self.cpu.xlate_hits());
        self.telemetry
            .counter_set("cpu.xlate_block_misses", self.cpu.xlate_misses());
        self.telemetry
            .counter_set("cpu.xlate_invalidations", self.cpu.xlate_invalidations());
        self.telemetry
            .counter_set("spi.transfers", self.bus.spi.transfers());
        self.telemetry
            .counter_set("jtag.shifts", self.jtag.shifts());
        self.telemetry
            .counter_set("jtag.tck_cycles", self.jtag.cycles());
        self.telemetry
            .counter_set("spi.line_errors", self.bus.spi.line_errors());
        self.telemetry
            .counter_set("uart.line_errors", self.cpu.uart_line_errors());
        self.telemetry
            .counter_set("jtag.probe_errors", self.jtag_probe_errors);
        self.telemetry
            .counter_set("jtag.corrupted_bits", self.jtag.corrupted_bits());
        self.telemetry
            .counter_set("dsp.filter_saturations", self.chain.fixed_saturations());

        self.telemetry
            .gauge_set("pll.frequency_hz", self.chain.frequency());
        self.telemetry
            .gauge_set("agc.envelope", self.chain.envelope());
        self.telemetry.gauge_set("agc.drive", self.chain.drive());
        self.telemetry
            .gauge_set("rate.output_dps", self.rate_output_dps());
        self.telemetry.gauge_set("temp.celsius", self.temperature.0);

        // Milestone events from scrape-to-scrape deltas.
        let locked = self.chain.is_locked();
        if locked != self.last_locked {
            if locked {
                self.telemetry.record_event(Event::PllLocked {
                    t,
                    frequency_hz: self.chain.frequency(),
                });
            } else {
                self.telemetry.record_event(Event::PllUnlocked { t });
            }
            self.last_locked = locked;
        }
        if !self.agc_settled_seen {
            if let Some(settle) = self.chain.settle_time_s() {
                self.telemetry.histogram_record("agc.settle_time_s", settle);
                self.telemetry.record_event(Event::AgcSettled {
                    t,
                    settle_time_s: settle,
                });
                self.agc_settled_seen = true;
            }
        }
        let clips_pri = self.adc_pri.clips();
        if clips_pri > self.last_clips_pri {
            self.telemetry.record_event(Event::AdcClip {
                t,
                channel: "primary",
                total: clips_pri,
            });
            self.last_clips_pri = clips_pri;
        }
        let clips_sec = self.adc_sec.clips();
        if clips_sec > self.last_clips_sec {
            self.telemetry.record_event(Event::AdcClip {
                t,
                channel: "secondary",
                total: clips_sec,
            });
            self.last_clips_sec = clips_sec;
        }
        if self.watchdog_resets > self.last_wd_resets {
            self.telemetry.record_event(Event::WatchdogReset {
                t,
                total: u64::from(self.watchdog_resets),
            });
            self.last_wd_resets = self.watchdog_resets;
        }
        // UART activity is edge-triggered: the monitor firmware streams
        // status frames continuously, so an event per scrape would flood
        // the bounded ring and evict rare events (lock, watchdog). Emit
        // only when transmission resumes after an idle scrape interval.
        let uart = self.cpu.uart_tx_total();
        if uart > self.last_uart_tx {
            if self.uart_was_idle {
                self.telemetry.record_event(Event::UartTx {
                    t,
                    bytes: uart - self.last_uart_tx,
                });
            }
            self.uart_was_idle = false;
            self.last_uart_tx = uart;
        } else {
            self.uart_was_idle = true;
        }
        let dsp_writes = self.dsp_regs.borrow().bus_writes();
        if dsp_writes > self.last_dsp_writes {
            self.telemetry.record_event(Event::RegisterWrite {
                t,
                bank: "dsp",
                writes: dsp_writes - self.last_dsp_writes,
            });
            self.last_dsp_writes = dsp_writes;
        }
        let afe_writes = self.afe_regs.borrow().writes();
        if afe_writes > self.last_afe_writes {
            self.telemetry.record_event(Event::RegisterWrite {
                t,
                bank: "afe",
                writes: afe_writes - self.last_afe_writes,
            });
            self.last_afe_writes = afe_writes;
        }
    }

    /// The telemetry collector (read access).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mutable telemetry access (reset between experiment phases).
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Captures a telemetry snapshot at the current simulation time,
    /// scraping the component counters first so the snapshot is current
    /// even between monitoring ticks.
    pub fn telemetry_snapshot(&mut self) -> TelemetrySnapshot {
        self.scrape_telemetry();
        self.telemetry.snapshot(self.time())
    }

    /// Runs for `seconds` of simulated time.
    ///
    /// Duration is converted to DSP ticks by **rounding to the nearest
    /// tick** (a request of 10.2 µs at 250 kHz runs 3 ticks, not 2), so
    /// callers asking for non-integer tick multiples get the closest
    /// realizable duration instead of a silent truncation.
    pub fn run(&mut self, seconds: f64) {
        let ticks = (seconds * self.config.dsp_rate.0).round() as u64;
        self.step_block(ticks);
    }

    /// Runs until PLL lock and AGC settling, returning the turn-on time, or
    /// `None` if `timeout` seconds pass first. This is the Table 1
    /// "turn-on time" measurement.
    pub fn wait_for_ready(&mut self, timeout: f64) -> Option<Seconds> {
        let ticks = (timeout * self.config.dsp_rate.0) as u64;
        let mut settled_streak = 0u32;
        for _ in 0..ticks {
            self.step();
            if self.chain.is_locked() && self.chain.is_settled() {
                settled_streak += 1;
                // Hold for 10 ms before declaring ready.
                if settled_streak >= (0.01 * self.config.dsp_rate.0) as u32 {
                    return Some(Seconds(self.time()));
                }
            } else {
                settled_streak = 0;
            }
        }
        None
    }

    /// Runs for `seconds` recording the Fig. 6 traces (measured PLL/AGC
    /// waveforms at the monitoring cadence), decimated by `trace_div`.
    ///
    /// Like [`Platform::run`], the duration is rounded to the nearest DSP
    /// tick rather than truncated.
    pub fn run_traces(&mut self, seconds: f64, trace_div: u32) -> TraceSet {
        let div = trace_div.max(1);
        let mut amplitude_control = Trace::with_decimation("amplitude_control", div);
        let mut phase_error = Trace::with_decimation("phase_error", div);
        let mut amplitude_error = Trace::with_decimation("amplitude_error", div);
        let mut vco_control = Trace::with_decimation("vco_control", div);
        let mut rate_out = Trace::with_decimation("rate_out_volts", div);
        let ticks = (seconds * self.config.dsp_rate.0).round() as u64;
        // Blocked stepping between observation points: the observable
        // signals are sampled every 50 ticks (the chain's control-update
        // cadence), so advance in whole chunks up to each sample tick.
        let mut left = ticks;
        while left > 0 {
            let chunk = (50 - self.tick % 50).min(left);
            self.step_block(chunk);
            left -= chunk;
            if self.tick.is_multiple_of(50) {
                let t = self.time();
                amplitude_control.push(t, self.chain.drive());
                phase_error.push(t, self.chain.phase_error());
                amplitude_error.push(t, self.chain.config().agc.setpoint - self.chain.envelope());
                vco_control.push(
                    t,
                    (self.chain.frequency() - self.config.gyro.f0.0)
                        / (self.config.gyro.f0.0 * 0.1),
                );
                rate_out.push(t, self.rate_output().0);
            }
        }
        TraceSet::new(vec![
            amplitude_control,
            phase_error,
            amplitude_error,
            vco_control,
            rate_out,
        ])
    }

    /// Collects `n` steady-state rate-output samples (°/s, decoded from the
    /// output DAC) at the demodulated rate, after discarding `settle`
    /// seconds.
    pub fn sample_rate_output(&mut self, settle: f64, n: usize) -> Vec<f64> {
        self.run(settle);
        let decim = self.chain.config().demod_decimation as u64;
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            // Jump straight to the next decimated output tick.
            self.step_block(decim - self.tick % decim);
            out.push(self.rate_output_dps());
        }
        out
    }
}

impl Platform {
    /// Serializes the entire mutable platform state — sensor modes, every
    /// AFE component, the DSP chain, both register banks, the JTAG chain,
    /// the 8051 and its peripherals, the fault-plan cursor and the safety
    /// supervisor — as a sequence of tagged sections.
    ///
    /// Two things are deliberately **not** written:
    ///
    /// - the configuration ([`PlatformConfig`]): a restore target must be
    ///   built from the same configuration (the checkpoint layer in
    ///   [`crate::checkpoint`] enforces that with a config digest);
    /// - telemetry (metrics, events, stage profiles): observability output,
    ///   not simulation state — restoring it would double-count history.
    ///
    /// See `DESIGN.md` §11 for the format and the congruence rules.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.leaf("afer", |w| self.afe_regs.borrow().save_state(w));
        w.leaf("dspr", |w| self.dsp_regs.borrow().save_state(w));
        w.leaf("gyro", |w| self.gyro.save_state(w));
        w.leaf("chgp", |w| self.charge_pri.save_state(w));
        w.leaf("chgs", |w| self.charge_sec.save_state(w));
        w.leaf("aafp", |w| self.aaf_pri.save_state(w));
        w.leaf("aafs", |w| self.aaf_sec.save_state(w));
        w.leaf("pgap", |w| self.pga_pri.save_state(w));
        w.leaf("pgas", |w| self.pga_sec.save_state(w));
        w.leaf("adcp", |w| self.adc_pri.save_state(w));
        w.leaf("adcs", |w| self.adc_sec.save_state(w));
        w.leaf("dacd", |w| self.drive_dac.save_state(w));
        w.leaf("dacb", |w| self.rebalance_dac.save_state(w));
        w.leaf("dacr", |w| self.rate_dac.save_state(w));
        w.leaf("vref", |w| self.vref.save_state(w));
        w.container("chan", |w| self.chain.save_state(w));
        w.leaf("jtag", |w| self.jtag.save_state(w));
        w.leaf("cpu ", |w| self.cpu.save_state(w));
        w.container("bus ", |w| self.bus.save_state(w));
        w.leaf("flts", |w| self.config.faults.save_state(w));
        w.leaf("supv", |w| self.supervisor.save_state(w));
        w.leaf("kern", |w| {
            w.put_u64(self.tick);
            w.put_f64(self.cpu_cycle_debt);
            w.put_u64(self.monitor_countdown);
            w.put_f64(self.drive_force);
            w.put_f64(self.rebalance_force);
            w.put_f64(self.temperature.0);
            w.put_u32(self.watchdog_resets);
            w.put_bool(self.last_locked);
            w.put_u64(self.last_clips_pri);
            w.put_u64(self.last_clips_sec);
            w.put_u32(self.last_wd_resets);
            w.put_u64(self.last_uart_tx);
            w.put_bool(self.uart_was_idle);
            w.put_u64(self.last_dsp_writes);
            w.put_u64(self.last_afe_writes);
            w.put_bool(self.agc_settled_seen);
            w.put_f64(self.drive_gate);
            w.put_f64(self.pickoff_gate);
            w.put_f64(self.pri_min);
            w.put_f64(self.pri_max);
            w.put_f64(self.sec_min);
            w.put_f64(self.sec_max);
            w.put_u64(self.last_sup_clips);
            w.put_u32(self.last_sup_wd);
            w.put_u64(self.last_spi_errors);
            w.put_u64(self.last_uart_errors);
            w.put_u64(self.last_jtag_errors);
            w.put_u64(self.jtag_probe_errors);
            w.put_u64(self.monitor_ticks);
            w.put_bool(self.cpu_hang_active);
            w.put_bool(self.open_loop_forced);
        });
    }

    /// Restores state saved by [`Platform::save_state`] onto a platform
    /// built from the **same** [`PlatformConfig`]. After a successful
    /// restore, stepping this platform produces byte-identical traces to
    /// stepping the one that was saved.
    ///
    /// The AFE register bank is restored first and applied to the analog
    /// components before their own sections load, so a run-time resolution
    /// change (the ADCs are rebuilt when `AdcBits` changes) is replayed
    /// before the converter state arrives.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] if any section is malformed, truncated,
    /// or structurally incongruent with this platform's configuration. The
    /// platform may be left partially restored on error; callers should
    /// discard it (the checkpoint layer restores into a freshly built
    /// platform, so a failed restore never corrupts a live one).
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        {
            let afe_regs = &self.afe_regs;
            r.leaf("afer", |r| afe_regs.borrow_mut().load_state(r))?;
        }
        self.apply_afe_registers();
        {
            let dsp_regs = &self.dsp_regs;
            r.leaf("dspr", |r| dsp_regs.borrow_mut().load_state(r))?;
        }
        let gyro = &mut self.gyro;
        r.leaf("gyro", |r| gyro.load_state(r))?;
        let charge_pri = &mut self.charge_pri;
        r.leaf("chgp", |r| charge_pri.load_state(r))?;
        let charge_sec = &mut self.charge_sec;
        r.leaf("chgs", |r| charge_sec.load_state(r))?;
        let aaf_pri = &mut self.aaf_pri;
        r.leaf("aafp", |r| aaf_pri.load_state(r))?;
        let aaf_sec = &mut self.aaf_sec;
        r.leaf("aafs", |r| aaf_sec.load_state(r))?;
        let pga_pri = &mut self.pga_pri;
        r.leaf("pgap", |r| pga_pri.load_state(r))?;
        let pga_sec = &mut self.pga_sec;
        r.leaf("pgas", |r| pga_sec.load_state(r))?;
        let adc_pri = &mut self.adc_pri;
        r.leaf("adcp", |r| adc_pri.load_state(r))?;
        let adc_sec = &mut self.adc_sec;
        r.leaf("adcs", |r| adc_sec.load_state(r))?;
        let drive_dac = &mut self.drive_dac;
        r.leaf("dacd", |r| drive_dac.load_state(r))?;
        let rebalance_dac = &mut self.rebalance_dac;
        r.leaf("dacb", |r| rebalance_dac.load_state(r))?;
        let rate_dac = &mut self.rate_dac;
        r.leaf("dacr", |r| rate_dac.load_state(r))?;
        let vref = &mut self.vref;
        r.leaf("vref", |r| vref.load_state(r))?;
        let chain = &mut self.chain;
        r.container("chan", |r| chain.load_state(r))?;
        let jtag = &mut self.jtag;
        r.leaf("jtag", |r| jtag.load_state(r))?;
        let cpu = &mut self.cpu;
        r.leaf("cpu ", |r| cpu.load_state(r))?;
        let bus = &mut self.bus;
        r.container("bus ", |r| bus.load_state(r))?;
        let faults = &mut self.config.faults;
        r.leaf("flts", |r| faults.load_state(r))?;
        let supervisor = &mut self.supervisor;
        r.leaf("supv", |r| supervisor.load_state(r))?;
        let monitor_period = self.monitor_period;
        let kern = r.leaf("kern", |r| {
            let tick = r.take_u64()?;
            let cpu_cycle_debt = r.take_f64()?;
            let monitor_countdown = r.take_u64()?;
            if monitor_countdown == 0 || monitor_countdown > monitor_period {
                return Err(SnapshotError::Corrupt {
                    context: format!(
                        "monitor countdown {monitor_countdown} outside 1..={monitor_period}"
                    ),
                });
            }
            Ok((
                tick,
                cpu_cycle_debt,
                monitor_countdown,
                r.take_f64()?,
                r.take_f64()?,
                r.take_f64()?,
                r.take_u32()?,
                r.take_bool()?,
                [
                    r.take_u64()?,
                    r.take_u64()?,
                    u64::from(r.take_u32()?),
                    r.take_u64()?,
                ],
                r.take_bool()?,
                [r.take_u64()?, r.take_u64()?],
                r.take_bool()?,
                [r.take_f64()?, r.take_f64()?],
                [r.take_f64()?, r.take_f64()?, r.take_f64()?, r.take_f64()?],
                [
                    r.take_u64()?,
                    u64::from(r.take_u32()?),
                    r.take_u64()?,
                    r.take_u64()?,
                    r.take_u64()?,
                    r.take_u64()?,
                    r.take_u64()?,
                ],
                r.take_bool()?,
                r.take_bool()?,
            ))
        })?;
        let (
            tick,
            cpu_cycle_debt,
            monitor_countdown,
            drive_force,
            rebalance_force,
            temperature,
            watchdog_resets,
            last_locked,
            clip_scrape,
            uart_was_idle,
            write_scrape,
            agc_settled_seen,
            gates,
            windows,
            sup_scrape,
            cpu_hang_active,
            open_loop_forced,
        ) = kern;
        self.tick = tick;
        self.cpu_cycle_debt = cpu_cycle_debt;
        self.monitor_countdown = monitor_countdown;
        self.drive_force = drive_force;
        self.rebalance_force = rebalance_force;
        self.temperature = Celsius(temperature);
        self.watchdog_resets = watchdog_resets;
        self.last_locked = last_locked;
        self.last_clips_pri = clip_scrape[0];
        self.last_clips_sec = clip_scrape[1];
        self.last_wd_resets = clip_scrape[2] as u32;
        self.last_uart_tx = clip_scrape[3];
        self.uart_was_idle = uart_was_idle;
        self.last_dsp_writes = write_scrape[0];
        self.last_afe_writes = write_scrape[1];
        self.agc_settled_seen = agc_settled_seen;
        self.drive_gate = gates[0];
        self.pickoff_gate = gates[1];
        self.pri_min = windows[0];
        self.pri_max = windows[1];
        self.sec_min = windows[2];
        self.sec_max = windows[3];
        self.last_sup_clips = sup_scrape[0];
        self.last_sup_wd = sup_scrape[1] as u32;
        self.last_spi_errors = sup_scrape[2];
        self.last_uart_errors = sup_scrape[3];
        self.last_jtag_errors = sup_scrape[4];
        self.jtag_probe_errors = sup_scrape[5];
        self.monitor_ticks = sup_scrape[6];
        self.cpu_hang_active = cpu_hang_active;
        self.open_loop_forced = open_loop_forced;
        // The fault-edge scratch buffer is transient; never restored.
        self.fault_edges.clear();
        Ok(())
    }

    /// Power-on reset: sensor motion stops, every loop restarts, the CPU
    /// reboots. Models a cold start for turn-on-time measurements.
    pub fn power_on_reset(&mut self) {
        self.gyro.reset();
        self.chain.reset();
        self.drive_force = 0.0;
        self.rebalance_force = 0.0;
        self.aaf_pri.reset();
        self.aaf_sec.reset();
        self.pga_pri.reset();
        self.pga_sec.reset();
        self.cpu.reset();
        self.tick = 0;
        self.cpu_cycle_debt = 0.0;
        self.monitor_countdown = self.monitor_period;
        // The supervisor reboots with the platform; a forced open-loop
        // fallback does not survive a cold start.
        self.supervisor.reset();
        if self.open_loop_forced {
            self.chain.set_mode(self.config.mode);
            self.open_loop_forced = false;
        }
        self.reset_adc_window();
        if self.cpu_hang_active {
            // Latch-up persists through a power cycle only while the
            // fault is scheduled active; re-assert it.
            self.cpu.set_hung(true);
        }
    }
}

impl crate::characterize::RateSensor for Platform {
    fn name(&self) -> &str {
        "SensorDynamics ASCP (this work)"
    }

    fn set_rate(&mut self, rate: DegPerSec) {
        Platform::set_rate(self, rate);
    }

    fn set_temperature(&mut self, t: Celsius) {
        Platform::set_temperature(self, t);
    }

    fn turn_on(&mut self, timeout: f64) -> Option<Seconds> {
        self.power_on_reset();
        self.wait_for_ready(timeout)
    }

    fn sample_output(&mut self, settle: f64, n: usize) -> Vec<f64> {
        self.run(settle);
        let decim = u64::from(self.chain.config().demod_decimation);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            // Jump straight to the next decimated output tick.
            self.step_block(decim - self.tick % decim);
            out.push(self.rate_output().0);
        }
        out
    }

    fn output_sample_rate(&self) -> f64 {
        self.config.dsp_rate.0 / f64::from(self.chain.config().demod_decimation)
    }

    fn sample_output_modulated(
        &mut self,
        freq: f64,
        amp: DegPerSec,
        settle: f64,
        n: usize,
    ) -> Vec<f64> {
        let w = 2.0 * std::f64::consts::PI * freq;
        let decim = u64::from(self.chain.config().demod_decimation);
        let dsp_rate = self.config.dsp_rate.0;
        let mut out = Vec::with_capacity(n);
        let settle_ticks = (settle * dsp_rate) as u64;
        let mut k = 0u64;
        while out.len() < n {
            let t = k as f64 / dsp_rate;
            self.gyro.set_rate(DegPerSec(amp.0 * (w * t).sin()));
            self.step();
            if k >= settle_ticks && self.tick.is_multiple_of(decim) {
                out.push(self.rate_output().0);
            }
            k += 1;
        }
        self.gyro.set_rate(DegPerSec(0.0));
        out
    }
}

/// A platform set that cannot run as a lockstep fleet, with the reason and
/// the platforms handed back so the caller can fall to scalar execution.
#[derive(Debug)]
pub struct FleetIneligible {
    /// Human-readable reason the fleet rejected the set.
    pub reason: String,
    /// The untouched platforms, returned for per-platform stepping.
    pub platforms: Vec<Platform>,
}

impl std::fmt::Display for FleetIneligible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "platforms ineligible for fleet execution: {}",
            self.reason
        )
    }
}

/// The hot structure-of-arrays kernels of a fleet, extracted together so a
/// monitor-boundary re-extraction is one call.
///
/// Same-type component pairs are **fused** into one wide kernel — the
/// primary and secondary analog paths share a 2N-lane kernel (lanes
/// `0..N` primary, `N..2N` secondary) and the three DACs share a 3N-lane
/// kernel (drive, rebalance, rate) — so each per-tick batched call runs
/// one longer loop instead of two or three short ones: fewer dispatch
/// overheads, better pipelining of the latency-bound noise transforms.
/// Per-lane state is independent, so fusion cannot change any lane's bits.
struct FleetKernels {
    gyro: GyroLanes,
    /// `[charge_pri | charge_sec]`, 2N lanes.
    charge: ChargeLanes,
    /// `[aaf_pri | aaf_sec]`, 2N lanes.
    aaf: AafLanes,
    /// `[pga_pri | pga_sec]`, 2N lanes.
    pga: PgaLanes,
    /// `[adc_pri | adc_sec]`, 2N lanes.
    adc: AdcLanes,
    demod: DemodLanes,
    /// `[drive | rebalance | rate]`, 3N lanes.
    dac: DacLanes,
}

impl FleetKernels {
    /// Extracts every hot kernel; `Err` names the first component whose
    /// lanes are not extractable (mixed noise phase, an active ADC fault,
    /// non-uniform decimator state). Fusion makes the phase-uniformity
    /// requirement span the primary *and* secondary populations (and all
    /// three DACs); platforms stepped from construction always satisfy it.
    fn extract(platforms: &[Platform], sub_dt: f64, dsp_dt: f64) -> Result<Self, String> {
        let p = platforms;
        Ok(Self {
            gyro: GyroLanes::extract(p.iter().map(|p| &p.gyro), sub_dt)
                .ok_or("gyro noise lanes not phase-uniform")?,
            charge: ChargeLanes::extract(
                p.iter()
                    .map(|p| &p.charge_pri)
                    .chain(p.iter().map(|p| &p.charge_sec)),
            )
            .ok_or("charge-amp lanes not phase-uniform")?,
            aaf: AafLanes::extract(
                p.iter()
                    .map(|p| &p.aaf_pri)
                    .chain(p.iter().map(|p| &p.aaf_sec)),
            ),
            pga: PgaLanes::extract(
                p.iter()
                    .map(|p| &p.pga_pri)
                    .chain(p.iter().map(|p| &p.pga_sec)),
                dsp_dt,
            )
            .ok_or("PGA lanes not phase-uniform")?,
            adc: AdcLanes::extract(
                p.iter()
                    .map(|p| &p.adc_pri)
                    .chain(p.iter().map(|p| &p.adc_sec)),
            )
            .ok_or("ADC lanes faulted or not phase-uniform")?,
            demod: DemodLanes::extract(p.iter().map(|p| p.chain.demod()))
                .ok_or("demodulator lanes not decimation-uniform")?,
            dac: DacLanes::extract(
                p.iter()
                    .map(|p| &p.drive_dac)
                    .chain(p.iter().map(|p| &p.rebalance_dac))
                    .chain(p.iter().map(|p| &p.rate_dac)),
            )
            .ok_or("DAC lanes not phase-uniform")?,
        })
    }

    /// Writes every kernel's state back into the platforms' components.
    /// The fused kernels restore through collected field borrows so the
    /// primary/secondary (and per-DAC) segments land on the right
    /// components in lane order.
    fn restore(&self, platforms: &mut [Platform]) {
        let n = platforms.len();
        self.gyro.restore(platforms.iter_mut().map(|p| &mut p.gyro));
        self.demod
            .restore(platforms.iter_mut().map(|p| p.chain.demod_mut()));
        let mut chg: Vec<&mut ChargeAmplifier> = Vec::with_capacity(2 * n);
        let mut aaf: Vec<&mut AntiAliasFilter> = Vec::with_capacity(2 * n);
        let mut pga: Vec<&mut Pga> = Vec::with_capacity(2 * n);
        let mut adc: Vec<&mut SarAdc> = Vec::with_capacity(2 * n);
        let mut dac: Vec<&mut Dac> = Vec::with_capacity(3 * n);
        let mut sec_chg: Vec<&mut ChargeAmplifier> = Vec::with_capacity(n);
        let mut sec_aaf: Vec<&mut AntiAliasFilter> = Vec::with_capacity(n);
        let mut sec_pga: Vec<&mut Pga> = Vec::with_capacity(n);
        let mut sec_adc: Vec<&mut SarAdc> = Vec::with_capacity(n);
        let mut reb_dac: Vec<&mut Dac> = Vec::with_capacity(n);
        let mut rate_dac: Vec<&mut Dac> = Vec::with_capacity(n);
        for p in platforms.iter_mut() {
            chg.push(&mut p.charge_pri);
            sec_chg.push(&mut p.charge_sec);
            aaf.push(&mut p.aaf_pri);
            sec_aaf.push(&mut p.aaf_sec);
            pga.push(&mut p.pga_pri);
            sec_pga.push(&mut p.pga_sec);
            adc.push(&mut p.adc_pri);
            sec_adc.push(&mut p.adc_sec);
            dac.push(&mut p.drive_dac);
            reb_dac.push(&mut p.rebalance_dac);
            rate_dac.push(&mut p.rate_dac);
        }
        chg.append(&mut sec_chg);
        aaf.append(&mut sec_aaf);
        pga.append(&mut sec_pga);
        adc.append(&mut sec_adc);
        dac.append(&mut reb_dac);
        dac.append(&mut rate_dac);
        self.charge.restore(chg.into_iter());
        self.aaf.restore(aaf.into_iter());
        self.pga.restore(pga.into_iter());
        self.adc.restore(adc.into_iter());
        self.dac.restore(dac.into_iter());
    }

    /// Monitor-boundary re-extraction: everything is re-read from the
    /// platforms (cheap, O(lanes) per kernel) except the ADC kernel,
    /// whose seeded DNL tables are refreshed in place unless a converter
    /// was rebuilt at a new resolution ([`AdcLanes::refresh`]).
    fn re_extract(&mut self, platforms: &[Platform], sub_dt: f64, dsp_dt: f64) {
        let p = platforms;
        self.gyro = GyroLanes::extract(p.iter().map(|p| &p.gyro), sub_dt)
            .expect("lockstep lanes stay phase-uniform");
        self.charge = ChargeLanes::extract(
            p.iter()
                .map(|p| &p.charge_pri)
                .chain(p.iter().map(|p| &p.charge_sec)),
        )
        .expect("lockstep lanes stay phase-uniform");
        self.aaf = AafLanes::extract(
            p.iter()
                .map(|p| &p.aaf_pri)
                .chain(p.iter().map(|p| &p.aaf_sec)),
        );
        self.pga = PgaLanes::extract(
            p.iter()
                .map(|p| &p.pga_pri)
                .chain(p.iter().map(|p| &p.pga_sec)),
            dsp_dt,
        )
        .expect("lockstep lanes stay phase-uniform");
        if !self.adc.refresh(
            p.iter()
                .map(|p| &p.adc_pri)
                .chain(p.iter().map(|p| &p.adc_sec)),
        ) {
            self.adc = AdcLanes::extract(
                p.iter()
                    .map(|p| &p.adc_pri)
                    .chain(p.iter().map(|p| &p.adc_sec)),
            )
            .expect("fleet-run ADCs stay fault-free and phase-uniform");
        }
        self.demod = DemodLanes::extract(p.iter().map(|p| p.chain.demod()))
            .expect("lockstep lanes stay decimation-uniform");
        self.dac = DacLanes::extract(
            p.iter()
                .map(|p| &p.drive_dac)
                .chain(p.iter().map(|p| &p.rebalance_dac))
                .chain(p.iter().map(|p| &p.rate_dac)),
        )
        .expect("lockstep lanes stay phase-uniform");
    }
}

/// N platforms stepping in lockstep with structure-of-arrays state for the
/// hot tick kernels.
///
/// The fleet batches the per-tick analog/mixed-signal work — resonator
/// propagation, charge conversion, anti-alias filtering, PGA, ADC, the
/// demodulator's decimating FIR pair, and the three DACs — across lanes in
/// contiguous arrays so the per-lane arithmetic auto-vectorizes, while the
/// cold components (8051, JTAG, supervisor, register banks, conditioning
/// chain control law) stay per-platform and are serviced at the monitoring
/// cadence exactly as [`Platform::step`] would.
///
/// # Determinism contract
///
/// Stepping a fleet is **bit-identical** to stepping each member platform
/// individually: every lane kernel transcribes the scalar expression
/// shapes and every noise generator draws in the same per-tick order, so
/// [`Platform::save_state`] bytes agree after any number of ticks (the
/// campaign's Monte-Carlo CSV contract builds on this).
///
/// # Eligibility
///
/// [`PlatformFleet::new`] rejects sets it cannot run in lockstep —
/// mismatched rates or monitor phases, an enabled 8051 (the CPU slice is
/// inherently serial), scheduled fault plans, armed flight recorders or
/// span traces, or components whose lane state is not uniform. Rejection
/// returns the platforms for scalar execution.
pub struct PlatformFleet {
    platforms: Vec<Platform>,
    k: FleetKernels,
    // Uniform run invariants (validated at construction).
    dsp_dt: f64,
    sub_dt: f64,
    oversample: u32,
    monitor_countdown: u64,
    tick: u64,
    dsp_rate: f64,
    // Per-lane mirrors of Platform hot-path fields.
    drive_force: Vec<f64>,
    rebalance_force: Vec<f64>,
    sup_enabled: Vec<bool>,
    safe_output: Vec<bool>,
    vref_drive: Vec<f64>,
    pri_min: Vec<f64>,
    pri_max: Vec<f64>,
    sec_min: Vec<f64>,
    sec_max: Vec<f64>,
    // Per-lane scratch, allocated once. The analog buffers are 2N wide
    // (`[primary | secondary]`) and the DAC buffers 3N wide
    // (`[drive | rebalance | rate]`), matching the fused kernels.
    pick: Vec<f64>,
    chg: Vec<f64>,
    v: Vec<f64>,
    amp: Vec<f64>,
    q: Vec<i32>,
    s_ref: Vec<Q15>,
    c_ref: Vec<Q15>,
    x_sec: Vec<Q15>,
    p_drive: Vec<Q15>,
    iq_out: Vec<IqSample>,
    raw: Vec<i32>,
    dac_out: Vec<f64>,
}

impl PlatformFleet {
    /// Builds a lockstep fleet over `platforms`.
    ///
    /// # Errors
    ///
    /// Returns [`FleetIneligible`] — with the platforms handed back — when
    /// the set cannot run in lockstep; see the type-level eligibility
    /// notes.
    pub fn new(platforms: Vec<Platform>) -> Result<Self, FleetIneligible> {
        if let Err(reason) = Self::check_eligibility(&platforms) {
            return Err(FleetIneligible { reason, platforms });
        }
        let p0 = &platforms[0];
        let (dsp_dt, sub_dt, oversample) = (p0.dsp_dt, p0.sub_dt, p0.config.analog_oversample);
        let (monitor_countdown, tick) = (p0.monitor_countdown, p0.tick);
        let dsp_rate = p0.config.dsp_rate.0;
        let k = match FleetKernels::extract(&platforms, sub_dt, dsp_dt) {
            Ok(k) => k,
            Err(reason) => {
                return Err(FleetIneligible {
                    reason: reason.to_owned(),
                    platforms,
                })
            }
        };
        let n = platforms.len();
        let mut fleet = Self {
            k,
            dsp_dt,
            sub_dt,
            oversample,
            monitor_countdown,
            tick,
            dsp_rate,
            drive_force: Vec::with_capacity(n),
            rebalance_force: Vec::with_capacity(n),
            sup_enabled: Vec::with_capacity(n),
            safe_output: Vec::with_capacity(n),
            vref_drive: Vec::with_capacity(n),
            pri_min: Vec::with_capacity(n),
            pri_max: Vec::with_capacity(n),
            sec_min: Vec::with_capacity(n),
            sec_max: Vec::with_capacity(n),
            pick: vec![0.0; 2 * n],
            chg: vec![0.0; 2 * n],
            v: vec![0.0; 2 * n],
            amp: vec![0.0; 2 * n],
            q: vec![0; 2 * n],
            s_ref: vec![Q15::ZERO; n],
            c_ref: vec![Q15::ZERO; n],
            x_sec: vec![Q15::ZERO; n],
            p_drive: vec![Q15::ZERO; n],
            iq_out: vec![IqSample::default(); n],
            raw: vec![0; 3 * n],
            dac_out: vec![0.0; 3 * n],
            platforms,
        };
        for p in &fleet.platforms {
            fleet.drive_force.push(p.drive_force);
            fleet.rebalance_force.push(p.rebalance_force);
            fleet.sup_enabled.push(p.config.supervisor.enabled);
            fleet.safe_output.push(p.supervisor.wants_safe_output());
            fleet.vref_drive.push(p.config.drive_dac.vref.0);
            fleet.pri_min.push(p.pri_min);
            fleet.pri_max.push(p.pri_max);
            fleet.sec_min.push(p.sec_min);
            fleet.sec_max.push(p.sec_max);
        }
        Ok(fleet)
    }

    /// Static lockstep preconditions (everything except lane extraction).
    fn check_eligibility(platforms: &[Platform]) -> Result<(), String> {
        let Some(p0) = platforms.first() else {
            return Err("fleet needs at least one platform".into());
        };
        for (l, p) in platforms.iter().enumerate() {
            let c = &p.config;
            if c.dsp_rate != p0.config.dsp_rate
                || c.analog_oversample != p0.config.analog_oversample
            {
                return Err(format!("lane {l}: mismatched DSP rate or oversample"));
            }
            if p.tick != p0.tick || p.monitor_countdown != p0.monitor_countdown {
                return Err(format!("lane {l}: not tick/monitor-phase aligned"));
            }
            if c.cpu_enabled {
                return Err(format!("lane {l}: monitor CPU enabled (serial component)"));
            }
            if p.faults_active || !c.faults.is_empty() {
                return Err(format!("lane {l}: scheduled fault plan"));
            }
            if p.recorder.is_some() {
                return Err(format!("lane {l}: flight recorder armed"));
            }
            if p.trace.is_some() {
                return Err(format!("lane {l}: span trace attached"));
            }
            if p.drive_gate != 1.0 || p.pickoff_gate != 1.0 {
                return Err(format!("lane {l}: gated drive or pickoff path"));
            }
            if !p.chain.is_enabled() {
                return Err(format!("lane {l}: conditioning chain disabled"));
            }
        }
        Ok(())
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.platforms.len()
    }

    /// DSP ticks executed (uniform across lanes).
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Simulated time, seconds.
    #[must_use]
    pub fn time(&self) -> f64 {
        self.tick as f64 / self.dsp_rate
    }

    /// Rate output of one lane decoded to °/s — byte-identical to
    /// [`Platform::rate_output_dps`] on the member platform.
    #[must_use]
    pub fn rate_output_dps(&self, lane: usize) -> f64 {
        // Rate DACs occupy the last third of the fused DAC kernel.
        let held = self.k.dac.held_outputs()[2 * self.platforms.len() + lane];
        let mid = self.k.dac.midscales()[2 * self.platforms.len() + lane];
        (held - mid) / 0.005
    }

    /// Advances every lane one DSP tick.
    pub fn step(&mut self) {
        self.step_block(1);
    }

    /// Advances every lane `n` DSP ticks in lockstep.
    pub fn step_block(&mut self, n: u64) {
        for _ in 0..n {
            self.tick_lanes();
        }
    }

    /// One batched DSP tick across all lanes (the SoA transcription of
    /// [`Platform::step`]'s tick body for fault-free, CPU-off platforms).
    #[inline]
    fn tick_lanes(&mut self) {
        let n = self.platforms.len();
        // Analog solver substeps with held DAC outputs. The charge/AAF
        // kernels run once over the fused 2N `[pri | sec]` population.
        for _ in 0..self.oversample {
            let (pick_pri, pick_sec) = self.pick.split_at_mut(n);
            self.k
                .gyro
                .step(&self.drive_force, &self.rebalance_force, pick_pri, pick_sec);
            self.k.charge.convert(&self.pick, &mut self.chg);
            self.k.aaf.process(&self.chg, self.sub_dt, &mut self.v);
        }

        // Acquisition at the DSP rate (fused 2N kernels).
        self.k.pga.process(&self.v, &mut self.amp);
        self.k.adc.convert_q15(&self.amp, &mut self.q);
        for l in 0..n {
            if self.sup_enabled[l] {
                let pf = Q15::from_raw(self.q[l]).to_f64();
                let sf = Q15::from_raw(self.q[n + l]).to_f64();
                self.pri_min[l] = self.pri_min[l].min(pf);
                self.pri_max[l] = self.pri_max[l].max(pf);
                self.sec_min[l] = self.sec_min[l].min(sf);
                self.sec_max[l] = self.sec_max[l].max(sf);
            }
        }

        // Hardwired DSP: the per-lane control law (PLL, AGC, loop filters)
        // stays AoS; the decimating-FIR demodulator runs batched between
        // its two halves.
        for (l, p) in self.platforms.iter_mut().enumerate() {
            let (s, c, primary_drive) = p.chain.primary_stage(Q15::from_raw(self.q[l]));
            self.s_ref[l] = s;
            self.c_ref[l] = c;
            self.p_drive[l] = primary_drive;
            self.x_sec[l] = Q15::from_raw(self.q[n + l]);
        }
        let emitted = self
            .k
            .demod
            .process(&self.x_sec, &self.s_ref, &self.c_ref, &mut self.iq_out);
        for (l, p) in self.platforms.iter_mut().enumerate() {
            let demod_out = if emitted { Some(self.iq_out[l]) } else { None };
            let drive =
                p.chain
                    .finish_stage(demod_out, self.s_ref[l], self.c_ref[l], self.p_drive[l]);
            self.raw[l] = drive.primary.raw();
            self.raw[n + l] = drive.secondary.raw();
            let rate_word = if self.safe_output[l] {
                Q15::ZERO
            } else {
                drive.rate_out
            };
            self.raw[2 * n + l] = rate_word.raw();
            // Real-time SRAM capture of the rate stream.
            p.bus
                .sram
                .capture(drive.rate_out.raw().clamp(-32768, 32767) as i16 as u16);
        }

        // One fused DAC write over `[drive | rebalance | rate]` (forces
        // normalized to DAC full scale; both loop forces use the drive
        // vref, as in the scalar path). The gates are 1.0 by eligibility,
        // so the scalar `* gate` factors are identity.
        self.k.dac.write_q15(&self.raw, &mut self.dac_out);
        for l in 0..n {
            self.drive_force[l] = self.dac_out[l] / self.vref_drive[l];
            self.rebalance_force[l] = self.dac_out[n + l] / self.vref_drive[l];
        }

        self.tick += 1;
        self.monitor_countdown -= 1;
        if self.monitor_countdown == 0 {
            self.monitor_boundary();
        }
    }

    /// Monitoring-cadence boundary: write the batched state back, run each
    /// platform's [`Platform::monitor_service`] (registers, AFE, probes,
    /// supervisor, telemetry — the cold AoS path), then re-extract.
    fn monitor_boundary(&mut self) {
        self.sync_back();
        for p in &mut self.platforms {
            p.monitor_service();
        }
        self.resync_after_service();
    }

    /// Writes every lane kernel and scalar mirror back into the member
    /// platforms, leaving them byte-identical to individually stepped ones.
    fn sync_back(&mut self) {
        self.k.restore(&mut self.platforms);
        for (l, p) in self.platforms.iter_mut().enumerate() {
            p.tick = self.tick;
            p.monitor_countdown = self.monitor_countdown;
            p.drive_force = self.drive_force[l];
            p.rebalance_force = self.rebalance_force[l];
            p.pri_min = self.pri_min[l];
            p.pri_max = self.pri_max[l];
            p.sec_min = self.sec_min[l];
            p.sec_max = self.sec_max[l];
        }
    }

    /// Re-extracts kernels and refreshes the cached per-lane mirrors after
    /// the platforms were serviced (or mutated by the caller).
    fn resync_after_service(&mut self) {
        self.k.re_extract(&self.platforms, self.sub_dt, self.dsp_dt);
        self.monitor_countdown = self.platforms[0].monitor_countdown;
        self.tick = self.platforms[0].tick;
        for (l, p) in self.platforms.iter().enumerate() {
            self.safe_output[l] = p.supervisor.wants_safe_output();
            self.sup_enabled[l] = p.config.supervisor.enabled;
            self.drive_force[l] = p.drive_force;
            self.rebalance_force[l] = p.rebalance_force;
            self.pri_min[l] = p.pri_min;
            self.pri_max[l] = p.pri_max;
            self.sec_min[l] = p.sec_min;
            self.sec_max[l] = p.sec_max;
        }
    }

    /// Applies `f` to every member platform with the batched state synced
    /// back first (stimulus changes between lockstep segments — rate
    /// steps, temperature points).
    ///
    /// # Panics
    ///
    /// Panics if the closure breaks fleet eligibility (injects a fault,
    /// enables the CPU, desynchronizes tick phase): lane re-extraction is
    /// infallible only under the lockstep invariants.
    pub fn for_each_platform(&mut self, mut f: impl FnMut(&mut Platform)) {
        self.sync_back();
        for p in &mut self.platforms {
            f(p);
        }
        if let Err(reason) = Self::check_eligibility(&self.platforms) {
            panic!("fleet closure broke lockstep eligibility: {reason}");
        }
        self.resync_after_service();
    }

    /// Read access to one member platform **after** syncing the batched
    /// state back, so every observable matches a scalar-stepped platform.
    pub fn platform_synced(&mut self, lane: usize) -> &Platform {
        self.sync_back();
        &self.platforms[lane]
    }

    /// Dissolves the fleet, returning the member platforms with all
    /// batched state written back — each byte-identical (per
    /// [`Platform::save_state`]) to a platform stepped individually.
    #[must_use]
    pub fn into_platforms(mut self) -> Vec<Platform> {
        self.sync_back();
        self.platforms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascp_sim::stats;

    #[test]
    fn platform_locks_and_reports_ready() {
        let mut p = Platform::new(PlatformConfig::builder().quiet().build().expect("valid"));
        let ready = p.wait_for_ready(2.0);
        assert!(ready.is_some(), "platform never became ready");
        let t = ready.expect("checked").0;
        assert!(t > 0.05 && t < 1.5, "turn-on time {t} implausible");
        assert!((p.chain().frequency() - 15_000.0).abs() < 20.0);
    }

    #[test]
    fn rate_output_tracks_stimulus() {
        let mut p = Platform::new(PlatformConfig::builder().quiet().build().expect("valid"));
        p.wait_for_ready(2.0).expect("ready");
        p.set_rate(DegPerSec(100.0));
        let samples = p.sample_rate_output(0.4, 200);
        let mean = stats::mean(&samples);
        assert!(
            (mean.abs() - 100.0).abs() < 10.0,
            "rate output {mean} for 100 °/s"
        );
    }

    #[test]
    fn rate_output_sign_symmetry() {
        let mut p = Platform::new(PlatformConfig::builder().quiet().build().expect("valid"));
        p.wait_for_ready(2.0).expect("ready");
        p.set_rate(DegPerSec(150.0));
        let plus = stats::mean(&p.sample_rate_output(0.4, 100));
        p.set_rate(DegPerSec(-150.0));
        let minus = stats::mean(&p.sample_rate_output(0.4, 100));
        assert!(plus * minus < 0.0, "no sign flip: {plus} / {minus}");
        assert!(
            ((plus + minus) / plus).abs() < 0.2,
            "asymmetry: {plus} vs {minus}"
        );
    }

    #[test]
    fn null_output_near_midscale() {
        let mut p = Platform::new(PlatformConfig::builder().quiet().build().expect("valid"));
        p.wait_for_ready(2.0).expect("ready");
        let samples = p.sample_rate_output(0.3, 100);
        let null_v = 2.5 + stats::mean(&samples) * 0.005;
        assert!((null_v - 2.5).abs() < 0.2, "null at {null_v} V");
    }

    #[test]
    fn cpu_monitor_reports_lock_over_uart() {
        let c = PlatformConfig::builder()
            .quiet()
            .cpu_enabled(true)
            .build()
            .expect("valid");
        let mut p = Platform::new(c);
        p.wait_for_ready(2.0).expect("ready");
        // Discard frames transmitted before lock, then collect fresh ones.
        p.cpu_mut().uart_take_tx();
        p.run(0.05);
        let tx = p.cpu_mut().uart_take_tx();
        assert!(!tx.is_empty(), "no UART traffic");
        let pos = tx
            .iter()
            .position(|&b| b == crate::firmware::FRAME_HEADER)
            .expect("frame header");
        assert!(tx.len() > pos + 1, "truncated frame");
        assert_eq!(tx[pos + 1] & 0b01, 0b01, "status should report lock");
    }

    #[test]
    fn jtag_reads_back_dsp_status() {
        use crate::registers::DspRegsJtag;
        use ascp_jtag::device::{instructions, RegAccessDevice};
        let mut p = Platform::new(PlatformConfig::builder().quiet().build().expect("valid"));
        p.wait_for_ready(2.0).expect("ready");
        p.run(0.01);
        let jtag = p.jtag_mut();
        jtag.select(taps::DSP, instructions::REG_ACCESS)
            .expect("select");
        jtag.scan_dr(taps::DSP, RegAccessDevice::<DspRegsJtag>::pack_read(0))
            .expect("read request");
        let dr = jtag.scan_dr(taps::DSP, 0).expect("read data");
        let status = RegAccessDevice::<DspRegsJtag>::unpack_data(dr);
        assert_eq!(status & 0b01, 0b01, "JTAG status read: {status:#06x}");
    }

    #[test]
    fn jtag_configures_pga_gain() {
        use crate::registers::AfeRegsJtag;
        use ascp_jtag::device::{instructions, RegAccessDevice};
        let mut p = Platform::new(PlatformConfig::builder().quiet().build().expect("valid"));
        let jtag = p.jtag_mut();
        jtag.select(taps::AFE, instructions::REG_ACCESS)
            .expect("select");
        jtag.scan_dr(
            taps::AFE,
            RegAccessDevice::<AfeRegsJtag>::pack_write(AfeReg::PgaSecondaryGain.addr(), 7),
        )
        .expect("write");
        // The platform applies AFE registers at the monitoring cadence.
        p.run(0.002);
        assert_eq!(p.pga_sec.gain_code(), 7);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(PlatformConfig::builder()
            .analog_oversample(0)
            .build()
            .is_err());
        assert!(PlatformConfig::builder().charge_gain(0.0).build().is_err());
        assert!(PlatformConfig::builder()
            .secondary_pga_code(12)
            .build()
            .is_err());
        let err = PlatformConfig::builder()
            .adc_bits(40)
            .build()
            .expect_err("40-bit ADC must be rejected");
        assert!(err.to_string().starts_with("invalid platform config:"));
    }

    #[test]
    fn builder_sets_every_documented_field() {
        let cfg = PlatformConfig::builder()
            .quiet()
            .noise_density(0.002)
            .adc_bits(14)
            .loop_mode(SenseMode::ClosedLoop)
            .seed(99)
            .spi_probe_period(1)
            .jtag_probe_period(10)
            .fault_one_shot(
                FaultKind::AdcStuckCode {
                    channel: AdcChannel::Primary,
                    code: 0,
                },
                0.5,
                0.1,
            )
            .build()
            .expect("valid");
        assert!((cfg.gyro.noise_density - 0.002).abs() < 1e-12);
        assert!(!cfg.cpu_enabled);
        assert_eq!(cfg.adc.bits, 14);
        assert_eq!(cfg.mode, SenseMode::ClosedLoop);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.supervisor.spi_probe_period_ticks, 1);
        assert_eq!(cfg.supervisor.jtag_probe_period_ticks, 10);
        assert_eq!(cfg.faults.len(), 1);
    }

    #[test]
    fn run_rounds_to_nearest_tick() {
        // 250 kHz DSP clock → dt = 4 µs. A request of 10.2 µs is 2.55
        // ticks: truncation would run 2, rounding must run 3.
        let mut p = Platform::new(PlatformConfig::builder().quiet().build().expect("valid"));
        let dt = 1.0 / p.config().dsp_rate.0;
        p.run(2.55 * dt);
        assert!(
            (p.time() - 3.0 * dt).abs() < 1e-12,
            "run(2.55 dt) advanced {} s, want 3 ticks = {} s",
            p.time(),
            3.0 * dt
        );
        // And 2.4 ticks rounds down to 2 more.
        p.run(2.4 * dt);
        assert!((p.time() - 5.0 * dt).abs() < 1e-12);
        // run_traces honors the same contract.
        let mut q = Platform::new(PlatformConfig::builder().quiet().build().expect("valid"));
        let _ = q.run_traces(2.55 * dt, 1);
        assert!((q.time() - 3.0 * dt).abs() < 1e-12);
    }

    #[test]
    fn dimensioning_produces_usable_gains() {
        let c = PlatformConfig::default();
        let g_open = c.open_loop_rate_gain();
        assert!(g_open > 0.05 && g_open < 20.0, "open gain {g_open}");
        let g_closed = c.closed_loop_rate_gain();
        assert!(g_closed > 0.05 && g_closed < 50.0, "closed gain {g_closed}");
    }

    /// Dispersed fleet-eligible configs: each lane gets its own seed plus
    /// small parameter spread, mirroring a Monte-Carlo draw.
    fn fleet_configs(n: usize) -> Vec<PlatformConfig> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                let mut g = ascp_mems::gyro::GyroParams::default();
                g.f0 = Hertz(15_000.0 * (1.0 + 0.002 * f));
                g.q_drive *= 1.0 + 0.01 * f;
                g.q_sense *= 1.0 - 0.005 * f;
                g.quadrature_rate += DegPerSec(3.0 * f);
                g.noise_density = 0.02;
                PlatformConfig::builder()
                    .quiet()
                    .gyro(g)
                    .charge_gain(4.0 * (1.0 + 0.003 * f))
                    .seed(0x5eed_0000 + i as u64)
                    .build()
                    .expect("valid dispersed config")
            })
            .collect()
    }

    fn state_bytes(p: &Platform) -> Vec<u8> {
        let mut w = StateWriter::new();
        p.save_state(&mut w);
        w.into_bytes()
    }

    fn assert_lanes_match_scalar(fleet: &[Platform], scalar: &[Platform]) {
        for (l, (f, s)) in fleet.iter().zip(scalar).enumerate() {
            assert_eq!(f.ticks(), s.ticks(), "lane {l} tick count");
            assert_eq!(
                state_bytes(f),
                state_bytes(s),
                "lane {l} save_state bytes diverged from scalar run"
            );
        }
    }

    #[test]
    fn fleet_matches_scalar_bit_exactly() {
        // Crosses many monitor boundaries (period = 250 ticks @ 250 kHz)
        // and exercises mid-run stimulus changes through for_each_platform.
        for n in [1usize, 2, 8] {
            let scalar: Vec<Platform> = fleet_configs(n).into_iter().map(Platform::new).collect();
            let mut scalar = scalar;
            let fleet_members: Vec<Platform> =
                fleet_configs(n).into_iter().map(Platform::new).collect();
            let mut fleet = PlatformFleet::new(fleet_members).expect("eligible fleet");

            fleet.step_block(1_100);
            for p in &mut scalar {
                p.step_block(1_100);
            }

            fleet.for_each_platform(|p| {
                p.set_rate(DegPerSec(120.0));
                p.set_temperature(Celsius(40.0));
            });
            for p in &mut scalar {
                p.set_rate(DegPerSec(120.0));
                p.set_temperature(Celsius(40.0));
            }

            // Per-tick output identity over a stretch with a boundary in it.
            for _ in 0..300 {
                fleet.step();
                for (l, p) in scalar.iter_mut().enumerate() {
                    p.step();
                    assert_eq!(
                        fleet.rate_output_dps(l).to_bits(),
                        p.rate_output_dps().to_bits(),
                        "lane {l} rate output diverged at tick {}",
                        p.ticks()
                    );
                }
            }

            fleet.step_block(847);
            for p in &mut scalar {
                p.step_block(847);
            }

            let members = fleet.into_platforms();
            assert_lanes_match_scalar(&members, &scalar);
        }
    }

    #[test]
    fn fleet_round_trips_through_checkpoint() {
        // save_state from a synced fleet member must load into a scalar
        // platform that then steps identically.
        let n = 4;
        let mut fleet =
            PlatformFleet::new(fleet_configs(n).into_iter().map(Platform::new).collect())
                .expect("eligible");
        fleet.step_block(600);

        let mut restored: Vec<Platform> = fleet_configs(n)
            .into_iter()
            .map(|c| {
                let mut p = Platform::new(c);
                p.step_block(600);
                p
            })
            .collect();
        for (l, p) in restored.iter_mut().enumerate() {
            let bytes = state_bytes(fleet.platform_synced(l));
            let mut fresh = Platform::new(fleet_configs(n).swap_remove(l));
            let mut r = StateReader::new(&bytes);
            fresh.load_state(&mut r).expect("load");
            assert_eq!(state_bytes(&fresh), state_bytes(p), "lane {l} round trip");
        }

        // And the restored platforms must continue bit-identically to the
        // fleet when re-batched.
        let mut refleet = PlatformFleet::new(fleet.into_platforms()).expect("still eligible");
        refleet.step_block(500);
        for p in &mut restored {
            p.step_block(500);
        }
        assert_lanes_match_scalar(&refleet.into_platforms(), &restored);
    }

    #[test]
    fn fleet_rejects_ineligible_members() {
        let mut configs = fleet_configs(2);
        configs[1].cpu_enabled = true;
        let members: Vec<Platform> = configs.into_iter().map(Platform::new).collect();
        let err = match PlatformFleet::new(members) {
            Err(e) => e,
            Ok(_) => panic!("CPU-enabled lane must be rejected"),
        };
        assert!(err.reason.contains("CPU"), "reason: {}", err.reason);
        assert_eq!(err.platforms.len(), 2, "platforms returned for fallback");

        // Mixed tick phase is also rejected.
        let mut members = err.platforms;
        members[1].config.cpu_enabled = false;
        members[0].step();
        assert!(PlatformFleet::new(members).is_err(), "phase skew accepted");
    }
}
