//! Monitoring / communication firmware for the platform's 8051.
//!
//! The paper's partition: hardware does the signal processing, software does
//! "control, monitoring and communication tasks ... a routine constantly
//! checks the system status by accessing the several readable registers
//! spread along the processing chain (for example makes sure that the PLL
//! is locked). Meanwhile other routines handle communication services,
//! providing status and output data to the user" (§4.2).
//!
//! [`MONITOR`] is that firmware: it polls the DSP status register through
//! the bridge, kicks the watchdog, mirrors the lock flag onto P1.0, and
//! streams `[0xA5, status, rate_lo, rate_hi]` frames over the UART.

use ascp_mcu8051::asm::{assemble, AsmError};

/// Frame header byte of the UART status stream.
pub const FRAME_HEADER: u8 = 0xa5;

/// Monitoring firmware source (see module docs).
///
/// Bridge protocol (see [`ascp_mcu8051::periph::bridge_sfr`]): write the
/// peripheral address to 0xA1, strobe 0xA4 with 1 to read into 0xA2/0xA3.
/// DSP registers sit at bus address 0x40 + reg; the watchdog kick is bus
/// address 0x12.
pub const MONITOR: &str = r"
        ; ---- register map constants ----
BR_ADDR  EQU 0xa1
BR_DLO   EQU 0xa2
BR_DHI   EQU 0xa3
BR_CTRL  EQU 0xa4
DSP_STAT EQU 0x40       ; DSP status register on the 16-bit bus
DSP_RATE EQU 0x44       ; rate output register
WDOG_KICK EQU 0x12      ; watchdog kick register

        org 0x0000
        ljmp main

        org 0x0040
main:
        mov sp, #0x30
loop:
        ; kick the watchdog (write strobe, data don't-care)
        mov BR_ADDR, #WDOG_KICK
        mov BR_CTRL, #2

        ; read DSP status
        mov BR_ADDR, #DSP_STAT
        mov BR_CTRL, #1
        mov a, BR_DLO
        mov r4, a          ; r4 = status

        ; mirror PLL-locked (bit 0) onto P1.0
        jnb acc.0, notlock
        setb p1.0
        sjmp stat_done
notlock:
        clr p1.0
stat_done:

        ; read rate output
        mov BR_ADDR, #DSP_RATE
        mov BR_CTRL, #1
        mov a, BR_DLO
        mov r5, a          ; rate low
        mov a, BR_DHI
        mov r6, a          ; rate high

        ; send frame: A5, status, rate_lo, rate_hi
        mov a, #0xa5
        lcall tx
        mov a, r4
        lcall tx
        mov a, r5
        lcall tx
        mov a, r6
        lcall tx

        ; pacing delay
        mov r7, #200
pace:   djnz r7, pace
        sjmp loop

tx:     mov sbuf, a
txw:    jnb ti, txw
        clr ti
        ret
";

/// Boot loader for the 'prototype' variant: receives a program over UART
/// (length-prefixed: `len_lo, len_hi, bytes...`), writes it through the
/// cache controller to program RAM at 0x1000, then jumps to it. This is the
/// paper's "boot placed in a small 1 Kb ROM would perform software download
/// via UART" (§4.2).
pub const UART_BOOT: &str = r"
CC_ALO  EQU 0x91
CC_AHI  EQU 0x92
CC_DATA EQU 0x93

        org 0x0000
        ljmp boot

        org 0x0040
boot:
        mov sp, #0x30
        mov scon, #0x50     ; mode 1, REN
        ; receive length (lo, hi)
        lcall rx
        mov r2, a           ; len lo
        lcall rx
        mov r3, a           ; len hi
        ; set download base 0x1000
        mov CC_ALO, #0x00
        mov CC_AHI, #0x10
        ; if len == 0 skip
        mov a, r2
        orl a, r3
        jz launch
load:
        lcall rx
        mov CC_DATA, a      ; write + autoincrement
        ; 16-bit decrement of r3:r2
        mov a, r2
        jnz declo
        dec r3
declo:  dec r2
        mov a, r2
        orl a, r3
        jnz load
launch:
        ljmp 0x1000

rx:     jnb ri, rx
        clr ri
        mov a, sbuf
        ret
";

/// EEPROM boot loader: reads a length-prefixed image from a 25xx SPI
/// EEPROM through the bridge's SPI master and launches it — the paper's
/// "reboot directly from EEPROM instead of downloading each time" (§4.2).
pub const EEPROM_BOOT: &str = r"
BR_ADDR EQU 0xa1
BR_DLO  EQU 0xa2
BR_DHI  EQU 0xa3
BR_CTRL EQU 0xa4
SPI_CS  EQU 0x00
SPI_DAT EQU 0x01
CC_ALO  EQU 0x91
CC_AHI  EQU 0x92
CC_DATA EQU 0x93

        org 0x0000
        ljmp boot

        org 0x0040
boot:
        mov sp, #0x30
        ; assert CS
        mov BR_ADDR, #SPI_CS
        mov BR_DLO, #1
        mov BR_DHI, #0
        mov BR_CTRL, #2
        ; send READ command + 16-bit address 0
        mov a, #0x03
        lcall spix
        clr a
        lcall spix
        clr a
        lcall spix
        ; read length (lo, hi)
        lcall spird
        mov r2, a
        lcall spird
        mov r3, a
        ; download to 0x1000
        mov CC_ALO, #0x00
        mov CC_AHI, #0x10
        mov a, r2
        orl a, r3
        jz launch
load:
        lcall spird
        mov CC_DATA, a
        mov a, r2
        jnz declo
        dec r3
declo:  dec r2
        mov a, r2
        orl a, r3
        jnz load
launch:
        ; deassert CS
        mov BR_ADDR, #SPI_CS
        mov BR_DLO, #0
        mov BR_CTRL, #2
        ljmp 0x1000

; transmit A over SPI (response discarded)
spix:
        mov BR_ADDR, #SPI_DAT
        mov BR_DLO, a
        mov BR_CTRL, #2
        ret

; read one byte from SPI (send dummy 0)
spird:
        mov BR_ADDR, #SPI_DAT
        mov BR_DLO, #0
        mov BR_CTRL, #2
        mov BR_CTRL, #1
        mov a, BR_DLO
        ret
";

/// Channel auto-detecting boot loader — the paper's start-up behaviour:
/// "at start-up all the communication devices look for a response on their
/// channel, in a way that the connected peripheral is automatically
/// detected" (§4.2). The loader probes the UART for traffic, then the SPI
/// for a responding EEPROM (RDSR ≠ 0xFF), and boots from whichever answers
/// first; P1 bits 4/5 report the selected channel (UART/SPI).
pub const AUTODETECT_BOOT: &str = r"
BR_ADDR EQU 0xa1
BR_DLO  EQU 0xa2
BR_DHI  EQU 0xa3
BR_CTRL EQU 0xa4
SPI_CS  EQU 0x00
SPI_DAT EQU 0x01
CC_ALO  EQU 0x91
CC_AHI  EQU 0x92
CC_DATA EQU 0x93

        org 0x0000
        ljmp probe

        org 0x0040
probe:
        mov sp, #0x30
        mov scon, #0x50     ; UART mode 1, REN
        mov r7, #0          ; probe round counter
probe_loop:
        ; --- UART window: poll RI for a while ---
        mov r6, #200
uart_poll:
        jb ri, uart_found
        mov r5, #50
uwait:  djnz r5, uwait
        djnz r6, uart_poll

        ; --- SPI probe: RDSR; a present EEPROM answers != 0xFF ---
        mov BR_ADDR, #SPI_CS
        mov BR_DLO, #1
        mov BR_DHI, #0
        mov BR_CTRL, #2
        mov BR_ADDR, #SPI_DAT
        mov BR_DLO, #0x05   ; RDSR
        mov BR_CTRL, #2
        mov BR_DLO, #0
        mov BR_CTRL, #2     ; clock the response byte
        mov BR_CTRL, #1
        mov a, BR_DLO
        mov r4, a
        mov BR_ADDR, #SPI_CS
        mov BR_DLO, #0
        mov BR_CTRL, #2
        mov a, r4
        cjne a, #0xff, spi_found
        sjmp probe_loop

uart_found:
        mov p1, #0x10       ; report: UART selected
        ; length-prefixed download (first byte already pending in SBUF)
        lcall rx
        mov r2, a
        lcall rx
        mov r3, a
        mov CC_ALO, #0x00
        mov CC_AHI, #0x10
        mov a, r2
        orl a, r3
        jz launch
uload:  lcall rx
        mov CC_DATA, a
        mov a, r2
        jnz udeclo
        dec r3
udeclo: dec r2
        mov a, r2
        orl a, r3
        jnz uload
        sjmp launch

spi_found:
        mov p1, #0x20       ; report: SPI selected
        ; READ from address 0: length-prefixed image
        mov BR_ADDR, #SPI_CS
        mov BR_DLO, #1
        mov BR_CTRL, #2
        mov a, #0x03
        lcall spix
        clr a
        lcall spix
        clr a
        lcall spix
        lcall spird
        mov r2, a
        lcall spird
        mov r3, a
        mov CC_ALO, #0x00
        mov CC_AHI, #0x10
        mov a, r2
        orl a, r3
        jz spidone
sload:  lcall spird
        mov CC_DATA, a
        mov a, r2
        jnz sdeclo
        dec r3
sdeclo: dec r2
        mov a, r2
        orl a, r3
        jnz sload
spidone:
        mov BR_ADDR, #SPI_CS
        mov BR_DLO, #0
        mov BR_CTRL, #2
launch:
        ljmp 0x1000

rx:     jnb ri, rx
        clr ri
        mov a, sbuf
        ret
spix:
        mov BR_ADDR, #SPI_DAT
        mov BR_DLO, a
        mov BR_CTRL, #2
        ret
spird:
        mov BR_ADDR, #SPI_DAT
        mov BR_DLO, #0
        mov BR_CTRL, #2
        mov BR_CTRL, #1
        mov a, BR_DLO
        ret
";

/// Assembles the channel auto-detecting boot loader.
///
/// # Errors
///
/// Same contract as [`monitor_image`].
pub fn autodetect_boot_image() -> Result<Vec<u8>, AsmError> {
    assemble(AUTODETECT_BOOT)
}

/// Assembles the monitor firmware.
///
/// # Errors
///
/// Returns the assembler error (should not happen for the built-in source;
/// exposed for callers assembling modified variants).
pub fn monitor_image() -> Result<Vec<u8>, AsmError> {
    assemble(MONITOR)
}

/// Assembles the UART boot loader.
///
/// # Errors
///
/// Same contract as [`monitor_image`].
pub fn uart_boot_image() -> Result<Vec<u8>, AsmError> {
    assemble(UART_BOOT)
}

/// Assembles the EEPROM boot loader.
///
/// # Errors
///
/// Same contract as [`monitor_image`].
pub fn eeprom_boot_image() -> Result<Vec<u8>, AsmError> {
    assemble(EEPROM_BOOT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registers::{shared_dsp_regs, DspReg, DspRegsBus16};
    use ascp_mcu8051::cpu::Cpu;
    use ascp_mcu8051::periph::{Bus16Device, SpiEeprom, SystemBus};

    fn monitor_setup() -> (Cpu, SystemBus, crate::registers::SharedDspRegs) {
        let regs = shared_dsp_regs();
        let mut bus = SystemBus::new();
        bus.dsp = Some(Box::new(DspRegsBus16(regs.clone())));
        let mut cpu = Cpu::new();
        cpu.load_code(&monitor_image().expect("monitor assembles"));
        (cpu, bus, regs)
    }

    #[test]
    fn all_firmware_assembles() {
        assert!(!monitor_image().unwrap().is_empty());
        assert!(!uart_boot_image().unwrap().is_empty());
        assert!(!eeprom_boot_image().unwrap().is_empty());
    }

    #[test]
    fn monitor_streams_frames_with_status_and_rate() {
        let (mut cpu, mut bus, regs) = monitor_setup();
        regs.borrow_mut().set(DspReg::Status, 0b0101);
        regs.borrow_mut().set(DspReg::RateOut, 0x1234);
        cpu.run_cycles(200_000, &mut bus);
        let tx = cpu.uart_take_tx();
        // Find a complete frame.
        let pos = tx
            .windows(4)
            .position(|w| w[0] == FRAME_HEADER && w[1] == 0b0101)
            .expect("frame found");
        assert_eq!(tx[pos + 2], 0x34);
        assert_eq!(tx[pos + 3], 0x12);
    }

    #[test]
    fn monitor_mirrors_lock_on_p1() {
        let (mut cpu, mut bus, regs) = monitor_setup();
        regs.borrow_mut().set(DspReg::Status, 0b0001);
        cpu.run_cycles(100_000, &mut bus);
        assert_eq!(cpu.sfr(0x90) & 1, 1, "P1.0 should be set when locked");
        regs.borrow_mut().set(DspReg::Status, 0b0000);
        cpu.run_cycles(100_000, &mut bus);
        assert_eq!(cpu.sfr(0x90) & 1, 0, "P1.0 should clear when unlocked");
    }

    #[test]
    fn monitor_kicks_watchdog() {
        let (mut cpu, mut bus, _regs) = monitor_setup();
        // Arm the watchdog with a period shorter than the sim run but far
        // longer than one monitor loop.
        bus.watchdog.write16(1, 30_000);
        bus.watchdog.write16(0, 1);
        for _ in 0..50_000 {
            let c = cpu.step(&mut bus);
            bus.watchdog.tick(c);
        }
        assert!(!bus.watchdog.expired(), "watchdog starved");
    }

    #[test]
    fn watchdog_bites_if_monitor_halts() {
        let (mut cpu, mut bus, _regs) = monitor_setup();
        bus.watchdog.write16(1, 30_000);
        bus.watchdog.write16(0, 1);
        // Replace code with a dead loop: no kicks.
        cpu.load_code(&ascp_mcu8051::asm::assemble("dead: sjmp dead\n").unwrap());
        for _ in 0..50_000 {
            let c = cpu.step(&mut bus);
            bus.watchdog.tick(c);
        }
        assert!(bus.watchdog.expired(), "watchdog should bite");
    }

    #[test]
    fn uart_boot_downloads_and_launches() {
        // Payload: set P1 = 0xAA then spin.
        let payload =
            ascp_mcu8051::asm::assemble("org 0x1000\nmov p1, #0xaa\nspin: sjmp spin\n").unwrap();
        let body = &payload[0x1000..];
        let mut cpu = Cpu::new();
        cpu.load_code(&uart_boot_image().unwrap());
        let mut bus = SystemBus::new();
        cpu.uart_inject_rx(body.len() as u8);
        cpu.uart_inject_rx((body.len() >> 8) as u8);
        for &b in body {
            cpu.uart_inject_rx(b);
        }
        for _ in 0..400_000 {
            cpu.step(&mut bus);
            // Apply cache-controller writes to program memory, as the
            // platform glue does.
            for (addr, byte) in bus.cache.take_writes() {
                cpu.code_write(addr, byte);
            }
            if cpu.sfr(0x90) == 0xaa {
                break;
            }
        }
        assert_eq!(cpu.sfr(0x90), 0xaa, "downloaded program did not run");
    }

    #[test]
    fn eeprom_boot_loads_from_spi() {
        let payload =
            ascp_mcu8051::asm::assemble("org 0x1000\nmov p1, #0x77\nspin: sjmp spin\n").unwrap();
        let body = &payload[0x1000..];
        let mut image = vec![body.len() as u8, (body.len() >> 8) as u8];
        image.extend_from_slice(body);
        let mut rom = SpiEeprom::new(4096);
        rom.load(&image);
        let mut bus = SystemBus::new();
        bus.spi.attach(Box::new(rom));
        let mut cpu = Cpu::new();
        cpu.load_code(&eeprom_boot_image().unwrap());
        for _ in 0..400_000 {
            cpu.step(&mut bus);
            for (addr, byte) in bus.cache.take_writes() {
                cpu.code_write(addr, byte);
            }
            if cpu.sfr(0x90) == 0x77 {
                break;
            }
        }
        assert_eq!(cpu.sfr(0x90), 0x77, "EEPROM boot failed");
    }
}

#[cfg(test)]
mod autodetect_tests {
    use super::*;
    use ascp_mcu8051::cpu::Cpu;
    use ascp_mcu8051::periph::{SpiEeprom, SystemBus};

    fn payload(marker: u8) -> Vec<u8> {
        // OR the marker so the loader's channel flag (P1 high nibble)
        // survives.
        let src = format!("org 0x1000\norl p1, #{marker}\nspin: sjmp spin\n");
        ascp_mcu8051::asm::assemble(&src).expect("payload assembles")[0x1000..].to_vec()
    }

    fn run_boot(cpu: &mut Cpu, bus: &mut SystemBus, marker: u8) -> bool {
        for _ in 0..2_000_000 {
            cpu.step(bus);
            for (addr, byte) in bus.cache.take_writes() {
                cpu.code_write(addr, byte);
            }
            if cpu.sfr(0x90) & 0x0f == marker & 0x0f {
                return true;
            }
        }
        false
    }

    #[test]
    fn autodetect_assembles() {
        assert!(!autodetect_boot_image().unwrap().is_empty());
    }

    #[test]
    fn autodetect_picks_uart_when_bytes_arrive() {
        let body = payload(0x04);
        let mut cpu = Cpu::new();
        cpu.load_code(&autodetect_boot_image().unwrap());
        let mut bus = SystemBus::new();
        cpu.uart_inject_rx(body.len() as u8);
        cpu.uart_inject_rx((body.len() >> 8) as u8);
        for &b in &body {
            cpu.uart_inject_rx(b);
        }
        assert!(run_boot(&mut cpu, &mut bus, 0x04), "payload never ran");
        assert_eq!(cpu.sfr(0x90) & 0x30, 0x10, "UART channel flag");
    }

    #[test]
    fn autodetect_falls_back_to_eeprom() {
        let body = payload(0x08);
        let mut image = vec![body.len() as u8, (body.len() >> 8) as u8];
        image.extend_from_slice(&body);
        let mut rom = SpiEeprom::new(4096);
        rom.load(&image);
        let mut cpu = Cpu::new();
        cpu.load_code(&autodetect_boot_image().unwrap());
        let mut bus = SystemBus::new();
        bus.spi.attach(Box::new(rom));
        assert!(run_boot(&mut cpu, &mut bus, 0x08), "payload never ran");
        assert_eq!(cpu.sfr(0x90) & 0x30, 0x20, "SPI channel flag");
    }

    #[test]
    fn autodetect_keeps_probing_with_nothing_attached() {
        let mut cpu = Cpu::new();
        cpu.load_code(&autodetect_boot_image().unwrap());
        let mut bus = SystemBus::new();
        cpu.run_cycles(500_000, &mut bus);
        // Still in the probe loop: P1 untouched (reset value), PC in the
        // loader.
        assert_eq!(cpu.sfr(0x90), 0xff);
        assert!(cpu.pc() < 0x1000);
    }
}
