//! The generic sensor-conditioning channel: one platform, many sensors.
//!
//! [`SensorChannel`] composes a [`SensorFrontEnd`] with the same IP
//! portfolio the gyro platform draws from — buffered voltage reference,
//! PGA, SAR ADC, CIC decimation (DC paths) or NCO + coherent demodulation
//! (carrier paths) — and retargets the platform's production machinery to
//! it:
//!
//! - **supervisor checks**: a per-channel status machine classifies every
//!   supervision window against the front-end's
//!   [`PlausibilityBands`] and latches not-connected / short-to-ground /
//!   reverse-polarity / out-of-range verdicts with a persistence filter,
//!   recording `(from, to)` transitions in the same shape the campaign
//!   coverage matrix consumes;
//! - **fault catalog**: the channel polls an [`ascp_sim::fault::FaultPlan`]
//!   and maps the wire-fault classes
//!   ([`FaultKind::WireNotConnected`] / [`FaultKind::WireShortToGround`] /
//!   [`FaultKind::WireReversePolarity`]) onto the front-end's electrical
//!   fault hook, and [`FaultKind::ReferenceDroop`] onto the excitation
//!   reference;
//! - **campaign measurements**: [`ChannelScenario`] retargets the Step
//!   DSL's measurement semantics (static transfer, noise density, fault
//!   response) and produces ordinary
//!   [`crate::campaign::ScenarioOutcome`]s, so channel sweeps merge into a
//!   [`crate::campaign::CampaignReport`] next to gyro scenarios and flow
//!   through the same CSV/coverage/telemetry artifacts;
//! - **checkpointing**: [`SensorChannel::save_state`] /
//!   [`SensorChannel::load_state`] snapshot every component bit-exactly and
//!   refuse restores across configuration changes via a config digest that
//!   folds in [`SensorFrontEnd::config_digest`].
//!
//! # Example
//!
//! ```
//! use ascp_core::frontend::{ChannelConfig, SensorChannel};
//! use ascp_mems::pressure::MapSensorFrontEnd;
//!
//! let cfg = ChannelConfig::new("map", 42);
//! let mut ch = SensorChannel::new(cfg, Box::new(MapSensorFrontEnd::automotive(7)));
//! ch.set_stimulus(150.0);
//! ch.settle(0.01);
//! let kpa = ch.read(32);
//! assert!((kpa - 150.0).abs() < 3.0);
//! ```

use crate::campaign::{derive_seed, ScenarioOutcome, ScenarioStatus};
use ascp_afe::adc::{AdcConfig, SarAdc};
use ascp_afe::amp::Pga;
use ascp_afe::refs::VoltageReference;
use ascp_dsp::cic::CicDecimator;
use ascp_dsp::demod::Demodulator;
use ascp_dsp::fft::{band_density, welch_psd, Window};
use ascp_dsp::nco::Nco;
use ascp_mems::frontend::{
    Excitation, NodeObservation, PlausibilityBands, SensorFrontEnd, WireFault, WireStatus,
};
use ascp_sim::fault::{FaultEdge, FaultKind, FaultPlan};
use ascp_sim::snapshot::{fnv1a64, SnapshotError, StateReader, StateWriter};
use ascp_sim::stats;
use ascp_sim::units::{Celsius, Volts};
use std::sync::Arc;

/// Construction parameters of a [`SensorChannel`].
#[derive(Debug, Clone)]
pub struct ChannelConfig {
    /// Channel name (telemetry, scenario rows).
    pub name: String,
    /// Raw analog sample rate, Hz.
    pub fs_hz: f64,
    /// Decimation factor: CIC rate change on DC paths, demodulator
    /// decimation on carrier paths.
    pub decimation: u32,
    /// PGA gain code into [`Pga::GAIN_LADDER`].
    pub gain_code: u8,
    /// Signal-path ADC full scale, volts (the monitor ADC is always
    /// referenced to the excitation rail).
    pub adc_vref: f64,
    /// Raw samples per supervision window (default 100: 1 kHz at the
    /// default 100 kHz sample rate — the platform's monitor cadence).
    pub monitor_window: u32,
    /// Consecutive windows a verdict must hold before the status latches.
    pub persistence: u32,
    /// Master noise seed; component seeds derive from it.
    pub seed: u64,
}

impl ChannelConfig {
    /// Defaults: 100 kHz sampling, ÷50 decimation, unity gain, ±2.5 V
    /// signal ADC, 1 kHz supervision with a 3-window persistence filter.
    #[must_use]
    pub fn new(name: &str, seed: u64) -> Self {
        Self {
            name: name.to_owned(),
            fs_hz: 100_000.0,
            decimation: 50,
            gain_code: 0,
            adc_vref: 2.5,
            monitor_window: 100,
            persistence: 3,
            seed,
        }
    }

    /// Digest over the channel's own parameters (the front-end adds its
    /// own via [`SensorFrontEnd::config_digest`]).
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut w = StateWriter::new();
        w.put_u8_slice(self.name.as_bytes());
        w.put_f64(self.fs_hz);
        w.put_u32(self.decimation);
        w.put_u8(self.gain_code);
        w.put_f64(self.adc_vref);
        w.put_u32(self.monitor_window);
        w.put_u32(self.persistence);
        w.put_u64(self.seed);
        fnv1a64(w.bytes())
    }
}

/// The channel supervisor's latched status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelStatus {
    /// No window classified yet.
    Init,
    /// Node inside the valid bands, output inside range.
    Normal,
    /// Harness open (node at the pull-up rail).
    NotConnected,
    /// Harness shorted to ground.
    ShortToGround,
    /// Connector reversed.
    ReversePolarity,
    /// Node plausible but the conditioned output left the declared range.
    OutOfRange,
}

impl ChannelStatus {
    /// Stable label (supervisor transitions, coverage columns).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Init => "init",
            Self::Normal => "normal",
            Self::NotConnected => "not_connected",
            Self::ShortToGround => "short_to_ground",
            Self::ReversePolarity => "reverse_polarity",
            Self::OutOfRange => "out_of_range",
        }
    }

    fn from_wire(ws: WireStatus) -> Self {
        match ws {
            WireStatus::Ok => Self::Normal,
            WireStatus::NotConnected => Self::NotConnected,
            WireStatus::ShortToGround => Self::ShortToGround,
            WireStatus::ReversePolarity => Self::ReversePolarity,
        }
    }
}

/// DC signal path: CIC decimator.
#[derive(Debug)]
struct DcPath {
    cic: CicDecimator,
}

/// Carrier signal path: NCO excitation + coherent demodulation.
#[derive(Debug)]
struct CarrierPath {
    nco: Nco,
    demod: Demodulator,
    amplitude_v: f64,
    /// One-pole low-passed demodulated ratio (the pilot monitor).
    pilot_filt: f64,
}

enum SignalPath {
    Dc(DcPath),
    Carrier(CarrierPath),
}

/// A complete conditioning channel for one [`SensorFrontEnd`].
pub struct SensorChannel {
    config: ChannelConfig,
    frontend: Box<dyn SensorFrontEnd + Send>,
    excitation: VoltageReference,
    rail_nominal: f64,
    /// Resistive tap in front of the PGA: keeps a full-rail node (the
    /// not-connected fault level) inside the ±2.5 V amplifier swing when
    /// the sensor is excited from a higher rail.
    input_div: f64,
    pga: Pga,
    adc: SarAdc,
    monitor_adc: SarAdc,
    path: SignalPath,
    faults: FaultPlan,
    fault_edges: Vec<FaultEdge>,
    wire_fault: Option<WireFault>,
    bands: PlausibilityBands,
    /// Simulation time, seconds.
    t: f64,
    ticks: u64,
    /// Monitor-window accumulators over raw node samples.
    win_sum: f64,
    win_sq: f64,
    win_n: u32,
    /// Latched status + persistence filter.
    status: ChannelStatus,
    candidate: ChannelStatus,
    candidate_count: u32,
    transitions: Vec<(&'static str, &'static str)>,
    /// Last decimated conditioned output (engineering units) and the
    /// normalized ratio it came from.
    last_eu: f64,
    last_ratio: f64,
}

impl SensorChannel {
    /// Builds a channel for `frontend` from the shared IP portfolio.
    #[must_use]
    pub fn new(config: ChannelConfig, frontend: Box<dyn SensorFrontEnd + Send>) -> Self {
        let excitation_spec = frontend.excitation();
        let rail_nominal = excitation_spec.rail();
        // PGA output rails at ±2.5 V; a 5 V ratiometric node needs a 2:1
        // divider tap so the full-rail (not-connected) level still fits.
        let input_div = (rail_nominal / 2.5).max(1.0);
        let excitation = VoltageReference::new(
            Volts(rail_nominal),
            25.0e-6,
            20.0e-6,
            derive_seed(config.seed, 1),
        );
        let mut pga = Pga::new(
            500_000.0,
            50.0e-6,
            1.0e-6,
            10.0e-6,
            derive_seed(config.seed, 2),
        );
        pga.set_gain_code(config.gain_code);
        let adc = SarAdc::new(AdcConfig {
            vref: Volts(config.adc_vref),
            seed: derive_seed(config.seed, 3),
            ..AdcConfig::default()
        });
        // The monitor ADC taps the unamplified node, referenced to the
        // excitation rail (ratiometric, dbus-adc style).
        let monitor_adc = SarAdc::new(AdcConfig {
            vref: Volts(rail_nominal),
            seed: derive_seed(config.seed, 4),
            ..AdcConfig::default()
        });
        let path = match excitation_spec {
            Excitation::Dc { .. } => SignalPath::Dc(DcPath {
                cic: CicDecimator::new(3, config.decimation),
            }),
            Excitation::Carrier {
                freq_hz,
                amplitude_v,
            } => {
                let mut nco = Nco::new();
                nco.set_frequency(freq_hz, config.fs_hz);
                SignalPath::Carrier(CarrierPath {
                    nco,
                    // Channel filter well below the carrier.
                    demod: Demodulator::new(200.0 / config.fs_hz, 101, config.decimation),
                    amplitude_v,
                    pilot_filt: 0.0,
                })
            }
        };
        let bands = frontend.plausibility();
        Self {
            config,
            frontend,
            excitation,
            rail_nominal,
            input_div,
            pga,
            adc,
            monitor_adc,
            path,
            faults: FaultPlan::new(),
            fault_edges: Vec::new(),
            wire_fault: None,
            bands,
            t: 0.0,
            ticks: 0,
            win_sum: 0.0,
            win_sq: 0.0,
            win_n: 0,
            status: ChannelStatus::Init,
            candidate: ChannelStatus::Init,
            candidate_count: 0,
            transitions: Vec::new(),
            last_eu: 0.0,
            last_ratio: 0.0,
        }
    }

    /// Installs a fault plan (wire faults and reference droop are mapped;
    /// other catalog classes do not apply to a bare channel).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The channel configuration.
    #[must_use]
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// The conditioned front-end.
    #[must_use]
    pub fn frontend(&self) -> &dyn SensorFrontEnd {
        self.frontend.as_ref()
    }

    /// Sets the physical stimulus in engineering units.
    pub fn set_stimulus(&mut self, value: f64) {
        self.frontend.set_stimulus(value);
    }

    /// Sets the transducer temperature.
    pub fn set_temperature(&mut self, t: Celsius) {
        self.frontend.set_temperature(t);
    }

    /// Current simulation time, seconds.
    #[must_use]
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Latched supervisor status.
    #[must_use]
    pub fn status(&self) -> ChannelStatus {
        self.status
    }

    /// Supervisor `(from, to)` transitions observed so far.
    #[must_use]
    pub fn transitions(&self) -> &[(&'static str, &'static str)] {
        &self.transitions
    }

    /// Last decimated conditioned output, engineering units.
    #[must_use]
    pub fn last_output(&self) -> f64 {
        self.last_eu
    }

    /// Last normalized node/demod ratio feeding the conditioning recipe.
    #[must_use]
    pub fn last_ratio(&self) -> f64 {
        self.last_ratio
    }

    /// Decimated output sample rate, Hz.
    #[must_use]
    pub fn output_rate(&self) -> f64 {
        self.config.fs_hz / f64::from(self.config.decimation)
    }

    /// Combined configuration digest: channel parameters + front-end
    /// construction parameters. Snapshots refuse to restore across digest
    /// mismatches.
    #[must_use]
    pub fn config_digest(&self) -> u64 {
        let mut w = StateWriter::new();
        w.put_u64(self.config.digest());
        w.put_u64(self.frontend.config_digest());
        fnv1a64(w.bytes())
    }

    fn apply_fault_edge(&mut self, e: FaultEdge) {
        let on = e.activated;
        match e.kind {
            FaultKind::WireNotConnected => {
                self.wire_fault = on.then_some(WireFault::NotConnected);
            }
            FaultKind::WireShortToGround => {
                self.wire_fault = on.then_some(WireFault::ShortToGround);
            }
            FaultKind::WireReversePolarity => {
                self.wire_fault = on.then_some(WireFault::ReversePolarity);
            }
            FaultKind::ReferenceDroop { frac } => {
                self.excitation.set_droop(if on { frac } else { 0.0 });
            }
            // The remaining catalog classes target gyro-platform blocks
            // (converters, buses, CPU) the bare channel does not own.
            _ => {}
        }
    }

    /// Advances one raw sample; returns the conditioned output when the
    /// decimator emits one.
    pub fn step(&mut self) -> Option<f64> {
        let dt = 1.0 / self.config.fs_hz;
        self.t += dt;
        self.ticks += 1;
        if !self.faults.is_empty() {
            self.fault_edges.clear();
            self.faults.poll(self.t, &mut self.fault_edges);
            let edges = std::mem::take(&mut self.fault_edges);
            for e in &edges {
                self.apply_fault_edge(*e);
            }
            self.fault_edges = edges;
        }
        let rail = self.excitation.output();

        // Instantaneous excitation + front-end sense.
        let (exc_inst, refs) = match &mut self.path {
            SignalPath::Dc(_) => (rail, None),
            SignalPath::Carrier(cp) => {
                let (s, c) = cp.nco.tick();
                let amp = cp.amplitude_v * rail.0 / self.rail_nominal;
                (Volts(amp * s.to_f64()), Some((s, c)))
            }
        };
        let healthy = self.frontend.sense(exc_inst, dt);
        let node = match self.wire_fault {
            Some(f) => self
                .frontend
                .wire_fault_node(f, healthy, Volts(self.rail_nominal)),
            None => healthy,
        };

        // Monitor path: raw node against the excitation rail.
        let mon = self.monitor_adc.convert_q15(node).to_f64() * self.rail_nominal;
        self.win_sum += mon;
        self.win_sq += mon * mon;
        self.win_n += 1;
        if self.win_n >= self.config.monitor_window {
            self.supervise();
        }

        // Signal path: divider tap → PGA → ADC → decimation.
        let amp_out = self.pga.process(Volts(node.0 / self.input_div), dt);
        let q = self.adc.convert_q15(amp_out);
        let gain = self.pga.gain() / self.input_div;
        let out = match &mut self.path {
            SignalPath::Dc(p) => p.cic.process(q).map(|y| {
                let volts = y.to_f64() * self.config.adc_vref / gain;
                volts / self.rail_nominal
            }),
            SignalPath::Carrier(cp) => {
                let (s, c) = refs.expect("carrier path has NCO references");
                cp.demod.process(q, s, c).map(|iq| {
                    // The demod mixer restores the sin²→½ loss itself, so
                    // the in-phase output is already the modulated node
                    // amplitude; undo only gain/vref to get the ratio.
                    let ratio = iq.i.to_f64() * self.config.adc_vref / (gain * cp.amplitude_v);
                    cp.pilot_filt += 0.2 * (ratio - cp.pilot_filt);
                    ratio
                })
            }
        };
        out.map(|ratio| {
            self.last_ratio = ratio;
            self.last_eu = self.frontend.conditioning().apply(ratio);
            self.last_eu
        })
    }

    /// One supervision window: classify the node observation, run the
    /// persistence filter, latch transitions.
    fn supervise(&mut self) {
        let n = f64::from(self.win_n.max(1));
        let mean = self.win_sum / n;
        let var = (self.win_sq / n - mean * mean).max(0.0);
        let obs = NodeObservation {
            dc_ratio: mean / self.rail_nominal,
            ac_ratio: var.sqrt() / self.rail_nominal,
            pilot_ratio: match &self.path {
                SignalPath::Dc(_) => mean / self.rail_nominal,
                SignalPath::Carrier(cp) => cp.pilot_filt,
            },
        };
        self.win_sum = 0.0;
        self.win_sq = 0.0;
        self.win_n = 0;

        let mut verdict = ChannelStatus::from_wire(self.bands.classify(&obs));
        if verdict == ChannelStatus::Normal {
            let (lo, hi) = self.frontend.range();
            let margin = 0.05 * (hi - lo);
            if self.last_eu < lo - margin || self.last_eu > hi + margin {
                verdict = ChannelStatus::OutOfRange;
            }
        }

        if verdict == self.candidate {
            self.candidate_count += 1;
        } else {
            self.candidate = verdict;
            self.candidate_count = 1;
        }
        if self.candidate_count >= self.config.persistence && self.status != self.candidate {
            self.transitions
                .push((self.status.label(), self.candidate.label()));
            self.status = self.candidate;
        }
    }

    /// Runs raw ticks for `seconds` without collecting outputs.
    pub fn settle(&mut self, seconds: f64) {
        let n = (seconds * self.config.fs_hz).ceil() as u64;
        for _ in 0..n {
            let _ = self.step();
        }
    }

    /// Collects `n` decimated outputs.
    pub fn collect(&mut self, n: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            if let Some(y) = self.step() {
                out.push(y);
            }
        }
        out
    }

    /// Mean of `n` decimated outputs, engineering units.
    pub fn read(&mut self, n: usize) -> f64 {
        stats::mean(&self.collect(n))
    }

    /// Serializes the complete channel state (front-end, excitation, PGA,
    /// converters, decimators, fault cursors, supervisor) behind the
    /// config digest.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.leaf("SCHN", |w| {
            w.put_u64(self.config_digest());
            w.put_f64(self.t);
            w.put_u64(self.ticks);
            w.put_f64(self.win_sum);
            w.put_f64(self.win_sq);
            w.put_u32(self.win_n);
            w.put_u8(status_code(self.status));
            w.put_u8(status_code(self.candidate));
            w.put_u32(self.candidate_count);
            w.put_u32(self.transitions.len() as u32);
            for &(from, to) in &self.transitions {
                w.put_u8(label_code(from));
                w.put_u8(label_code(to));
            }
            w.put_u8(match self.wire_fault {
                None => 0,
                Some(WireFault::NotConnected) => 1,
                Some(WireFault::ShortToGround) => 2,
                Some(WireFault::ReversePolarity) => 3,
            });
            w.put_f64(self.last_eu);
            w.put_f64(self.last_ratio);
            self.frontend.save_state(w);
            self.excitation.save_state(w);
            self.pga.save_state(w);
            self.adc.save_state(w);
            self.monitor_adc.save_state(w);
            match &self.path {
                SignalPath::Dc(p) => p.cic.save_state(w),
                SignalPath::Carrier(cp) => {
                    cp.nco.save_state(w);
                    cp.demod.save_state(w);
                    w.put_f64(cp.pilot_filt);
                }
            }
            self.faults.save_state(w);
        });
    }

    /// Restores state saved by [`SensorChannel::save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] if the snapshot's config digest does not
    /// match this channel's configuration, plus the underlying decode
    /// errors.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let digest = self.config_digest();
        let (frontend, excitation, pga, adc, monitor_adc, path, faults) = (
            &mut self.frontend,
            &mut self.excitation,
            &mut self.pga,
            &mut self.adc,
            &mut self.monitor_adc,
            &mut self.path,
            &mut self.faults,
        );
        let mut t = 0.0;
        let mut ticks = 0;
        let mut win = (0.0, 0.0, 0u32);
        let mut codes = (0u8, 0u8, 0u32);
        let mut transitions = Vec::new();
        let mut wire = 0u8;
        let mut last = (0.0, 0.0);
        r.leaf("SCHN", |r| {
            let saved = r.take_u64()?;
            if saved != digest {
                return Err(SnapshotError::Corrupt {
                    context: format!(
                        "channel config digest mismatch: snapshot {saved:#x}, channel {digest:#x}"
                    ),
                });
            }
            t = r.take_f64()?;
            ticks = r.take_u64()?;
            win = (r.take_f64()?, r.take_f64()?, r.take_u32()?);
            codes = (r.take_u8()?, r.take_u8()?, r.take_u32()?);
            let n = r.take_u32()? as usize;
            transitions.reserve(n);
            for _ in 0..n {
                let from = code_label(r.take_u8()?)?;
                let to = code_label(r.take_u8()?)?;
                transitions.push((from, to));
            }
            wire = r.take_u8()?;
            last = (r.take_f64()?, r.take_f64()?);
            frontend.load_state(r)?;
            excitation.load_state(r)?;
            pga.load_state(r)?;
            adc.load_state(r)?;
            monitor_adc.load_state(r)?;
            match path {
                SignalPath::Dc(p) => p.cic.load_state(r)?,
                SignalPath::Carrier(cp) => {
                    cp.nco.load_state(r)?;
                    cp.demod.load_state(r)?;
                    cp.pilot_filt = r.take_f64()?;
                }
            }
            faults.load_state(r)
        })?;
        self.t = t;
        self.ticks = ticks;
        (self.win_sum, self.win_sq, self.win_n) = win;
        self.status = code_status(codes.0)?;
        self.candidate = code_status(codes.1)?;
        self.candidate_count = codes.2;
        self.transitions = transitions;
        self.wire_fault = match wire {
            0 => None,
            1 => Some(WireFault::NotConnected),
            2 => Some(WireFault::ShortToGround),
            3 => Some(WireFault::ReversePolarity),
            other => {
                return Err(SnapshotError::Corrupt {
                    context: format!("unknown wire-fault code {other}"),
                })
            }
        };
        (self.last_eu, self.last_ratio) = last;
        Ok(())
    }
}

fn status_code(s: ChannelStatus) -> u8 {
    match s {
        ChannelStatus::Init => 0,
        ChannelStatus::Normal => 1,
        ChannelStatus::NotConnected => 2,
        ChannelStatus::ShortToGround => 3,
        ChannelStatus::ReversePolarity => 4,
        ChannelStatus::OutOfRange => 5,
    }
}

fn code_status(code: u8) -> Result<ChannelStatus, SnapshotError> {
    Ok(match code {
        0 => ChannelStatus::Init,
        1 => ChannelStatus::Normal,
        2 => ChannelStatus::NotConnected,
        3 => ChannelStatus::ShortToGround,
        4 => ChannelStatus::ReversePolarity,
        5 => ChannelStatus::OutOfRange,
        other => {
            return Err(SnapshotError::Corrupt {
                context: format!("unknown channel status code {other}"),
            })
        }
    })
}

fn label_code(label: &str) -> u8 {
    match label {
        "init" => 0,
        "normal" => 1,
        "not_connected" => 2,
        "short_to_ground" => 3,
        "reverse_polarity" => 4,
        _ => 5,
    }
}

fn code_label(code: u8) -> Result<&'static str, SnapshotError> {
    code_status(code).map(ChannelStatus::label)
}

/// A measurement a channel scenario performs — the Step DSL's measurement
/// semantics retargeted to generic channels.
#[derive(Debug, Clone)]
pub enum ChannelMeasurement {
    /// Sweep the stimulus across `points`, fit the conditioned transfer,
    /// report sensitivity / linearity / offset.
    StaticTransfer {
        /// Stimulus points in engineering units.
        points: Vec<f64>,
        /// Decimated outputs averaged per point.
        avg: usize,
    },
    /// Hold `at`, collect `samples` decimated outputs, report the in-band
    /// noise density via Welch's method.
    NoiseDensity {
        /// Stimulus hold point, engineering units.
        at: f64,
        /// Decimated outputs to collect.
        samples: usize,
    },
    /// Inject one wire fault and measure supervisor detection + recovery.
    WireFaultResponse {
        /// The harness fault to inject.
        fault: WireFault,
        /// Injection time, seconds.
        at_s: f64,
        /// Fault duration, seconds.
        duration_s: f64,
    },
}

/// One generic-channel scenario: a channel factory plus a measurement.
///
/// The factory takes the effective seed, so Monte-Carlo-style reseeding
/// composes the same way [`crate::campaign::derive_seed`] does for
/// platform scenarios.
#[derive(Clone)]
pub struct ChannelScenario {
    /// Scenario name (report rows).
    pub name: String,
    /// Builds the channel for a given effective seed.
    pub factory: Arc<dyn Fn(u64) -> SensorChannel + Send + Sync>,
    /// The measurement to perform.
    pub measurement: ChannelMeasurement,
    /// Base seed.
    pub seed: u64,
}

/// Runs channel scenarios on the shared worker pool and returns campaign
/// outcomes in input order — bit-identical for any `threads`.
#[must_use]
pub fn run_channel_scenarios(
    scenarios: Vec<ChannelScenario>,
    threads: usize,
) -> Vec<ScenarioOutcome> {
    ascp_sim::campaign::parallel_map(scenarios, threads, |index, sc| {
        run_channel_scenario(index, &sc)
    })
}

fn fault_kind(fault: WireFault) -> FaultKind {
    match fault {
        WireFault::NotConnected => FaultKind::WireNotConnected,
        WireFault::ShortToGround => FaultKind::WireShortToGround,
        WireFault::ReversePolarity => FaultKind::WireReversePolarity,
    }
}

fn expected_status(fault: WireFault) -> ChannelStatus {
    match fault {
        WireFault::NotConnected => ChannelStatus::NotConnected,
        WireFault::ShortToGround => ChannelStatus::ShortToGround,
        WireFault::ReversePolarity => ChannelStatus::ReversePolarity,
    }
}

fn run_channel_scenario(index: usize, sc: &ChannelScenario) -> ScenarioOutcome {
    let seed = derive_seed(sc.seed, index as u64);
    let mut ch = (sc.factory)(seed);
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    let mut fault_classes: Vec<&'static str> = Vec::new();

    match &sc.measurement {
        ChannelMeasurement::StaticTransfer { points, avg } => {
            ch.settle(0.02);
            let mut eus = Vec::with_capacity(points.len());
            let mut node_v = Vec::with_capacity(points.len());
            for &p in points {
                ch.set_stimulus(p);
                ch.settle(0.01);
                let outs = ch.collect(*avg);
                eus.push(stats::mean(&outs));
                node_v.push(ch.last_ratio() * ch.frontend().excitation().rail());
            }
            let fit_eu = stats::linear_fit(points, &eus);
            let fit_v = stats::linear_fit(points, &node_v);
            let (lo, hi) = ch.frontend().range();
            let span = hi - lo;
            let offset: f64 =
                eus.iter().zip(points).map(|(y, x)| y - x).sum::<f64>() / points.len() as f64;
            metrics.push(("transfer_slope".into(), fit_eu.slope));
            metrics.push(("sensitivity_v_per_eu".into(), fit_v.slope));
            metrics.push((
                "linearity_pct_fs".into(),
                100.0 * fit_eu.max_residual / span,
            ));
            metrics.push(("offset_eu".into(), offset));
            series.push(("transfer_eu".into(), eus));
        }
        ChannelMeasurement::NoiseDensity { at, samples } => {
            ch.set_stimulus(*at);
            ch.settle(0.05);
            let xs = ch.collect(*samples);
            let m = stats::mean(&xs);
            let centred: Vec<f64> = xs.iter().map(|x| x - m).collect();
            let fs_out = ch.output_rate();
            let seg = (samples / 4).next_power_of_two().clamp(64, 512);
            let (freqs, psd) = welch_psd(&centred, fs_out, seg, Window::Hann);
            let density = band_density(&freqs, &psd, 5.0, (fs_out / 4.0).min(200.0));
            metrics.push(("noise_density_eu_rthz".into(), density));
            metrics.push(("noise_rms_eu".into(), stats::rms(&centred)));
        }
        ChannelMeasurement::WireFaultResponse {
            fault,
            at_s,
            duration_s,
        } => {
            let kind = fault_kind(*fault);
            fault_classes.push(kind.label());
            let mut plan = FaultPlan::new();
            plan.one_shot(kind, *at_s, *duration_s);
            ch.set_fault_plan(plan);
            let expect = expected_status(*fault);
            let mut detected_at = None;
            let mut recovered = false;
            let end = at_s + duration_s + 0.1;
            while ch.time() < end {
                let _ = ch.step();
                if detected_at.is_none() && ch.status() == expect {
                    detected_at = Some(ch.time());
                }
                if detected_at.is_some()
                    && ch.time() > at_s + duration_s
                    && ch.status() == ChannelStatus::Normal
                {
                    recovered = true;
                    break;
                }
            }
            metrics.push((
                "detected".into(),
                f64::from(u8::from(detected_at.is_some())),
            ));
            metrics.push((
                "latency_ms".into(),
                detected_at.map_or(-1.0, |t| (t - at_s) * 1.0e3),
            ));
            metrics.push(("recovered".into(), f64::from(u8::from(recovered))));
        }
    }

    ScenarioOutcome {
        name: sc.name.clone(),
        index,
        seed,
        metrics,
        series,
        fault_classes,
        transitions: ch.transitions().to_vec(),
        capture: None,
        attempt_errors: Vec::new(),
        status: ScenarioStatus::Done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascp_mems::accel::CapacitiveAccelFrontEnd;
    use ascp_mems::pressure::{IatThermistorFrontEnd, MapSensorFrontEnd};

    fn map_channel(seed: u64) -> SensorChannel {
        let mut cfg = ChannelConfig::new("map", seed);
        cfg.adc_vref = 5.0;
        SensorChannel::new(cfg, Box::new(MapSensorFrontEnd::automotive(seed ^ 0x51)))
    }

    fn accel_channel(seed: u64) -> SensorChannel {
        let cfg = ChannelConfig::new("accel", seed);
        SensorChannel::new(
            cfg,
            Box::new(CapacitiveAccelFrontEnd::crash_50g(seed ^ 0x52)),
        )
    }

    #[test]
    fn map_channel_reads_pressure() {
        let mut ch = map_channel(11);
        ch.set_stimulus(150.0);
        ch.settle(0.02);
        let kpa = ch.read(32);
        assert!((kpa - 150.0).abs() < 3.0, "read {kpa} kPa");
        assert_eq!(ch.status(), ChannelStatus::Normal);
    }

    #[test]
    fn iat_channel_reads_temperature() {
        let mut cfg = ChannelConfig::new("iat", 13);
        cfg.adc_vref = 5.0;
        let mut ch = SensorChannel::new(cfg, Box::new(IatThermistorFrontEnd::automotive(99)));
        ch.set_stimulus(60.0);
        ch.settle(0.02);
        let c = ch.read(32);
        assert!((c - 60.0).abs() < 2.5, "read {c} C");
    }

    #[test]
    fn accel_channel_reads_g() {
        let mut ch = accel_channel(17);
        ch.set_stimulus(20.0);
        ch.settle(0.05);
        let g = ch.read(64);
        assert!((g - 20.0).abs() < 1.5, "read {g} g");
        assert_eq!(ch.status(), ChannelStatus::Normal);
    }

    #[test]
    fn map_wire_faults_classified() {
        for (fault, expect) in [
            (WireFault::NotConnected, ChannelStatus::NotConnected),
            (WireFault::ShortToGround, ChannelStatus::ShortToGround),
            (WireFault::ReversePolarity, ChannelStatus::ReversePolarity),
        ] {
            let mut ch = map_channel(19);
            ch.set_stimulus(200.0);
            let mut plan = FaultPlan::new();
            plan.one_shot(fault_kind(fault), 0.05, 0.05);
            ch.set_fault_plan(plan);
            ch.settle(0.08);
            assert_eq!(ch.status(), expect, "fault {fault:?}");
            ch.settle(0.05);
            assert_eq!(ch.status(), ChannelStatus::Normal, "recovery {fault:?}");
        }
    }

    #[test]
    fn accel_reverse_polarity_flips_pilot() {
        let mut ch = accel_channel(23);
        ch.set_stimulus(0.0);
        let mut plan = FaultPlan::new();
        plan.one_shot(FaultKind::WireReversePolarity, 0.05, 0.08);
        ch.set_fault_plan(plan);
        ch.settle(0.1);
        assert_eq!(ch.status(), ChannelStatus::ReversePolarity);
    }

    #[test]
    fn checkpoint_roundtrip_is_bit_exact() {
        let mut ch = map_channel(29);
        ch.set_stimulus(120.0);
        ch.settle(0.013);
        let mut w = StateWriter::new();
        ch.save_state(&mut w);
        let bytes = w.bytes().to_vec();
        let mut twin = map_channel(29);
        let mut r = StateReader::new(&bytes);
        twin.load_state(&mut r).unwrap();
        let a = ch.collect(40);
        let b = twin.collect(40);
        assert_eq!(a, b, "post-restore outputs must be bit-identical");
    }

    #[test]
    fn checkpoint_refuses_config_mismatch() {
        let mut ch = map_channel(31);
        ch.settle(0.01);
        let mut w = StateWriter::new();
        ch.save_state(&mut w);
        let bytes = w.bytes().to_vec();
        let mut other = map_channel(32); // different seed -> different digest
        let mut r = StateReader::new(&bytes);
        assert!(other.load_state(&mut r).is_err());
    }

    #[test]
    fn scenarios_are_thread_count_invariant() {
        let mk = || {
            vec![
                ChannelScenario {
                    name: "map_transfer".into(),
                    factory: Arc::new(map_channel),
                    measurement: ChannelMeasurement::StaticTransfer {
                        points: vec![50.0, 150.0, 250.0],
                        avg: 16,
                    },
                    seed: 7,
                },
                ChannelScenario {
                    name: "map_nc".into(),
                    factory: Arc::new(map_channel),
                    measurement: ChannelMeasurement::WireFaultResponse {
                        fault: WireFault::NotConnected,
                        at_s: 0.05,
                        duration_s: 0.05,
                    },
                    seed: 7,
                },
            ]
        };
        let one = run_channel_scenarios(mk(), 1);
        let four = run_channel_scenarios(mk(), 4);
        assert_eq!(one.len(), four.len());
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.transitions, b.transitions);
        }
        assert_eq!(one[1].metric("detected"), Some(1.0));
    }
}
