//! Safety supervisor: plausibility monitoring and graceful degradation.
//!
//! Automotive conditioning ASICs pair the signal chain with a safety
//! manager that watches for implausible behaviour and degrades the output
//! contract instead of silently streaming garbage. This module implements
//! that manager for the platform: a five-state FSM evaluated at the 1 kHz
//! monitoring cadence (the same rhythm at which the paper's 8051 routine
//! "constantly checks the system status", §4.2), driven by plausibility
//! checks over the telemetry the platform already collects.
//!
//! ```text
//!             ready                 check fails
//!   Init ───────────────▶ Normal ───────────────▶ Degraded
//!     │                     ▲                      │     │
//!     │ init                │ healthy held         │     │ severe check
//!     │ timeout             │                      │     │ persists /
//!     │                  Recovery ◀────────────────┘     │ watchdog
//!     │                     ▲        checks clear        │ retries
//!     │                     │ backoff + checks           │ exhausted
//!     │                     │ clear (bounded)            ▼
//!     └─────────────────────┴───────────────────────▶ SafeState
//! ```
//!
//! `SafeState` never transitions straight back to `Normal`: every exit
//! goes through `Recovery`, which must hold a healthy streak first. That
//! invariant is what the property test in `tests/prop_supervisor.rs`
//! pins down.
//!
//! Degradation is graceful: while out of `Normal` the supervisor exposes a
//! hold-last-valid rate estimate with a staleness flag, can request an
//! open-loop fallback when the force-rebalance path is implicated, and in
//! `SafeState` directs the platform to park the rate output at mid-scale
//! (the customer-visible "output invalid" level).

use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};
use ascp_sim::telemetry::{Event, Telemetry};

/// Supervisor FSM states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SupervisorState {
    /// Power-on: waiting for PLL lock and AGC settling.
    #[default]
    Init,
    /// All plausibility checks pass; output contract fully valid.
    Normal,
    /// At least one check failing; output degraded (held / open loop).
    Degraded,
    /// Persistent or severe failure: output parked at mid-scale.
    SafeState,
    /// Checks cleared; holding a healthy streak before declaring Normal.
    Recovery,
}

impl SupervisorState {
    /// Stable label for telemetry events and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Init => "init",
            Self::Normal => "normal",
            Self::Degraded => "degraded",
            Self::SafeState => "safe_state",
            Self::Recovery => "recovery",
        }
    }

    /// Numeric code for the `supervisor.state` gauge (0..=4).
    #[must_use]
    pub fn code(self) -> f64 {
        match self {
            Self::Init => 0.0,
            Self::Normal => 1.0,
            Self::Degraded => 2.0,
            Self::SafeState => 3.0,
            Self::Recovery => 4.0,
        }
    }

    /// Stable integer code for serialization (inverse of
    /// [`SupervisorState::from_tag`]); numerically equal to
    /// [`SupervisorState::code`].
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            Self::Init => 0,
            Self::Normal => 1,
            Self::Degraded => 2,
            Self::SafeState => 3,
            Self::Recovery => 4,
        }
    }

    /// Decodes a [`SupervisorState::tag`] value; `None` for codes ≥ 5.
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => Self::Init,
            1 => Self::Normal,
            2 => Self::Degraded,
            3 => Self::SafeState,
            4 => Self::Recovery,
            _ => return None,
        })
    }
}

/// Supervisor tuning. Defaults are sized for the platform's 1 kHz
/// monitoring cadence and the gyro case study's time constants.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Master enable; disabled, `poll` is a no-op (zero overhead).
    pub enabled: bool,
    /// Seconds allowed in `Init` before latching `SafeState`.
    pub init_timeout_s: f64,
    /// Consecutive unlocked monitor ticks before the PLL check fails.
    pub lock_loss_ticks: u32,
    /// AGC envelope / setpoint ratio lower plausibility bound.
    pub envelope_lo: f64,
    /// AGC envelope / setpoint ratio upper plausibility bound.
    pub envelope_hi: f64,
    /// Consecutive out-of-bounds ticks before the envelope check fails.
    pub envelope_streak: u32,
    /// ADC clips per monitor window treated as an overload.
    pub clip_limit: u64,
    /// Consecutive over-limit windows before the clip check fails.
    pub clip_streak: u32,
    /// Plausible |rate| bound, °/s (full scale plus margin).
    pub rate_limit_dps: f64,
    /// Consecutive over-range ticks before the range check fails.
    pub rate_streak: u32,
    /// Consecutive ticks with a bit-identical rate word before the
    /// stuck-output check fails.
    pub rate_stuck_ticks: u32,
    /// Consecutive windows with zero ADC peak-to-peak before the
    /// stuck-converter check fails.
    pub adc_stuck_windows: u32,
    /// |window midpoint| (FS units) beyond which a converter is counted
    /// as grossly DC-shifted (stuck MSB, rail latch-up). A stuck MSB on a
    /// near-zero signal shifts only the codes on one side of mid-scale, so
    /// the window midpoint lands at ±0.5 FS — the limit must sit below
    /// that while staying far above a healthy window's ~0 midpoint.
    pub adc_dc_limit: f64,
    /// Consecutive DC-shifted windows before the DC check fails.
    pub adc_dc_streak: u32,
    /// New communication-link errors per window that fail the link checks.
    pub comm_error_limit: u64,
    /// Monitor ticks a link check stays failed after its last error
    /// (debounce, so a single corrupt byte produces a visible episode).
    pub comm_hold_ticks: u32,
    /// Watchdog resets tolerated inside `wd_retry_window_s` before the
    /// bounded retry budget is exhausted and the FSM latches `SafeState`.
    pub wd_retry_limit: u32,
    /// Sliding window for the watchdog retry budget, seconds.
    pub wd_retry_window_s: f64,
    /// Monitor ticks the CPU check stays failed after a watchdog reset.
    pub wd_hold_ticks: u32,
    /// Healthy ticks `Recovery` must hold before declaring `Normal`.
    pub recovery_hold_ticks: u32,
    /// Seconds a severe check may persist in `Degraded` before escalation.
    pub degraded_timeout_s: f64,
    /// Base backoff before a `SafeState` recovery attempt, seconds
    /// (scaled by the attempt number).
    pub safe_retry_backoff_s: f64,
    /// Recovery attempts allowed out of `SafeState` before latching it
    /// permanently.
    pub safe_retry_limit: u32,
    /// Fall back to open-loop sensing when a closed-loop sense-path check
    /// fails (graceful degradation of the force-rebalance path).
    pub auto_open_loop: bool,
    /// Park the rate DAC at mid-scale while in `SafeState`.
    pub force_safe_output: bool,
    /// Monitor ticks between SPI link probes (0 disables probing).
    pub spi_probe_period_ticks: u32,
    /// Monitor ticks between JTAG IDCODE probes (0 disables probing).
    pub jtag_probe_period_ticks: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            init_timeout_s: 2.5,
            lock_loss_ticks: 5,
            envelope_lo: 0.5,
            envelope_hi: 1.5,
            envelope_streak: 20,
            clip_limit: 16,
            clip_streak: 3,
            rate_limit_dps: 550.0,
            rate_streak: 3,
            rate_stuck_ticks: 250,
            adc_stuck_windows: 5,
            adc_dc_limit: 0.4,
            adc_dc_streak: 5,
            comm_error_limit: 1,
            comm_hold_ticks: 50,
            wd_retry_limit: 3,
            wd_retry_window_s: 1.0,
            wd_hold_ticks: 100,
            recovery_hold_ticks: 100,
            degraded_timeout_s: 1.5,
            safe_retry_backoff_s: 0.5,
            safe_retry_limit: 3,
            auto_open_loop: true,
            force_safe_output: true,
            spi_probe_period_ticks: 0,
            jtag_probe_period_ticks: 0,
        }
    }
}

/// One monitoring-cadence observation of the platform, assembled by the
/// platform from telemetry counters and live chain state. All `_delta`
/// fields are since the previous sample.
#[derive(Debug, Clone, Copy, Default)]
pub struct MonitorSample {
    /// Simulation time, seconds.
    pub t: f64,
    /// PLL lock flag.
    pub locked: bool,
    /// AGC settled flag.
    pub settled: bool,
    /// AGC envelope (ADC FS units).
    pub envelope: f64,
    /// AGC setpoint (ADC FS units).
    pub setpoint: f64,
    /// New ADC clips in the window (both channels).
    pub adc_clips_delta: u64,
    /// Primary ADC peak-to-peak over the window (FS units).
    pub adc_pri_pp: f64,
    /// Primary ADC window midpoint (FS units).
    pub adc_pri_mid: f64,
    /// Secondary ADC peak-to-peak over the window (FS units).
    pub adc_sec_pp: f64,
    /// Secondary ADC window midpoint (FS units).
    pub adc_sec_mid: f64,
    /// Decoded rate output, °/s.
    pub rate_dps: f64,
    /// Raw rate word (stuck-output detection needs bit identity).
    pub rate_raw: i32,
    /// Whether the chain is running closed loop.
    pub closed_loop: bool,
    /// New watchdog-forced CPU resets in the window.
    pub watchdog_resets_delta: u32,
    /// New SPI line errors in the window.
    pub spi_errors_delta: u64,
    /// New UART line errors in the window.
    pub uart_errors_delta: u64,
    /// New JTAG probe errors in the window.
    pub jtag_errors_delta: u64,
}

/// Plausibility checks, in evaluation (and cause-priority) order.
const CHECKS: [&str; 11] = [
    "pll_lock",
    "agc_envelope",
    "adc_clip",
    "adc_stuck",
    "adc_dc",
    "rate_range",
    "rate_stuck",
    "cpu_watchdog",
    "spi_link",
    "uart_link",
    "jtag_chain",
];

/// Index into [`CHECKS`] of the first communication-link check; checks at
/// or past this index never escalate `Degraded` to `SafeState` on their
/// own (the signal path is still plausible).
const FIRST_COMM_CHECK: usize = 8;

/// Every `(from, to)` edge of the supervisor FSM, by state label.
///
/// This is the column universe of the campaign coverage matrix: keeping
/// the catalog next to `step_fsm` means a new transition arm that is not
/// added here shows up as a coverage row the matrix cannot account for,
/// and a removed arm leaves a permanently unexercisable cell.
pub const FSM_EDGES: [(&str, &str); 8] = [
    ("init", "normal"),
    ("init", "safe_state"),
    ("normal", "degraded"),
    ("degraded", "recovery"),
    ("degraded", "safe_state"),
    ("recovery", "normal"),
    ("recovery", "degraded"),
    ("safe_state", "recovery"),
];

/// The safety supervisor.
#[derive(Debug, Clone)]
pub struct SafetySupervisor {
    config: SupervisorConfig,
    state: SupervisorState,
    /// Per-check consecutive-failure streaks.
    streaks: [u32; CHECKS.len()],
    /// Per-check failing flags (streak threshold crossed).
    failing: [bool; CHECKS.len()],
    /// Rate word of the previous sample (stuck detection).
    last_rate_raw: i32,
    /// Debounce countdowns for the link checks and the CPU check.
    spi_hold: u32,
    uart_hold: u32,
    jtag_hold: u32,
    wd_hold: u32,
    /// Watchdog reset timestamps inside the sliding retry window.
    wd_times: Vec<f64>,
    /// First poll time (Init timeout reference).
    init_start: Option<f64>,
    degraded_since: f64,
    recovery_streak: u32,
    safe_entered: f64,
    safe_retries: u32,
    /// Hold-last-valid state.
    last_valid_rate: f64,
    last_valid_t: f64,
    open_loop_fallback: bool,
    transitions: u64,
    faults_detected: u64,
}

impl SafetySupervisor {
    /// Builds the supervisor in `Init`.
    #[must_use]
    pub fn new(config: SupervisorConfig) -> Self {
        Self {
            config,
            state: SupervisorState::Init,
            streaks: [0; CHECKS.len()],
            failing: [false; CHECKS.len()],
            last_rate_raw: 0,
            spi_hold: 0,
            uart_hold: 0,
            jtag_hold: 0,
            wd_hold: 0,
            wd_times: Vec::new(),
            init_start: None,
            degraded_since: 0.0,
            recovery_streak: 0,
            safe_entered: 0.0,
            safe_retries: 0,
            last_valid_rate: 0.0,
            last_valid_t: 0.0,
            open_loop_fallback: false,
            transitions: 0,
            faults_detected: 0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// Current FSM state.
    #[must_use]
    pub fn state(&self) -> SupervisorState {
        self.state
    }

    /// Total FSM transitions since reset.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Total check-failure episodes detected since reset.
    #[must_use]
    pub fn faults_detected(&self) -> u64 {
        self.faults_detected
    }

    /// Labels of the currently failing checks.
    pub fn failing_checks(&self) -> impl Iterator<Item = &'static str> + '_ {
        CHECKS
            .iter()
            .zip(self.failing.iter())
            .filter(|(_, &f)| f)
            .map(|(&label, _)| label)
    }

    /// Graceful-degradation directive: hold-last-valid rate estimate.
    /// `Some((value, valid_at))` while the live output is not trustworthy
    /// (`value` is the last rate observed in `Normal`, `valid_at` its
    /// timestamp); `None` while the live output is valid.
    #[must_use]
    pub fn rate_estimate(&self) -> Option<(f64, f64)> {
        match self.state {
            SupervisorState::Normal => None,
            _ => Some((self.last_valid_rate, self.last_valid_t)),
        }
    }

    /// Graceful-degradation directive: the platform should switch the
    /// sense path to open loop (force-rebalance path implicated).
    #[must_use]
    pub fn wants_open_loop(&self) -> bool {
        self.open_loop_fallback
    }

    /// Safe-state directive: park the rate output at mid-scale.
    #[must_use]
    pub fn wants_safe_output(&self) -> bool {
        self.state == SupervisorState::SafeState && self.config.force_safe_output
    }

    /// `true` once the `SafeState` retry budget is exhausted (terminal).
    #[must_use]
    pub fn is_latched(&self) -> bool {
        self.state == SupervisorState::SafeState
            && self.safe_retries >= self.config.safe_retry_limit
    }

    /// Power-on reset: back to `Init` with all episode state cleared.
    pub fn reset(&mut self) {
        let config = self.config.clone();
        *self = Self::new(config);
    }

    /// Serializes the FSM state and every episode counter. Configuration
    /// is not written: a restore target must be built from the same
    /// [`SupervisorConfig`].
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_u8(self.state.tag());
        for &s in &self.streaks {
            w.put_u32(s);
        }
        for &f in &self.failing {
            w.put_bool(f);
        }
        w.put_i32(self.last_rate_raw);
        w.put_u32(self.spi_hold);
        w.put_u32(self.uart_hold);
        w.put_u32(self.jtag_hold);
        w.put_u32(self.wd_hold);
        w.put_f64_slice(&self.wd_times);
        w.put_opt_f64(self.init_start);
        w.put_f64(self.degraded_since);
        w.put_u32(self.recovery_streak);
        w.put_f64(self.safe_entered);
        w.put_u32(self.safe_retries);
        w.put_f64(self.last_valid_rate);
        w.put_f64(self.last_valid_t);
        w.put_bool(self.open_loop_fallback);
        w.put_u64(self.transitions);
        w.put_u64(self.faults_detected);
    }

    /// Restores state saved by [`SafetySupervisor::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] on an unknown FSM-state tag;
    /// propagates other [`SnapshotError`]s on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let tag = r.take_u8()?;
        self.state = SupervisorState::from_tag(tag).ok_or_else(|| SnapshotError::Corrupt {
            context: format!("unknown supervisor state tag {tag}"),
        })?;
        for s in &mut self.streaks {
            *s = r.take_u32()?;
        }
        for f in &mut self.failing {
            *f = r.take_bool()?;
        }
        self.last_rate_raw = r.take_i32()?;
        self.spi_hold = r.take_u32()?;
        self.uart_hold = r.take_u32()?;
        self.jtag_hold = r.take_u32()?;
        self.wd_hold = r.take_u32()?;
        self.wd_times = r.take_f64_vec()?;
        self.init_start = r.take_opt_f64()?;
        self.degraded_since = r.take_f64()?;
        self.recovery_streak = r.take_u32()?;
        self.safe_entered = r.take_f64()?;
        self.safe_retries = r.take_u32()?;
        self.last_valid_rate = r.take_f64()?;
        self.last_valid_t = r.take_f64()?;
        self.open_loop_fallback = r.take_bool()?;
        self.transitions = r.take_u64()?;
        self.faults_detected = r.take_u64()?;
        Ok(())
    }

    /// Evaluates one monitoring sample and advances the FSM, recording
    /// detection and transition events into `telemetry`.
    pub fn poll(&mut self, s: &MonitorSample, telemetry: &mut Telemetry) {
        if !self.config.enabled {
            return;
        }
        if self.init_start.is_none() {
            self.init_start = Some(s.t);
        }
        // Checks only run once the platform has been up; during Init the
        // loops are still converging and every check would trip.
        if self.state != SupervisorState::Init {
            self.evaluate_checks(s, telemetry);
        }
        self.step_fsm(s, telemetry);
        telemetry.gauge_set("supervisor.state", self.state.code());
        telemetry.counter_set("supervisor.transitions", self.transitions);
        telemetry.counter_set("supervisor.faults_detected", self.faults_detected);
    }

    fn evaluate_checks(&mut self, s: &MonitorSample, telemetry: &mut Telemetry) {
        let c = self.config.clone();
        // Streak-based checks: (index, failing now).
        let ratio = if s.setpoint > 0.0 {
            s.envelope / s.setpoint
        } else {
            1.0
        };
        let raw_fail = [
            (0, !s.locked),
            (1, !(c.envelope_lo..=c.envelope_hi).contains(&ratio)),
            (2, s.adc_clips_delta >= c.clip_limit),
            (3, s.adc_pri_pp <= 0.0 || s.adc_sec_pp <= 0.0),
            (
                4,
                s.adc_pri_mid.abs() > c.adc_dc_limit || s.adc_sec_mid.abs() > c.adc_dc_limit,
            ),
            (5, s.rate_dps.abs() > c.rate_limit_dps),
            (6, s.rate_raw == self.last_rate_raw),
        ];
        let thresholds = [
            c.lock_loss_ticks,
            c.envelope_streak,
            c.clip_streak,
            c.adc_stuck_windows,
            c.adc_dc_streak,
            c.rate_streak,
            c.rate_stuck_ticks,
        ];
        self.last_rate_raw = s.rate_raw;
        for &(i, fail) in &raw_fail {
            if fail {
                self.streaks[i] = self.streaks[i].saturating_add(1);
            } else {
                self.streaks[i] = 0;
            }
            self.set_failing(i, self.streaks[i] >= thresholds[i], s.t, telemetry);
        }

        // Debounced event checks: a burst of errors opens an episode that
        // holds for `*_hold_ticks` after the last error.
        if s.watchdog_resets_delta > 0 {
            self.wd_hold = c.wd_hold_ticks;
            for _ in 0..s.watchdog_resets_delta {
                self.wd_times.push(s.t);
            }
        } else {
            self.wd_hold = self.wd_hold.saturating_sub(1);
        }
        self.wd_times.retain(|&t0| s.t - t0 <= c.wd_retry_window_s);
        self.spi_hold = if s.spi_errors_delta >= c.comm_error_limit {
            c.comm_hold_ticks
        } else {
            self.spi_hold.saturating_sub(1)
        };
        self.uart_hold = if s.uart_errors_delta >= c.comm_error_limit {
            c.comm_hold_ticks
        } else {
            self.uart_hold.saturating_sub(1)
        };
        self.jtag_hold = if s.jtag_errors_delta >= c.comm_error_limit {
            c.comm_hold_ticks
        } else {
            self.jtag_hold.saturating_sub(1)
        };
        let holds = [self.wd_hold, self.spi_hold, self.uart_hold, self.jtag_hold];
        for (k, &hold) in holds.iter().enumerate() {
            self.set_failing(7 + k, hold > 0, s.t, telemetry);
        }
    }

    /// Updates a check's failing flag, emitting a detection event on the
    /// rising edge of each episode.
    fn set_failing(&mut self, i: usize, failing: bool, t: f64, telemetry: &mut Telemetry) {
        if failing && !self.failing[i] {
            self.faults_detected += 1;
            telemetry.record_event(Event::FaultDetected {
                t,
                check: CHECKS[i],
            });
        }
        self.failing[i] = failing;
    }

    /// First failing check label (cause priority = catalog order).
    fn first_failing(&self) -> Option<usize> {
        self.failing.iter().position(|&f| f)
    }

    /// Whether a signal-path (non-comm) check is failing.
    fn severe_failing(&self) -> bool {
        self.failing[..FIRST_COMM_CHECK]
            .iter()
            .enumerate()
            .any(|(i, &f)| f && i != 7)
            || self.wd_budget_exhausted()
    }

    fn wd_budget_exhausted(&self) -> bool {
        self.wd_times.len() > self.wd_retry_budget()
    }

    fn wd_retry_budget(&self) -> usize {
        self.config.wd_retry_limit as usize
    }

    fn step_fsm(&mut self, s: &MonitorSample, telemetry: &mut Telemetry) {
        use SupervisorState as S;
        let any_failing = self.failing.iter().any(|&f| f);
        match self.state {
            S::Init => {
                if s.locked && s.settled {
                    self.transition(S::Normal, "ready", s.t, telemetry);
                } else if s.t - self.init_start.unwrap_or(s.t) > self.config.init_timeout_s {
                    self.transition(S::SafeState, "init_timeout", s.t, telemetry);
                }
            }
            S::Normal => {
                self.last_valid_rate = s.rate_dps;
                self.last_valid_t = s.t;
                if let Some(i) = self.first_failing() {
                    if self.config.auto_open_loop && s.closed_loop && i < FIRST_COMM_CHECK && i != 7
                    {
                        self.open_loop_fallback = true;
                    }
                    self.transition(S::Degraded, CHECKS[i], s.t, telemetry);
                }
            }
            S::Degraded => {
                if self.wd_budget_exhausted() {
                    self.transition(S::SafeState, "watchdog_retries", s.t, telemetry);
                } else if !any_failing {
                    self.transition(S::Recovery, "checks_clear", s.t, telemetry);
                } else if self.severe_failing()
                    && s.t - self.degraded_since > self.config.degraded_timeout_s
                {
                    let cause = self.first_failing().map_or("unknown", |i| CHECKS[i]);
                    self.transition(S::SafeState, cause, s.t, telemetry);
                }
            }
            S::Recovery => {
                if let Some(i) = self.first_failing() {
                    self.transition(S::Degraded, CHECKS[i], s.t, telemetry);
                } else {
                    self.recovery_streak += 1;
                    if self.recovery_streak >= self.config.recovery_hold_ticks {
                        self.transition(S::Normal, "recovered", s.t, telemetry);
                    }
                }
            }
            S::SafeState => {
                // Bounded retry with linear backoff; latched once the
                // budget is spent. SafeState never goes straight to
                // Normal — every exit passes through Recovery.
                if self.safe_retries < self.config.safe_retry_limit
                    && !any_failing
                    && s.t - self.safe_entered
                        >= self.config.safe_retry_backoff_s * f64::from(self.safe_retries + 1)
                {
                    self.safe_retries += 1;
                    self.transition(S::Recovery, "safe_retry", s.t, telemetry);
                }
            }
        }
    }

    fn transition(
        &mut self,
        to: SupervisorState,
        cause: &'static str,
        t: f64,
        telemetry: &mut Telemetry,
    ) {
        telemetry.record_event(Event::SupervisorTransition {
            t,
            from: self.state.label(),
            to: to.label(),
            cause,
        });
        self.transitions += 1;
        match to {
            SupervisorState::Degraded => self.degraded_since = t,
            SupervisorState::Recovery => self.recovery_streak = 0,
            SupervisorState::SafeState => self.safe_entered = t,
            SupervisorState::Normal => {
                self.open_loop_fallback = false;
                self.safe_retries = 0;
            }
            SupervisorState::Init => {}
        }
        self.state = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascp_sim::telemetry::TelemetryConfig;

    fn healthy(t: f64) -> MonitorSample {
        MonitorSample {
            t,
            locked: true,
            settled: true,
            envelope: 0.8,
            setpoint: 0.8,
            adc_pri_pp: 1.6,
            adc_sec_pp: 0.01,
            rate_raw: (t * 1.0e6) as i32, // always changing
            ..MonitorSample::default()
        }
    }

    fn sup() -> (SafetySupervisor, Telemetry) {
        (
            SafetySupervisor::new(SupervisorConfig::default()),
            Telemetry::new(TelemetryConfig::default()),
        )
    }

    /// Runs `n` monitor ticks starting at `t0`, mutating each healthy
    /// sample with `f`.
    fn run(
        s: &mut SafetySupervisor,
        tel: &mut Telemetry,
        t0: f64,
        n: u32,
        f: impl Fn(&mut MonitorSample),
    ) -> f64 {
        let mut t = t0;
        for k in 0..n {
            t = t0 + f64::from(k) * 1.0e-3;
            let mut sample = healthy(t);
            f(&mut sample);
            s.poll(&sample, tel);
        }
        t
    }

    #[test]
    fn init_to_normal_on_ready() {
        let (mut s, mut tel) = sup();
        assert_eq!(s.state(), SupervisorState::Init);
        s.poll(&healthy(0.1), &mut tel);
        assert_eq!(s.state(), SupervisorState::Normal);
    }

    #[test]
    fn init_timeout_latches_safe_state() {
        let (mut s, mut tel) = sup();
        let mut sample = healthy(0.0);
        sample.locked = false;
        s.poll(&sample, &mut tel);
        sample.t = 3.0;
        s.poll(&sample, &mut tel);
        assert_eq!(s.state(), SupervisorState::SafeState);
    }

    #[test]
    fn lock_loss_degrades_then_recovers() {
        let (mut s, mut tel) = sup();
        let t = run(&mut s, &mut tel, 0.0, 3, |_| {});
        assert_eq!(s.state(), SupervisorState::Normal);
        let t = run(&mut s, &mut tel, t + 1.0e-3, 10, |m| m.locked = false);
        assert_eq!(s.state(), SupervisorState::Degraded);
        assert!(s.failing_checks().any(|c| c == "pll_lock"));
        assert!(s.rate_estimate().is_some(), "estimate goes stale");
        // Lock returns: Recovery, then Normal after the hold.
        let _ = run(&mut s, &mut tel, t + 1.0e-3, 150, |_| {});
        assert_eq!(s.state(), SupervisorState::Normal);
        assert!(s.rate_estimate().is_none());
    }

    #[test]
    fn severe_fault_escalates_to_safe_state_and_never_jumps_to_normal() {
        let (mut s, mut tel) = sup();
        let t = run(&mut s, &mut tel, 0.0, 3, |_| {});
        // Envelope collapse persists past the degraded timeout.
        let t = run(&mut s, &mut tel, t + 1.0e-3, 2000, |m| m.envelope = 0.0);
        assert_eq!(s.state(), SupervisorState::SafeState);
        assert!(s.wants_safe_output());
        // Health returns; the exit must pass through Recovery.
        let mut saw_recovery = false;
        for k in 0..2000u32 {
            let tt = t + f64::from(k + 1) * 1.0e-3;
            s.poll(&healthy(tt), &mut tel);
            if s.state() == SupervisorState::Recovery {
                saw_recovery = true;
            }
            if s.state() == SupervisorState::Normal {
                break;
            }
        }
        assert_eq!(s.state(), SupervisorState::Normal);
        assert!(saw_recovery, "SafeState exited without passing Recovery");
    }

    #[test]
    fn comm_fault_degrades_but_never_escalates() {
        let (mut s, mut tel) = sup();
        let t = run(&mut s, &mut tel, 0.0, 3, |_| {});
        let _ = run(&mut s, &mut tel, t + 1.0e-3, 2500, |m| {
            m.spi_errors_delta = 2;
        });
        assert_eq!(
            s.state(),
            SupervisorState::Degraded,
            "link noise alone must not reach SafeState"
        );
        assert!(!s.wants_open_loop(), "comm faults keep the loop closed");
    }

    #[test]
    fn watchdog_retry_budget_exhaustion_latches_safe_state() {
        let (mut s, mut tel) = sup();
        let t = run(&mut s, &mut tel, 0.0, 3, |_| {});
        // A reset every 30 ms: the 4th inside 1 s exhausts the budget.
        let mut tt = t;
        for k in 0..10u32 {
            tt = t + f64::from(k + 1) * 0.03;
            let mut m = healthy(tt);
            m.watchdog_resets_delta = 1;
            s.poll(&m, &mut tel);
        }
        assert_eq!(s.state(), SupervisorState::SafeState);
        let _ = tt;
    }

    #[test]
    fn safe_state_retry_budget_is_bounded() {
        let config = SupervisorConfig {
            safe_retry_limit: 1,
            ..SupervisorConfig::default()
        };
        let mut s = SafetySupervisor::new(config);
        let mut tel = Telemetry::new(TelemetryConfig::default());
        let t = run(&mut s, &mut tel, 0.0, 3, |_| {});
        let t = run(&mut s, &mut tel, t + 1.0e-3, 2000, |m| m.envelope = 0.0);
        assert_eq!(s.state(), SupervisorState::SafeState);
        // The single retry spends the budget; health collapses again while
        // still in Recovery (before Normal would refill the budget). The
        // backoff clock started at SafeState entry, ~0.48 s ago, so the
        // retry lands ~20 ticks into this healthy stretch.
        let t = run(&mut s, &mut tel, t + 1.0e-3, 100, |_| {});
        assert_eq!(s.state(), SupervisorState::Recovery);
        let t = run(&mut s, &mut tel, t + 1.0e-3, 2000, |m| m.envelope = 0.0);
        assert_eq!(s.state(), SupervisorState::SafeState);
        // Budget spent: healthy samples can no longer leave SafeState.
        let _ = run(&mut s, &mut tel, t + 1.0e-3, 3000, |_| {});
        assert_eq!(s.state(), SupervisorState::SafeState);
        assert!(s.is_latched());
    }

    #[test]
    fn closed_loop_sense_fault_requests_open_loop_fallback() {
        let (mut s, mut tel) = sup();
        let t = run(&mut s, &mut tel, 0.0, 3, |m| m.closed_loop = true);
        let _ = run(&mut s, &mut tel, t + 1.0e-3, 300, |m| {
            m.closed_loop = true;
            m.rate_raw = 1234; // stuck word
        });
        assert_eq!(s.state(), SupervisorState::Degraded);
        assert!(s.wants_open_loop());
    }

    #[test]
    fn disabled_supervisor_stays_in_init() {
        let config = SupervisorConfig {
            enabled: false,
            ..SupervisorConfig::default()
        };
        let mut s = SafetySupervisor::new(config);
        let mut tel = Telemetry::new(TelemetryConfig::default());
        s.poll(&healthy(0.1), &mut tel);
        assert_eq!(s.state(), SupervisorState::Init);
        assert_eq!(s.transitions(), 0);
    }
}
