//! Deterministic platform checkpointing.
//!
//! A checkpoint captures the **entire** mutable state of a [`Platform`] —
//! MEMS resonator modes, AFE converter and reference registers, every DSP
//! IP's delay lines and integrators, the 8051 core with its SFR/XRAM and
//! peripherals, the JTAG chain, the safety-supervisor FSM, the
//! fault-plan cursor and all noise-generator RNG streams — in a compact,
//! self-describing binary format. Restoring a checkpoint onto a platform
//! built from the same [`PlatformConfig`] is **bit-exact**: stepping the
//! restored platform produces byte-identical traces to stepping the
//! original.
//!
//! # File format
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     8  magic  b"ASCPCKPT"
//!      8     4  format version (little-endian u32, currently 1)
//!     12     8  config digest (FNV-1a 64 over canonical config)
//!     20     …  platform state: tagged, length-prefixed sections
//! ```
//!
//! The payload is a tree of 4-byte-tagged, length-prefixed sections
//! (see [`ascp_sim::snapshot`]); unknown lengths are bounded before any
//! allocation, so corrupt or truncated files fail with a typed
//! [`CheckpointError`] — never a panic or an abort. `DESIGN.md` §11
//! documents the section table and the versioning rules.
//!
//! # What a checkpoint does *not* contain
//!
//! - the [`PlatformConfig`] itself: a restore target is built from a
//!   caller-supplied config, and the stored digest rejects a mismatched
//!   one with [`CheckpointError::ConfigMismatch`];
//! - telemetry (metrics, events, stage profiles): observability output,
//!   deliberately excluded so that restoring never double-counts history;
//! - the 8051 translation cache ([`ascp_mcu8051::xlate`]): derived
//!   entirely from code memory, rebuilt lazily after a restore, and
//!   excluded so checkpoint bytes are identical whether the cache is
//!   enabled, disabled, hot, or cold (its hit/miss counters are likewise
//!   telemetry, not state).
//!
//! # Example
//!
//! ```
//! use ascp_core::checkpoint;
//! use ascp_core::platform::{Platform, PlatformConfig};
//!
//! let config = PlatformConfig::builder().quiet().seed(7).build().unwrap();
//! let mut original = Platform::new(config.clone());
//! original.step_block(500);
//!
//! let bytes = checkpoint::save(&original);
//! let mut resumed = checkpoint::restore(config, &bytes).unwrap();
//!
//! // Bit-exact: both halves now evolve identically.
//! original.step_block(100);
//! resumed.step_block(100);
//! assert_eq!(checkpoint::save(&original), checkpoint::save(&resumed));
//! ```

use crate::platform::{Platform, PlatformConfig};
use ascp_sim::snapshot::{dump_sections_json, fnv1a64, SnapshotError, StateReader, StateWriter};
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// File magic: the first eight bytes of every checkpoint.
pub const MAGIC: [u8; 8] = *b"ASCPCKPT";

/// Current checkpoint format version. Bumped whenever any component's
/// section layout changes; old files are rejected with
/// [`CheckpointError::UnsupportedVersion`] rather than misinterpreted.
pub const FORMAT_VERSION: u32 = 1;

/// Header length in bytes (magic + version + config digest).
pub const HEADER_LEN: usize = 8 + 4 + 8;

/// Failure classes for checkpoint encode/decode and file I/O.
///
/// Every malformed input maps to a typed error — decoding never panics,
/// whatever the bytes.
#[derive(Debug)]
pub enum CheckpointError {
    /// The first eight bytes are not [`MAGIC`] (or the input is shorter
    /// than a header).
    BadMagic,
    /// The file was written by a different format version.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// The only version this build can read.
        supported: u32,
    },
    /// The checkpoint was taken under a different [`PlatformConfig`] than
    /// the restore target was built from.
    ConfigMismatch {
        /// Digest of the restore target's configuration.
        expected: u64,
        /// Digest stored in the checkpoint header.
        found: u64,
    },
    /// The payload failed structural validation (truncated section, bad
    /// tag, out-of-range value, trailing garbage, …).
    Snapshot(SnapshotError),
    /// Reading or writing the checkpoint file failed.
    Io(std::io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            Self::UnsupportedVersion { found, supported } => write!(
                f,
                "checkpoint format version {found} not supported (this build reads {supported})"
            ),
            Self::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint config digest {found:#018x} does not match platform config {expected:#018x}"
            ),
            Self::Snapshot(e) => write!(f, "checkpoint payload: {e}"),
            Self::Io(e) => write!(f, "checkpoint i/o: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Snapshot(e) => Some(e),
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for CheckpointError {
    fn from(e: SnapshotError) -> Self {
        Self::Snapshot(e)
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// FNV-1a 64 digest of the canonical configuration encoding.
///
/// Two configs digest equal iff every simulation-relevant field is equal:
/// sensor parameters, converter settings, chain mode, firmware image,
/// master seed, fault-plan **specs** and supervisor settings. Two parts
/// are deliberately excluded:
///
/// - the fault-plan *cursor* (which faults are currently active): runtime
///   state, saved in the payload, which would otherwise make a platform's
///   own digest drift as it runs;
/// - [`TelemetryConfig`](ascp_sim::telemetry::TelemetryConfig):
///   observability settings never influence simulation arithmetic, so a
///   checkpoint may be restored under different telemetry settings.
#[must_use]
pub fn config_digest(config: &PlatformConfig) -> u64 {
    let mut canon = String::new();
    let _ = write!(
        canon,
        "{:?}|{:?}|{}|{:?}|{:?}|{:?}|{:?}|{}|{}|{}|{:?}|{:?}|{}|{:?}|{}|{:?}|",
        config.gyro,
        config.dsp_rate,
        config.analog_oversample,
        config.adc,
        config.drive_dac,
        config.rebalance_dac,
        config.rate_dac,
        config.charge_gain,
        config.secondary_pga_code,
        config.aaf_corner,
        config.mode,
        config.variant,
        config.cpu_enabled,
        config.firmware,
        config.seed,
        config.supervisor,
    );
    for spec in config.faults.specs() {
        let _ = write!(canon, "{spec:?};");
    }
    fnv1a64(canon.as_bytes())
}

/// Serializes a platform into checkpoint bytes (header + state payload).
#[must_use]
pub fn save(platform: &Platform) -> Vec<u8> {
    let mut w = StateWriter::new();
    platform.save_state(&mut w);
    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&config_digest(platform.config()).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Validates the header and returns `(stored config digest, payload)`.
fn split(bytes: &[u8]) -> Result<(u64, &[u8]), CheckpointError> {
    if bytes.len() < HEADER_LEN || bytes[..8] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let digest = u64::from_le_bytes(bytes[12..HEADER_LEN].try_into().expect("8 bytes"));
    Ok((digest, &bytes[HEADER_LEN..]))
}

/// Restores checkpoint bytes into an existing platform.
///
/// The platform must have been built from the same configuration the
/// checkpoint was saved under (checked via the stored digest).
///
/// # Errors
///
/// Returns a [`CheckpointError`] on a bad header, a version or config
/// mismatch, or a malformed payload. On payload errors the platform may
/// be partially restored — discard it (prefer [`restore`], which only
/// ever hands back fully restored platforms).
pub fn restore_into(platform: &mut Platform, bytes: &[u8]) -> Result<(), CheckpointError> {
    let (found, payload) = split(bytes)?;
    let expected = config_digest(platform.config());
    if found != expected {
        return Err(CheckpointError::ConfigMismatch { expected, found });
    }
    let mut r = StateReader::new(payload);
    platform.load_state(&mut r)?;
    if !r.is_exhausted() {
        return Err(CheckpointError::Snapshot(SnapshotError::Corrupt {
            context: format!("{} trailing bytes after platform state", r.remaining()),
        }));
    }
    Ok(())
}

/// Builds a fresh platform from `config` and restores checkpoint bytes
/// into it.
///
/// # Errors
///
/// Returns a [`CheckpointError`] on a bad header, a version or config
/// mismatch, or a malformed payload. Failure never corrupts any live
/// platform — the partially restored one is dropped.
pub fn restore(config: PlatformConfig, bytes: &[u8]) -> Result<Platform, CheckpointError> {
    let mut platform = Platform::new(config);
    restore_into(&mut platform, bytes)?;
    Ok(platform)
}

/// Saves a platform checkpoint to a file.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] if the file cannot be written.
pub fn save_to_file(platform: &Platform, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    std::fs::write(path, save(platform))?;
    Ok(())
}

/// Reads a checkpoint file and restores it onto a fresh platform built
/// from `config`.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] if the file cannot be read, or any
/// decode error from [`restore`].
pub fn restore_from_file(
    config: PlatformConfig,
    path: impl AsRef<Path>,
) -> Result<Platform, CheckpointError> {
    let bytes = std::fs::read(path)?;
    restore(config, &bytes)
}

/// Renders a checkpoint's section tree as indented JSON for debugging:
/// header fields plus every section's tag and byte length.
///
/// # Errors
///
/// Returns a [`CheckpointError`] on a bad header or a structurally
/// invalid section tree.
pub fn dump_json(bytes: &[u8]) -> Result<String, CheckpointError> {
    let (digest, payload) = split(bytes)?;
    let sections = dump_sections_json(payload)?;
    Ok(format!(
        "{{\n  \"magic\": \"ASCPCKPT\",\n  \"version\": {FORMAT_VERSION},\n  \"config_digest\": \"{digest:#018x}\",\n  \"payload_bytes\": {},\n  \"sections\": {}\n}}",
        payload.len(),
        indent_tail(&sections),
    ))
}

/// Re-indents every line after the first by two spaces so a nested JSON
/// fragment sits correctly inside the wrapper object.
fn indent_tail(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for (i, line) in s.lines().enumerate() {
        if i > 0 {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str(line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_config(seed: u64) -> PlatformConfig {
        PlatformConfig::builder()
            .quiet()
            .seed(seed)
            .build()
            .expect("valid config")
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let config = quiet_config(42);
        let mut original = Platform::new(config.clone());
        original.step_block(800);
        let ckpt = save(&original);
        let mut resumed = restore(config, &ckpt).expect("restore");
        assert_eq!(save(&original), save(&resumed), "restore must be lossless");
        original.step_block(300);
        resumed.step_block(300);
        assert_eq!(
            save(&original),
            save(&resumed),
            "restored platform must evolve identically"
        );
    }

    /// The 8051 translation cache is an execution strategy, not state:
    /// checkpoint bytes must be identical with it hot, cold, or off,
    /// and a checkpoint taken from a cached run must restore into an
    /// uncached platform (and vice versa) bit-exactly.
    #[test]
    fn checkpoint_bytes_independent_of_translation_cache() {
        let config = quiet_config(42);
        let mut cached = Platform::new(config.clone());
        let mut uncached = Platform::new(config.clone());
        uncached.cpu_mut().set_xlate_enabled(false);
        cached.step_block(800);
        uncached.step_block(800);
        let ckpt = save(&cached);
        assert_eq!(ckpt, save(&uncached), "cache state leaked into checkpoint");
        // Cross-restore: cached checkpoint into an uncached platform.
        let mut resumed = restore(config, &ckpt).expect("restore");
        resumed.cpu_mut().set_xlate_enabled(false);
        cached.step_block(300);
        resumed.step_block(300);
        assert_eq!(save(&cached), save(&resumed));
    }

    #[test]
    fn digest_sensitive_to_seed_and_config() {
        let a = config_digest(&quiet_config(1));
        let b = config_digest(&quiet_config(2));
        assert_ne!(a, b, "seed must enter the digest");
        let c = PlatformConfig::builder()
            .quiet()
            .seed(1)
            .adc_bits(10)
            .build()
            .unwrap();
        assert_ne!(a, config_digest(&c), "adc bits must enter the digest");
        assert_eq!(a, config_digest(&quiet_config(1)), "digest is stable");
    }

    #[test]
    fn bad_magic_rejected() {
        let config = quiet_config(3);
        let platform = Platform::new(config.clone());
        let mut bytes = save(&platform);
        bytes[0] ^= 0xff;
        assert!(matches!(
            restore(config.clone(), &bytes),
            Err(CheckpointError::BadMagic)
        ));
        assert!(matches!(
            restore(config, b"short"),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn unsupported_version_rejected() {
        let config = quiet_config(3);
        let platform = Platform::new(config.clone());
        let mut bytes = save(&platform);
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            restore(config, &bytes),
            Err(CheckpointError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn config_mismatch_rejected() {
        let platform = Platform::new(quiet_config(3));
        let bytes = save(&platform);
        assert!(matches!(
            restore(quiet_config(4), &bytes),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let config = quiet_config(5);
        let mut platform = Platform::new(config.clone());
        platform.step_block(64);
        let bytes = save(&platform);
        // Cutting the payload anywhere must yield BadMagic (header cut) or
        // a Snapshot error (payload cut) — never a panic.
        for len in (0..bytes.len()).step_by(97).chain([bytes.len() - 1]) {
            let err = restore(config.clone(), &bytes[..len])
                .err()
                .unwrap_or_else(|| panic!("truncation at {len} must fail"));
            match err {
                CheckpointError::BadMagic | CheckpointError::Snapshot(_) => {}
                other => panic!("truncation at {len}: unexpected {other}"),
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let config = quiet_config(6);
        let platform = Platform::new(config.clone());
        let mut bytes = save(&platform);
        bytes.extend_from_slice(&[0xde, 0xad]);
        assert!(matches!(
            restore(config, &bytes),
            Err(CheckpointError::Snapshot(SnapshotError::Corrupt { .. }))
        ));
    }

    #[test]
    fn corrupt_interior_never_panics() {
        let config = quiet_config(7);
        let mut platform = Platform::new(config.clone());
        platform.step_block(32);
        let bytes = save(&platform);
        for pos in (HEADER_LEN..bytes.len()).step_by(211) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x5a;
            // Any outcome but a panic is acceptable; a flipped byte deep in
            // some f64 may still decode. Errors must be typed.
            let _ = restore(config.clone(), &bad);
        }
    }

    #[test]
    fn json_dump_lists_sections() {
        let platform = Platform::new(quiet_config(8));
        let dump = dump_json(&save(&platform)).expect("dump");
        for tag in ["gyro", "chan", "cpu ", "supv", "kern"] {
            assert!(dump.contains(tag), "dump must list section {tag:?}");
        }
        assert!(dump.contains("config_digest"));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ascp-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckpt");
        let config = quiet_config(9);
        let mut platform = Platform::new(config.clone());
        platform.step_block(128);
        save_to_file(&platform, &path).expect("save file");
        let mut resumed = restore_from_file(config, &path).expect("restore file");
        platform.step_block(64);
        resumed.step_block(64);
        assert_eq!(save(&platform), save(&resumed));
        let _ = std::fs::remove_file(&path);
        let missing = restore_from_file(quiet_config(9), dir.join("missing.ckpt"));
        assert!(matches!(missing, Err(CheckpointError::Io(_))));
    }
}
