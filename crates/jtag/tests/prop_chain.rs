//! Property tests of the JTAG chain: the paper's "full read-back
//! capability" must hold for arbitrary register traffic on arbitrary chain
//! topologies, through real bit-level scans.

use ascp_jtag::chain::JtagChain;
use ascp_jtag::device::{instructions, BypassDevice, JtagDevice, RegAccessDevice, RegisterBus};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Default)]
struct MapBus {
    regs: HashMap<u8, u16>,
}

impl RegisterBus for MapBus {
    fn read(&mut self, addr: u8) -> Option<u16> {
        self.regs.get(&addr).copied()
    }
    fn write(&mut self, addr: u8, value: u16) -> bool {
        self.regs.insert(addr, value);
        true
    }
}

/// Builds a chain with `reg_positions` register devices interleaved with
/// bypass devices; returns (chain, indices of register devices).
fn build_chain(layout: &[bool]) -> (JtagChain, Vec<usize>) {
    let mut devices: Vec<Box<dyn JtagDevice>> = Vec::new();
    let mut reg_idx = Vec::new();
    for (i, &is_reg) in layout.iter().enumerate() {
        if is_reg {
            reg_idx.push(i);
            devices.push(Box::new(RegAccessDevice::new(
                (0x1000_0001 + i as u32) | 1,
                MapBus::default(),
            )));
        } else {
            devices.push(Box::new(BypassDevice::new((0x2000_0001 + i as u32) | 1)));
        }
    }
    (JtagChain::new(devices), reg_idx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn writes_read_back_on_any_topology(
        layout in proptest::collection::vec(any::<bool>(), 1..6),
        writes in proptest::collection::vec((any::<u8>(), any::<u16>()), 1..12),
    ) {
        prop_assume!(layout.iter().any(|&r| r));
        let (mut chain, reg_idx) = build_chain(&layout);
        // Scatter the writes across the register devices round-robin.
        let mut expected: Vec<HashMap<u8, u16>> =
            reg_idx.iter().map(|_| HashMap::new()).collect();
        for (k, &(addr, value)) in writes.iter().enumerate() {
            let which = k % reg_idx.len();
            let dev = reg_idx[which];
            chain.select(dev, instructions::REG_ACCESS).unwrap();
            chain
                .scan_dr(dev, RegAccessDevice::<MapBus>::pack_write(addr, value))
                .unwrap();
            expected[which].insert(addr, value);
        }
        // Read everything back through the wire.
        for (which, &dev) in reg_idx.iter().enumerate() {
            chain.select(dev, instructions::REG_ACCESS).unwrap();
            for (&addr, &value) in &expected[which] {
                chain
                    .scan_dr(dev, RegAccessDevice::<MapBus>::pack_read(addr))
                    .unwrap();
                let dr = chain.scan_dr(dev, 0).unwrap();
                prop_assert_eq!(
                    RegAccessDevice::<MapBus>::unpack_data(dr),
                    value,
                    "device {} addr {:#x}", dev, addr
                );
            }
        }
    }

    #[test]
    fn idcodes_survive_arbitrary_traffic(
        layout in proptest::collection::vec(any::<bool>(), 1..5),
        noise_scans in proptest::collection::vec(any::<u64>(), 0..8),
    ) {
        let (mut chain, _) = build_chain(&layout);
        let before = chain.read_idcodes().unwrap();
        for (k, v) in noise_scans.iter().enumerate() {
            let dev = k % layout.len();
            let _ = chain.select(dev, instructions::BYPASS);
            let _ = chain.scan_dr(dev, *v);
        }
        chain.reset();
        let after = chain.read_idcodes().unwrap();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn reset_from_any_state_reaches_idle(tms_seq in proptest::collection::vec(any::<bool>(), 0..40)) {
        let (mut chain, _) = build_chain(&[true, false]);
        for tms in tms_seq {
            chain.clock(tms, false);
        }
        chain.reset();
        prop_assert_eq!(chain.state(), ascp_jtag::state::TapState::RunTestIdle);
        // The chain still works after arbitrary line noise.
        prop_assert!(chain.read_idcodes().is_ok());
    }
}
