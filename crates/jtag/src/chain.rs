//! Bit-level JTAG chain: shared TCK/TMS, TDI→TDO daisy chain.
//!
//! "It employs a short number of wires (only 4 per chain), thus resulting
//! easy to route also on very complex chips" (§4.2). The chain clocks all
//! TAPs from the same TMS; TDI enters the *last* device and TDO leaves the
//! first (devices are indexed 0 = closest to TDO).

use crate::device::JtagDevice;
use crate::state::TapState;
use ascp_sim::noise::Rng64;
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};
use std::error::Error;
use std::fmt;

/// Error from a high-level chain transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// Device index out of range.
    NoSuchDevice {
        /// Requested index.
        index: usize,
        /// Number of devices in the chain.
        len: usize,
    },
    /// The chain has no devices.
    Empty,
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoSuchDevice { index, len } => {
                write!(f, "no device {index} in a chain of {len}")
            }
            Self::Empty => write!(f, "JTAG chain has no devices"),
        }
    }
}

impl Error for ChainError {}

/// Per-device shift/instruction registers managed by the chain.
struct TapSlot {
    device: Box<dyn JtagDevice>,
    /// Latched instruction (Update-IR).
    ir: u64,
    /// IR shift register.
    ir_shift: u64,
    /// DR shift register (LSB = next bit out).
    dr_shift: u64,
    dr_len: usize,
}

impl fmt::Debug for TapSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TapSlot")
            .field("ir", &self.ir)
            .field("dr_len", &self.dr_len)
            .finish()
    }
}

/// A JTAG chain of devices sharing TMS/TCK.
#[derive(Debug)]
pub struct JtagChain {
    slots: Vec<TapSlot>,
    state: TapState,
    /// Total TCK cycles applied (diagnostics).
    cycles: u64,
    /// TCK cycles spent in Shift-IR/Shift-DR (telemetry: payload bits moved).
    shifts: u64,
    /// Optional chain corruption: (per-shift-bit flip probability, rng).
    /// Models a marginal TDO trace — only the serial read-back path is
    /// affected; TDI-driven register loads remain intact.
    fault: Option<(f64, Rng64)>,
    /// Shift bits whose TDO value was flipped by the injected fault.
    corrupted_bits: u64,
}

impl JtagChain {
    /// Builds a chain. Device 0 is nearest TDO.
    #[must_use]
    pub fn new(devices: Vec<Box<dyn JtagDevice>>) -> Self {
        let slots = devices
            .into_iter()
            .map(|device| {
                let bypass = (1u64 << device.ir_length()) - 1;
                TapSlot {
                    device,
                    ir: bypass,
                    ir_shift: 0,
                    dr_shift: 0,
                    dr_len: 1,
                }
            })
            .collect();
        let mut chain = Self {
            slots,
            state: TapState::TestLogicReset,
            cycles: 0,
            shifts: 0,
            fault: None,
            corrupted_bits: 0,
        };
        chain.reset();
        chain
    }

    /// Number of devices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if the chain has no devices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current TAP state (all TAPs share it: common TMS).
    #[must_use]
    pub fn state(&self) -> TapState {
        self.state
    }

    /// TCK cycle counter.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Shift-state TCK cycles (IR + DR payload bits moved through the chain).
    #[must_use]
    pub fn shifts(&self) -> u64 {
        self.shifts
    }

    /// Injects TDO read-back corruption: each shifted-out bit flips with
    /// probability `rate`. Panics unless `rate` is in `[0, 1]`.
    pub fn set_fault(&mut self, rate: f64, seed: u64) {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1]");
        self.fault = Some((rate, Rng64::new(seed)));
    }

    /// Removes any injected TDO corruption.
    pub fn clear_fault(&mut self) {
        self.fault = None;
    }

    /// Number of shifted-out bits flipped by the injected fault so far.
    #[must_use]
    pub fn corrupted_bits(&self) -> u64 {
        self.corrupted_bits
    }

    /// Applies 5 TMS-high clocks (hardware reset) and lands in
    /// Run-Test/Idle. All IRs revert to BYPASS (this core's reset value).
    pub fn reset(&mut self) {
        for _ in 0..5 {
            self.clock(true, false);
        }
        self.clock(false, false); // -> RunTestIdle
        for slot in &mut self.slots {
            slot.ir = (1u64 << slot.device.ir_length()) - 1;
        }
    }

    /// One TCK rising edge: returns TDO.
    ///
    /// Shift registers move LSB-first; TDI feeds the highest-index device.
    pub fn clock(&mut self, tms: bool, tdi: bool) -> bool {
        self.cycles += 1;
        let state = self.state;
        let mut tdo = false;
        match state {
            TapState::CaptureIr => {
                for slot in &mut self.slots {
                    // Standard: capture 0b...01 pattern; we capture the
                    // current IR which also satisfies read-back checks.
                    slot.ir_shift = slot.ir;
                }
            }
            TapState::ShiftIr => {
                self.shifts += 1;
                // Bit ripples from high-index device toward TDO (device 0).
                let mut carry = tdi;
                for slot in self.slots.iter_mut().rev() {
                    let out = slot.ir_shift & 1 != 0;
                    let len = slot.device.ir_length();
                    slot.ir_shift >>= 1;
                    if carry {
                        slot.ir_shift |= 1 << (len - 1);
                    }
                    carry = out;
                }
                tdo = carry;
            }
            TapState::UpdateIr => {
                for slot in &mut self.slots {
                    let mask = (1u64 << slot.device.ir_length()) - 1;
                    slot.ir = slot.ir_shift & mask;
                }
            }
            TapState::CaptureDr => {
                for slot in &mut self.slots {
                    slot.dr_len = slot.device.dr_length(slot.ir);
                    slot.dr_shift = slot.device.capture_dr(slot.ir);
                }
            }
            TapState::ShiftDr => {
                self.shifts += 1;
                let mut carry = tdi;
                for slot in self.slots.iter_mut().rev() {
                    let out = slot.dr_shift & 1 != 0;
                    slot.dr_shift >>= 1;
                    if carry {
                        slot.dr_shift |= 1 << (slot.dr_len - 1);
                    }
                    carry = out;
                }
                tdo = carry;
            }
            TapState::UpdateDr => {
                for slot in &mut self.slots {
                    let mask = if slot.dr_len >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << slot.dr_len) - 1
                    };
                    let value = slot.dr_shift & mask;
                    slot.device.update_dr(slot.ir, value);
                }
            }
            _ => {}
        }
        if matches!(state, TapState::ShiftIr | TapState::ShiftDr) {
            if let Some((rate, rng)) = &mut self.fault {
                if rng.next_f64() < *rate {
                    tdo = !tdo;
                    self.corrupted_bits += 1;
                }
            }
        }
        self.state = state.next(tms);
        tdo
    }

    /// Navigates from Run-Test/Idle through a full IR scan, loading
    /// `instructions[i]` into device `i`. Returns to Run-Test/Idle.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::Empty`] if the chain has no devices, or
    /// [`ChainError::NoSuchDevice`] if the instruction count mismatches.
    pub fn scan_ir(&mut self, instructions: &[u64]) -> Result<(), ChainError> {
        if self.slots.is_empty() {
            return Err(ChainError::Empty);
        }
        if instructions.len() != self.slots.len() {
            return Err(ChainError::NoSuchDevice {
                index: instructions.len(),
                len: self.slots.len(),
            });
        }
        // RunTestIdle -> SelectDr -> SelectIr -> CaptureIr -> ShiftIr
        self.clock(true, false);
        self.clock(true, false);
        self.clock(false, false);
        self.clock(false, false);
        // Shift all bits, device 0's instruction goes out... TDI feeds the
        // highest-index device, and bits ripple toward device 0. To leave
        // instruction[i] in device i after (total-1) more shifts plus exit,
        // send device 0's bits FIRST (they must travel furthest).
        let total: usize = self.slots.iter().map(|s| s.device.ir_length()).sum();
        let mut bits = Vec::with_capacity(total);
        for (slot, &inst) in self.slots.iter().zip(instructions) {
            for b in 0..slot.device.ir_length() {
                bits.push(inst >> b & 1 != 0);
            }
        }
        for (i, &bit) in bits.iter().enumerate() {
            let last = i == bits.len() - 1;
            self.clock(last, bit); // exit on the final bit
        }
        self.clock(true, false); // Exit1 -> UpdateIr
        self.clock(false, false); // -> RunTestIdle
        Ok(())
    }

    /// Full DR scan: shifts `value` into device `index` (all others must be
    /// in BYPASS), returning the bits captured from that device.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::NoSuchDevice`] for a bad index.
    pub fn scan_dr(&mut self, index: usize, value: u64) -> Result<u64, ChainError> {
        if index >= self.slots.len() {
            return Err(ChainError::NoSuchDevice {
                index,
                len: self.slots.len(),
            });
        }
        // RunTestIdle -> SelectDr -> CaptureDr -> ShiftDr
        self.clock(true, false);
        self.clock(false, false);
        self.clock(false, false);
        // Chain layout: TDI -> [n-1] -> ... -> [0] -> TDO. Devices before
        // `index` in TDI order (i > index) are 1-bit bypass; devices after
        // (i < index) are also bypass.
        let lead: usize = self.slots[index + 1..]
            .iter()
            .map(|s| s.dr_len)
            .sum::<usize>();
        let trail: usize = self.slots[..index].iter().map(|s| s.dr_len).sum::<usize>();
        let target_len = self.slots[index].dr_len;
        let total = lead + target_len + trail;
        let _ = lead; // total accounts for it; windows below are trail-based
        let mut captured: u64 = 0;
        let mut out_count = 0usize;
        for i in 0..total {
            // With `total` shift clocks, a bit injected at clock j ends at
            // chain position j (position 0 = TDO end), so the target's
            // window is [trail, trail + target_len) for input and output.
            let bit_idx = i as i64 - trail as i64;
            let tdi = if (0..target_len as i64).contains(&bit_idx) {
                value >> bit_idx & 1 != 0
            } else {
                false
            };
            let last = i == total - 1;
            let tdo = self.clock(last, tdi);
            // Bits from the target device appear after `trail` leading bits.
            let cap_idx = i as i64 - trail as i64;
            if (0..target_len as i64).contains(&cap_idx) && out_count < 64 {
                if tdo {
                    captured |= 1 << cap_idx;
                }
                out_count += 1;
            }
        }
        self.clock(true, false); // Exit1 -> UpdateDr
        self.clock(false, false); // -> RunTestIdle
        Ok(captured)
    }

    /// Loads `instruction` into device `index` and BYPASS into the others.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::NoSuchDevice`] for a bad index.
    pub fn select(&mut self, index: usize, instruction: u64) -> Result<(), ChainError> {
        if index >= self.slots.len() {
            return Err(ChainError::NoSuchDevice {
                index,
                len: self.slots.len(),
            });
        }
        let irs: Vec<u64> = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if i == index {
                    instruction
                } else {
                    (1u64 << s.device.ir_length()) - 1
                }
            })
            .collect();
        self.scan_ir(&irs)
    }

    /// Reads every device's IDCODE through real scans.
    ///
    /// # Errors
    ///
    /// Propagates scan errors (empty chain).
    pub fn read_idcodes(&mut self) -> Result<Vec<u32>, ChainError> {
        let mut out = Vec::with_capacity(self.slots.len());
        for i in 0..self.slots.len() {
            self.select(i, crate::device::instructions::IDCODE)?;
            let id = self.scan_dr(i, 0)?;
            out.push(id as u32);
        }
        Ok(out)
    }

    /// Borrows a device for direct inspection (test/diagnostic use).
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::NoSuchDevice`] for a bad index.
    pub fn device_mut(
        &mut self,
        index: usize,
    ) -> Result<&mut (dyn JtagDevice + 'static), ChainError> {
        let len = self.slots.len();
        self.slots
            .get_mut(index)
            .map(|s| &mut *s.device)
            .ok_or(ChainError::NoSuchDevice { index, len })
    }

    /// Serializes the TAP FSM state, counters, injected fault, and every
    /// slot's shift/instruction registers plus the device's own state (via
    /// [`JtagDevice::save_state`]).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_u8(self.state.code());
        w.put_u64(self.cycles);
        w.put_u64(self.shifts);
        match &self.fault {
            Some((rate, rng)) => {
                w.put_bool(true);
                w.put_f64(*rate);
                rng.save_state(w);
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.corrupted_bits);
        w.put_u32(self.slots.len() as u32);
        for slot in &self.slots {
            w.put_u64(slot.ir);
            w.put_u64(slot.ir_shift);
            w.put_u64(slot.dr_shift);
            w.put_u32(slot.dr_len as u32);
            slot.device.save_state(w);
        }
    }

    /// Restores state saved by [`JtagChain::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] if the TAP state code is invalid
    /// or the device count does not match this chain; propagates other
    /// [`SnapshotError`]s on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let code = r.take_u8()?;
        let state = TapState::from_code(code).ok_or_else(|| SnapshotError::Corrupt {
            context: format!("TAP state code {code} out of range"),
        })?;
        let cycles = r.take_u64()?;
        let shifts = r.take_u64()?;
        let fault = if r.take_bool()? {
            let rate = r.take_f64()?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(SnapshotError::Corrupt {
                    context: format!("JTAG fault rate {rate} outside [0, 1]"),
                });
            }
            let mut rng = Rng64::new(1);
            rng.load_state(r)?;
            Some((rate, rng))
        } else {
            None
        };
        let corrupted_bits = r.take_u64()?;
        let count = r.take_u32()? as usize;
        if count != self.slots.len() {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "JTAG chain of {count} devices in snapshot, chain has {}",
                    self.slots.len()
                ),
            });
        }
        self.state = state;
        self.cycles = cycles;
        self.shifts = shifts;
        self.fault = fault;
        self.corrupted_bits = corrupted_bits;
        for slot in &mut self.slots {
            slot.ir = r.take_u64()?;
            slot.ir_shift = r.take_u64()?;
            slot.dr_shift = r.take_u64()?;
            slot.dr_len = r.take_u32()? as usize;
            slot.device.load_state(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{instructions, BypassDevice, RegAccessDevice, RegisterBus};
    use std::collections::HashMap;

    #[derive(Debug, Default)]
    struct MapBus {
        regs: HashMap<u8, u16>,
    }

    impl RegisterBus for MapBus {
        fn read(&mut self, addr: u8) -> Option<u16> {
            self.regs.get(&addr).copied()
        }
        fn write(&mut self, addr: u8, value: u16) -> bool {
            self.regs.insert(addr, value);
            true
        }
    }

    fn reg_chain() -> JtagChain {
        JtagChain::new(vec![
            Box::new(RegAccessDevice::new(0x0000_0a01, MapBus::default())),
            Box::new(BypassDevice::new(0x0000_0b01)),
            Box::new(RegAccessDevice::new(0x0000_0c01, MapBus::default())),
        ])
    }

    #[test]
    fn idcodes_read_back_through_the_wire() {
        let mut chain = reg_chain();
        let ids = chain.read_idcodes().unwrap();
        assert_eq!(ids, vec![0x0000_0a01, 0x0000_0b01, 0x0000_0c01]);
    }

    #[test]
    fn register_write_read_roundtrip_device0() {
        let mut chain = reg_chain();
        chain.select(0, instructions::REG_ACCESS).unwrap();
        chain
            .scan_dr(0, RegAccessDevice::<MapBus>::pack_write(0x07, 0x1234))
            .unwrap();
        chain
            .scan_dr(0, RegAccessDevice::<MapBus>::pack_read(0x07))
            .unwrap();
        let dr = chain.scan_dr(0, 0).unwrap();
        assert_eq!(RegAccessDevice::<MapBus>::unpack_data(dr), 0x1234);
    }

    #[test]
    fn register_write_read_roundtrip_device2() {
        let mut chain = reg_chain();
        chain.select(2, instructions::REG_ACCESS).unwrap();
        chain
            .scan_dr(2, RegAccessDevice::<MapBus>::pack_write(0x01, 0xbeef))
            .unwrap();
        chain
            .scan_dr(2, RegAccessDevice::<MapBus>::pack_read(0x01))
            .unwrap();
        let dr = chain.scan_dr(2, 0).unwrap();
        assert_eq!(RegAccessDevice::<MapBus>::unpack_data(dr), 0xbeef);
    }

    #[test]
    fn devices_are_isolated() {
        let mut chain = reg_chain();
        chain.select(0, instructions::REG_ACCESS).unwrap();
        chain
            .scan_dr(0, RegAccessDevice::<MapBus>::pack_write(0x03, 0xaaaa))
            .unwrap();
        // Device 2 must not have register 3.
        chain.select(2, instructions::REG_ACCESS).unwrap();
        chain
            .scan_dr(2, RegAccessDevice::<MapBus>::pack_read(0x03))
            .unwrap();
        let dr = chain.scan_dr(2, 0).unwrap();
        assert_eq!(RegAccessDevice::<MapBus>::unpack_data(dr), 0xffff);
    }

    #[test]
    fn reset_lands_in_idle_with_bypass() {
        let mut chain = reg_chain();
        chain.reset();
        assert_eq!(chain.state(), TapState::RunTestIdle);
    }

    #[test]
    fn bad_index_is_error() {
        let mut chain = reg_chain();
        assert!(matches!(
            chain.select(9, instructions::IDCODE),
            Err(ChainError::NoSuchDevice { index: 9, len: 3 })
        ));
        assert!(chain.scan_dr(9, 0).is_err());
    }

    #[test]
    fn empty_chain_is_error() {
        let mut chain = JtagChain::new(Vec::new());
        assert_eq!(chain.scan_ir(&[]), Err(ChainError::Empty));
        assert!(chain.is_empty());
    }

    #[test]
    fn cycle_counter_advances() {
        let mut chain = reg_chain();
        let c0 = chain.cycles();
        chain.read_idcodes().unwrap();
        assert!(chain.cycles() > c0 + 100);
    }

    #[test]
    fn shift_counter_counts_payload_cycles() {
        let mut chain = reg_chain();
        assert_eq!(chain.shifts(), 0, "reset path never enters shift states");
        chain.read_idcodes().unwrap();
        let shifts = chain.shifts();
        // Each scan moves real payload bits, but far fewer than total TCK.
        assert!(shifts > 0);
        assert!(shifts < chain.cycles());
    }

    #[test]
    fn tdo_fault_corrupts_idcode_readback() {
        let mut chain = reg_chain();
        chain.set_fault(0.25, 42);
        let ids = chain.read_idcodes().unwrap();
        assert_ne!(
            ids,
            vec![0x0000_0a01, 0x0000_0b01, 0x0000_0c01],
            "a 25% flip rate over 96 IDCODE bits must corrupt the read-back"
        );
        assert!(chain.corrupted_bits() > 0);
        // Only the TDO path is faulty: clearing the fault restores reads
        // because the internal registers were never corrupted.
        chain.clear_fault();
        let ids = chain.read_idcodes().unwrap();
        assert_eq!(ids, vec![0x0000_0a01, 0x0000_0b01, 0x0000_0c01]);
    }

    #[test]
    fn tdo_fault_rate_zero_is_harmless() {
        let mut chain = reg_chain();
        chain.set_fault(0.0, 1);
        let ids = chain.read_idcodes().unwrap();
        assert_eq!(ids, vec![0x0000_0a01, 0x0000_0b01, 0x0000_0c01]);
        assert_eq!(chain.corrupted_bits(), 0);
    }
}
