//! IEEE 1149.1 TAP controller state machine.
//!
//! The paper selects JTAG as the analog/digital configuration interface for
//! its reliability, asynchronous clocking, 4-wire routing and "full
//! read-back capability" (§4.2). The 16-state TAP FSM below is the exact
//! standard machine; every transition is driven by TMS sampled on the
//! rising edge of TCK.

/// The sixteen TAP controller states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TapState {
    /// Reset state (TMS high for 5 clocks reaches it from anywhere).
    #[default]
    TestLogicReset,
    /// Idle between scans.
    RunTestIdle,
    /// Entry to the data-register column.
    SelectDrScan,
    /// Parallel-load the selected DR.
    CaptureDr,
    /// Shift the DR one bit per clock.
    ShiftDr,
    /// First exit from shifting.
    Exit1Dr,
    /// Pause shifting.
    PauseDr,
    /// Second exit.
    Exit2Dr,
    /// Apply the shifted DR value.
    UpdateDr,
    /// Entry to the instruction-register column.
    SelectIrScan,
    /// Parallel-load the IR.
    CaptureIr,
    /// Shift the IR.
    ShiftIr,
    /// First exit from IR shifting.
    Exit1Ir,
    /// Pause IR shifting.
    PauseIr,
    /// Second exit.
    Exit2Ir,
    /// Apply the shifted instruction.
    UpdateIr,
}

impl TapState {
    /// The state after one TCK rising edge with the given TMS level.
    #[must_use]
    pub fn next(self, tms: bool) -> TapState {
        use TapState::*;
        match (self, tms) {
            (TestLogicReset, true) => TestLogicReset,
            (TestLogicReset, false) => RunTestIdle,
            (RunTestIdle, true) => SelectDrScan,
            (RunTestIdle, false) => RunTestIdle,
            (SelectDrScan, true) => SelectIrScan,
            (SelectDrScan, false) => CaptureDr,
            (CaptureDr, true) => Exit1Dr,
            (CaptureDr, false) => ShiftDr,
            (ShiftDr, true) => Exit1Dr,
            (ShiftDr, false) => ShiftDr,
            (Exit1Dr, true) => UpdateDr,
            (Exit1Dr, false) => PauseDr,
            (PauseDr, true) => Exit2Dr,
            (PauseDr, false) => PauseDr,
            (Exit2Dr, true) => UpdateDr,
            (Exit2Dr, false) => ShiftDr,
            (UpdateDr, true) => SelectDrScan,
            (UpdateDr, false) => RunTestIdle,
            (SelectIrScan, true) => TestLogicReset,
            (SelectIrScan, false) => CaptureIr,
            (CaptureIr, true) => Exit1Ir,
            (CaptureIr, false) => ShiftIr,
            (ShiftIr, true) => Exit1Ir,
            (ShiftIr, false) => ShiftIr,
            (Exit1Ir, true) => UpdateIr,
            (Exit1Ir, false) => PauseIr,
            (PauseIr, true) => Exit2Ir,
            (PauseIr, false) => PauseIr,
            (Exit2Ir, true) => UpdateIr,
            (Exit2Ir, false) => ShiftIr,
            (UpdateIr, true) => SelectDrScan,
            (UpdateIr, false) => RunTestIdle,
        }
    }

    /// `true` in the two shift states.
    #[must_use]
    pub fn is_shifting(self) -> bool {
        matches!(self, TapState::ShiftDr | TapState::ShiftIr)
    }

    /// Stable numeric code for serialization (inverse of
    /// [`TapState::from_code`]).
    #[must_use]
    pub fn code(self) -> u8 {
        use TapState::*;
        match self {
            TestLogicReset => 0,
            RunTestIdle => 1,
            SelectDrScan => 2,
            CaptureDr => 3,
            ShiftDr => 4,
            Exit1Dr => 5,
            PauseDr => 6,
            Exit2Dr => 7,
            UpdateDr => 8,
            SelectIrScan => 9,
            CaptureIr => 10,
            ShiftIr => 11,
            Exit1Ir => 12,
            PauseIr => 13,
            Exit2Ir => 14,
            UpdateIr => 15,
        }
    }

    /// Decodes a [`TapState::code`] value; `None` for codes ≥ 16.
    #[must_use]
    pub fn from_code(code: u8) -> Option<TapState> {
        use TapState::*;
        Some(match code {
            0 => TestLogicReset,
            1 => RunTestIdle,
            2 => SelectDrScan,
            3 => CaptureDr,
            4 => ShiftDr,
            5 => Exit1Dr,
            6 => PauseDr,
            7 => Exit2Dr,
            8 => UpdateDr,
            9 => SelectIrScan,
            10 => CaptureIr,
            11 => ShiftIr,
            12 => Exit1Ir,
            13 => PauseIr,
            14 => Exit2Ir,
            15 => UpdateIr,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TapState::*;

    #[test]
    fn five_tms_ones_reset_from_anywhere() {
        let all = [
            TestLogicReset,
            RunTestIdle,
            SelectDrScan,
            CaptureDr,
            ShiftDr,
            Exit1Dr,
            PauseDr,
            Exit2Dr,
            UpdateDr,
            SelectIrScan,
            CaptureIr,
            ShiftIr,
            Exit1Ir,
            PauseIr,
            Exit2Ir,
            UpdateIr,
        ];
        for start in all {
            let mut s = start;
            for _ in 0..5 {
                s = s.next(true);
            }
            assert_eq!(s, TestLogicReset, "from {start:?}");
        }
    }

    #[test]
    fn standard_dr_scan_path() {
        let mut s = RunTestIdle;
        // TMS: 1 0 0 ... shift ... 1 1 -> back to idle via 0.
        s = s.next(true); // SelectDrScan
        assert_eq!(s, SelectDrScan);
        s = s.next(false); // CaptureDr
        assert_eq!(s, CaptureDr);
        s = s.next(false); // ShiftDr
        assert_eq!(s, ShiftDr);
        s = s.next(false);
        assert_eq!(s, ShiftDr);
        s = s.next(true); // Exit1
        assert_eq!(s, Exit1Dr);
        s = s.next(true); // Update
        assert_eq!(s, UpdateDr);
        s = s.next(false);
        assert_eq!(s, RunTestIdle);
    }

    #[test]
    fn ir_scan_path() {
        let mut s = RunTestIdle;
        s = s.next(true);
        s = s.next(true);
        assert_eq!(s, SelectIrScan);
        s = s.next(false);
        assert_eq!(s, CaptureIr);
        s = s.next(false);
        assert_eq!(s, ShiftIr);
        assert!(s.is_shifting());
        s = s.next(true);
        s = s.next(false);
        assert_eq!(s, PauseIr);
        s = s.next(true);
        assert_eq!(s, Exit2Ir);
        s = s.next(false);
        assert_eq!(s, ShiftIr);
    }

    #[test]
    fn pause_dr_loops() {
        let mut s = PauseDr;
        for _ in 0..10 {
            s = s.next(false);
            assert_eq!(s, PauseDr);
        }
    }

    #[test]
    fn idle_is_stable() {
        assert_eq!(RunTestIdle.next(false), RunTestIdle);
    }
}
