//! # ascp-jtag — JTAG (IEEE 1149.1) configuration interface
//!
//! The analog/digital configuration link of the ASCP platform (reproduction
//! of *Platform Based Design for Automotive Sensor Conditioning*, DATE
//! 2005). The paper picks JTAG for the AFE control interface because it is
//! proven, asynchronous (clock-skew tolerant), 4-wire, and offers *full
//! read-back capability* for verification and debugging (§4.2) — the
//! prototype must "pass strict self-checking tests concerning full hardware
//! read-back capability" (§2).
//!
//! - [`state`] — the 16-state TAP controller FSM;
//! - [`device`] — the [`device::JtagDevice`] trait, BYPASS/IDCODE
//!   behaviour, and the register-access DR protocol;
//! - [`chain`] — a bit-level multi-device chain (shared TMS, rippling
//!   TDI→TDO) with high-level scan transactions.
//!
//! # Example
//!
//! ```
//! use ascp_jtag::chain::JtagChain;
//! use ascp_jtag::device::BypassDevice;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut chain = JtagChain::new(vec![
//!     Box::new(BypassDevice::new(0x0000_0A01)),
//!     Box::new(BypassDevice::new(0x0000_0B01)),
//! ]);
//! assert_eq!(chain.read_idcodes()?, vec![0x0000_0A01, 0x0000_0B01]);
//! # Ok(())
//! # }
//! ```

pub mod chain;
pub mod device;
pub mod state;
