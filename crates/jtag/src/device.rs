//! JTAG device model and the standard register-access device.
//!
//! Each analog cell bank on the chip is a TAP in the chain. A device
//! decodes the instruction register into a data register; the chain
//! ([`crate::chain::JtagChain`]) moves the bits.

use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};

/// Behavioural model of one TAP in the chain.
///
/// Object-safe: the chain holds `Box<dyn JtagDevice>`.
pub trait JtagDevice {
    /// Instruction register length in bits (≥ 2 per the standard).
    fn ir_length(&self) -> usize;

    /// 32-bit IDCODE (bit 0 must be 1 per IEEE 1149.1).
    fn idcode(&self) -> u32;

    /// Length of the data register selected by instruction `ir`.
    /// The all-ones instruction (BYPASS) must map to a 1-bit register.
    fn dr_length(&self, ir: u64) -> usize;

    /// Value parallel-loaded into the selected DR at Capture-DR.
    fn capture_dr(&mut self, ir: u64) -> u64;

    /// Applies the shifted-in DR value at Update-DR.
    fn update_dr(&mut self, ir: u64, value: u64);

    /// Serializes device-internal state for platform checkpointing.
    ///
    /// The default writes nothing — correct for stateless devices such as
    /// [`BypassDevice`]. Devices with internal latches must override both
    /// hooks symmetrically.
    fn save_state(&self, w: &mut StateWriter) {
        let _ = w;
    }

    /// Restores state written by [`JtagDevice::save_state`].
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let _ = r;
        Ok(())
    }
}

/// Standard instruction encodings used by ASCP devices (4-bit IR).
pub mod instructions {
    /// Read the 32-bit IDCODE.
    pub const IDCODE: u64 = 0b0001;
    /// Register access: DR = `[data:16][addr:8][write:1]`, 25 bits.
    pub const REG_ACCESS: u64 = 0b0010;
    /// Bypass (1-bit DR); also the post-reset default of this core.
    pub const BYPASS: u64 = 0b1111;
}

/// Register bus abstraction a [`RegAccessDevice`] drives.
///
/// Implemented by the AFE register bank (via the platform glue) and by DSP
/// status/control banks.
pub trait RegisterBus {
    /// Reads a register; `None` for unmapped addresses.
    fn read(&mut self, addr: u8) -> Option<u16>;

    /// Writes a register; `false` if rejected (unmapped or read-only).
    fn write(&mut self, addr: u8, value: u16) -> bool;
}

/// A TAP exposing a [`RegisterBus`] through the `REG_ACCESS` instruction.
///
/// DR layout (25 bits, LSB first on the wire):
/// bit 0 = write flag, bits 1..=8 = address, bits 9..=24 = data.
/// On Update-DR with the write flag set, the data is written; with the flag
/// clear, the addressed register is read and presented at the next
/// Capture-DR (full read-back, the paper's requirement (iv)).
pub struct RegAccessDevice<B> {
    idcode: u32,
    bus: B,
    last_read: u16,
    /// Count of rejected writes (a self-checking diagnostic).
    write_errors: u32,
}

impl<B: std::fmt::Debug> std::fmt::Debug for RegAccessDevice<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegAccessDevice")
            .field("idcode", &format_args!("{:#010x}", self.idcode))
            .field("bus", &self.bus)
            .field("last_read", &self.last_read)
            .field("write_errors", &self.write_errors)
            .finish()
    }
}

impl<B: RegisterBus> RegAccessDevice<B> {
    /// Wraps a register bus with the given IDCODE.
    ///
    /// # Panics
    ///
    /// Panics if `idcode` has bit 0 clear (reserved by IEEE 1149.1).
    pub fn new(idcode: u32, bus: B) -> Self {
        assert!(idcode & 1 == 1, "IDCODE bit 0 must be 1 per IEEE 1149.1");
        Self {
            idcode,
            bus,
            last_read: 0,
            write_errors: 0,
        }
    }

    /// Packs a DR word for a write transaction.
    #[must_use]
    pub fn pack_write(addr: u8, data: u16) -> u64 {
        1 | ((addr as u64) << 1) | ((data as u64) << 9)
    }

    /// Packs a DR word for a read request.
    #[must_use]
    pub fn pack_read(addr: u8) -> u64 {
        (addr as u64) << 1
    }

    /// Extracts the data field from a captured DR word.
    #[must_use]
    pub fn unpack_data(dr: u64) -> u16 {
        ((dr >> 9) & 0xffff) as u16
    }

    /// Rejected-write counter.
    #[must_use]
    pub fn write_errors(&self) -> u32 {
        self.write_errors
    }

    /// Access the wrapped bus.
    pub fn bus_mut(&mut self) -> &mut B {
        &mut self.bus
    }
}

impl<B: RegisterBus> JtagDevice for RegAccessDevice<B> {
    fn ir_length(&self) -> usize {
        4
    }

    fn idcode(&self) -> u32 {
        self.idcode
    }

    fn dr_length(&self, ir: u64) -> usize {
        match ir {
            instructions::IDCODE => 32,
            instructions::REG_ACCESS => 25,
            _ => 1, // BYPASS and unknown instructions
        }
    }

    fn capture_dr(&mut self, ir: u64) -> u64 {
        match ir {
            instructions::IDCODE => self.idcode as u64,
            instructions::REG_ACCESS => (self.last_read as u64) << 9,
            _ => 0,
        }
    }

    fn update_dr(&mut self, ir: u64, value: u64) {
        if ir == instructions::REG_ACCESS {
            let write = value & 1 != 0;
            let addr = ((value >> 1) & 0xff) as u8;
            let data = ((value >> 9) & 0xffff) as u16;
            if write {
                if !self.bus.write(addr, data) {
                    self.write_errors += 1;
                }
            } else {
                self.last_read = self.bus.read(addr).unwrap_or(0xffff);
            }
        }
    }

    /// Serializes the read-back latch and the rejected-write counter (the
    /// wrapped bus serializes with its owning subsystem, not here).
    fn save_state(&self, w: &mut StateWriter) {
        w.put_u16(self.last_read);
        w.put_u32(self.write_errors);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.last_read = r.take_u16()?;
        self.write_errors = r.take_u32()?;
        Ok(())
    }
}

/// A pure-bypass TAP (a chip section with no accessible registers).
#[derive(Debug, Clone, Default)]
pub struct BypassDevice {
    idcode: u32,
}

impl BypassDevice {
    /// Creates a bypass device with the given IDCODE.
    ///
    /// # Panics
    ///
    /// Panics if `idcode` has bit 0 clear.
    #[must_use]
    pub fn new(idcode: u32) -> Self {
        assert!(idcode & 1 == 1, "IDCODE bit 0 must be 1 per IEEE 1149.1");
        Self { idcode }
    }
}

impl JtagDevice for BypassDevice {
    fn ir_length(&self) -> usize {
        4
    }

    fn idcode(&self) -> u32 {
        self.idcode
    }

    fn dr_length(&self, ir: u64) -> usize {
        if ir == instructions::IDCODE {
            32
        } else {
            1
        }
    }

    fn capture_dr(&mut self, ir: u64) -> u64 {
        if ir == instructions::IDCODE {
            self.idcode as u64
        } else {
            0
        }
    }

    fn update_dr(&mut self, _ir: u64, _value: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[derive(Debug, Default)]
    struct MapBus {
        regs: HashMap<u8, u16>,
    }

    impl RegisterBus for MapBus {
        fn read(&mut self, addr: u8) -> Option<u16> {
            self.regs.get(&addr).copied()
        }
        fn write(&mut self, addr: u8, value: u16) -> bool {
            if addr < 0x10 {
                self.regs.insert(addr, value);
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        let dr = RegAccessDevice::<MapBus>::pack_write(0x2a, 0xbeef);
        assert_eq!(dr & 1, 1);
        assert_eq!((dr >> 1) & 0xff, 0x2a);
        assert_eq!(RegAccessDevice::<MapBus>::unpack_data(dr), 0xbeef);
    }

    #[test]
    fn write_then_read_back() {
        let mut dev = RegAccessDevice::new(0x1234_5601, MapBus::default());
        let ir = instructions::REG_ACCESS;
        dev.update_dr(ir, RegAccessDevice::<MapBus>::pack_write(0x05, 0xa5a5));
        dev.update_dr(ir, RegAccessDevice::<MapBus>::pack_read(0x05));
        let captured = dev.capture_dr(ir);
        assert_eq!(RegAccessDevice::<MapBus>::unpack_data(captured), 0xa5a5);
    }

    #[test]
    fn unmapped_read_returns_all_ones() {
        let mut dev = RegAccessDevice::new(0x1, MapBus::default());
        dev.update_dr(
            instructions::REG_ACCESS,
            RegAccessDevice::<MapBus>::pack_read(0x99),
        );
        let captured = dev.capture_dr(instructions::REG_ACCESS);
        assert_eq!(RegAccessDevice::<MapBus>::unpack_data(captured), 0xffff);
    }

    #[test]
    fn rejected_writes_counted() {
        let mut dev = RegAccessDevice::new(0x1, MapBus::default());
        dev.update_dr(
            instructions::REG_ACCESS,
            RegAccessDevice::<MapBus>::pack_write(0x99, 1),
        );
        assert_eq!(dev.write_errors(), 1);
    }

    #[test]
    fn idcode_capture() {
        let mut dev = RegAccessDevice::new(0xdead_beef | 1, MapBus::default());
        assert_eq!(dev.capture_dr(instructions::IDCODE) as u32, 0xdead_beef | 1);
        assert_eq!(dev.dr_length(instructions::IDCODE), 32);
    }

    #[test]
    fn bypass_is_one_bit_zero() {
        let mut dev = BypassDevice::new(0x0000_0BB1);
        assert_eq!(dev.dr_length(instructions::BYPASS), 1);
        assert_eq!(dev.capture_dr(instructions::BYPASS), 0);
    }

    #[test]
    #[should_panic(expected = "bit 0")]
    fn even_idcode_rejected() {
        let _ = BypassDevice::new(0x2);
    }
}
