//! Differential tests pinning the basic-block translation cache
//! ([`ascp_mcu8051::xlate`]) to the per-step interpreter.
//!
//! The cache is a pure execution-strategy optimisation: with it on or
//! off — and whether execution is driven by [`Cpu::step`] or the
//! batched [`Cpu::run_cycles`] replay — the architectural state,
//! cycle/instruction counters, interrupt timing, UART traffic, and
//! every external-bus access must be bit-identical. These tests pin
//! that claim with:
//!
//! - randomised firmware (a deterministic xorshift generator emitting
//!   `asm.rs` source) run four ways and compared via full
//!   `save_state` checkpoint bytes plus a recorded bus trace;
//! - interrupt-latency tests: INT0/INT1 pins and a UART RX interrupt
//!   asserted while the CPU is mid-way through a cached block must be
//!   taken at the identical cycle;
//! - a self-modifying-code test: a `code_write` into a cached block
//!   (JTAG-style patch) invalidates it, the next execution re-decodes,
//!   and the patched run stays trace-identical to an uncached twin.

use ascp_mcu8051::asm::assemble;
use ascp_mcu8051::cpu::{Cpu, ExternalBus};
use ascp_sim::snapshot::StateWriter;

/// Bus that records every access (kind, addr, value) in call order and
/// backs MOVX with a small deterministic RAM so reads depend on prior
/// writes. SFR reads return a fixed function of the address.
#[derive(Default)]
struct RecordingBus {
    xdata: Vec<u8>,
    trace: Vec<(u8, u16, u8)>,
}

impl RecordingBus {
    fn new() -> Self {
        Self {
            xdata: vec![0; 256],
            trace: Vec::new(),
        }
    }
}

impl ExternalBus for RecordingBus {
    fn sfr_read(&mut self, addr: u8) -> Option<u8> {
        let value = addr.wrapping_mul(31) ^ 0x5a;
        self.trace.push((0, u16::from(addr), value));
        Some(value)
    }
    fn sfr_write(&mut self, addr: u8, value: u8) -> bool {
        self.trace.push((1, u16::from(addr), value));
        false
    }
    fn xdata_read(&mut self, addr: u16) -> u8 {
        let value = self.xdata[usize::from(addr) % self.xdata.len()];
        self.trace.push((2, addr, value));
        value
    }
    fn xdata_write(&mut self, addr: u16, value: u8) {
        let len = self.xdata.len();
        self.xdata[usize::from(addr) % len] = value;
        self.trace.push((3, addr, value));
    }
}

/// Serializes the full architectural state to bytes. The translation
/// cache is deliberately excluded from `save_state`, so equal bytes
/// here mean equal PC, IRAM, SFRs, interrupt state, UART queues, and
/// cycle/instruction counters.
fn checkpoint(cpu: &Cpu) -> Vec<u8> {
    let mut w = StateWriter::new();
    cpu.save_state(&mut w);
    w.into_bytes()
}

/// Minimal deterministic RNG (xorshift64*) — `proptest` is an optional
/// feature, and these tests want reproducible firmware per seed anyway.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn byte(&mut self) -> u8 {
        (self.next() & 0xff) as u8
    }
}

/// Emits one random instruction template into `out`. Templates are
/// self-contained (forward labels resolve within the template) and
/// never touch R7 (the outer loop counter), SP, PSW bank bits, or
/// PCON, so the scaffold stays intact. `periph` additionally enables
/// timer/UART/interrupt excitement.
fn emit_template(rng: &mut XorShift, out: &mut String, label: &mut u32, periph: bool) {
    use std::fmt::Write as _;
    let scratch = 0x30 + rng.below(0x28); // direct scratch 0x30..0x57
    let imm = rng.byte();
    let reg = rng.below(6); // r0..r5
    let bit = 0x08 + rng.below(0x38); // bit space -> iram 0x21..0x27
    let n = *label;
    *label += 1;
    let kinds = if periph { 22 } else { 18 };
    match rng.below(kinds) {
        0 => writeln!(out, "    mov a, #{imm}").unwrap(),
        1 => {
            let op = ["add", "addc", "subb"][rng.below(3) as usize];
            writeln!(out, "    {op} a, #{imm}").unwrap();
        }
        2 => writeln!(out, "    mov r{reg}, #{imm}").unwrap(),
        3 => {
            let op = ["mov a, r", "mov r", "xch a, r"][rng.below(3) as usize];
            if op == "mov r" {
                writeln!(out, "    mov r{reg}, a").unwrap();
            } else {
                writeln!(out, "    {op}{reg}").unwrap();
            }
        }
        4 => {
            let op = [
                "inc a", "dec a", "cpl a", "swap a", "rl a", "rlc a", "rr a", "rrc a", "da a",
            ][rng.below(9) as usize];
            writeln!(out, "    {op}").unwrap();
        }
        5 => {
            let op = ["anl", "orl", "xrl"][rng.below(3) as usize];
            writeln!(out, "    {op} a, #{imm}").unwrap();
        }
        6 => writeln!(out, "    mov 0x{scratch:02x}, #{imm}").unwrap(),
        7 => {
            let op = ["mov a, ", "inc ", "dec ", "xch a, "][rng.below(4) as usize];
            writeln!(out, "    {op}0x{scratch:02x}").unwrap();
        }
        8 => {
            // Indirect via R0 into the scratch window.
            writeln!(out, "    mov r0, #0x{scratch:02x}").unwrap();
            writeln!(out, "    mov @r0, #{imm}").unwrap();
            writeln!(out, "    inc @r0").unwrap();
            writeln!(out, "    mov a, @r0").unwrap();
        }
        9 => {
            let nz = imm | 1;
            writeln!(out, "    mov b, #{nz}").unwrap();
            let op = ["mul ab", "div ab"][rng.below(2) as usize];
            writeln!(out, "    {op}").unwrap();
        }
        10 => {
            let op = ["setb", "clr", "cpl"][rng.below(3) as usize];
            writeln!(out, "    {op} 0x{bit:02x}").unwrap();
        }
        11 => {
            let op = ["setb c", "clr c", "cpl c"][rng.below(3) as usize];
            writeln!(out, "    {op}").unwrap();
            writeln!(out, "    mov 0x{bit:02x}, c").unwrap();
            writeln!(out, "    anl c, 0x{bit:02x}").unwrap();
        }
        12 => {
            writeln!(out, "    cjne a, #{imm}, t{n}").unwrap();
            writeln!(out, "    inc b").unwrap();
            writeln!(out, "t{n}:").unwrap();
        }
        13 => {
            let op = ["jz", "jnz", "jc", "jnc"][rng.below(4) as usize];
            writeln!(out, "    {op} t{n}").unwrap();
            writeln!(out, "    cpl a").unwrap();
            writeln!(out, "t{n}:").unwrap();
        }
        14 => {
            let op = ["jb", "jnb", "jbc"][rng.below(3) as usize];
            writeln!(out, "    {op} 0x{bit:02x}, t{n}").unwrap();
            writeln!(out, "    inc 0x{scratch:02x}").unwrap();
            writeln!(out, "t{n}:").unwrap();
        }
        15 => {
            // Inner countdown loop: re-enters a cached block many times.
            let count = 2 + rng.below(4);
            writeln!(out, "    mov 0x{scratch:02x}, #{count}").unwrap();
            writeln!(out, "t{n}:").unwrap();
            writeln!(out, "    djnz 0x{scratch:02x}, t{n}").unwrap();
        }
        16 => {
            writeln!(out, "    push acc").unwrap();
            writeln!(out, "    lcall helper{}", rng.below(2)).unwrap();
            writeln!(out, "    pop acc").unwrap();
        }
        17 => {
            // MOVC constant-table lookup.
            writeln!(out, "    mov dptr, #table").unwrap();
            writeln!(out, "    mov a, #{}", rng.below(16)).unwrap();
            writeln!(out, "    movc a, @a+dptr").unwrap();
        }
        18 => {
            // MOVX through the external bus (trace-visible).
            writeln!(out, "    mov dptr, #0x{:02x}", rng.byte()).unwrap();
            let op = ["movx @dptr, a", "movx a, @dptr"][rng.below(2) as usize];
            writeln!(out, "    {op}").unwrap();
        }
        19 => {
            // Timer 0, mode 2 auto-reload, with its interrupt enabled.
            let reload = 0x80 | rng.byte();
            writeln!(out, "    orl tmod, #0x02").unwrap();
            writeln!(out, "    mov th0, #{reload}").unwrap();
            writeln!(out, "    orl ie, #0x82").unwrap();
            writeln!(out, "    setb tr0").unwrap();
        }
        20 => {
            // UART transmit (and the serial interrupt on some rolls).
            writeln!(out, "    mov scon, #0x50").unwrap();
            if rng.below(2) == 0 {
                writeln!(out, "    orl ie, #0x90").unwrap();
            }
            writeln!(out, "    mov sbuf, #{imm}").unwrap();
        }
        _ => {
            // Occasionally stop the timer again so quiet replay re-engages.
            writeln!(out, "    clr tr0").unwrap();
        }
    }
}

/// Builds a complete random firmware image: interrupt vectors with
/// counting ISRs, a scaffolded main loop of random templates, helper
/// subroutines, and a MOVC table.
fn random_firmware(seed: u64, body_len: usize, periph: bool) -> Vec<u8> {
    use std::fmt::Write as _;
    let mut rng = XorShift::new(seed);
    let mut label = 0u32;
    let mut src = String::new();
    src.push_str("    ljmp main\n");
    src.push_str("org 0x0003\n    inc 0x72\n    reti\n");
    src.push_str("org 0x000b\n    inc 0x70\n    reti\n");
    src.push_str("org 0x0013\n    inc 0x73\n    reti\n");
    src.push_str("org 0x001b\n    inc 0x74\n    reti\n");
    src.push_str(
        "org 0x0023\n    clr ri\n    clr ti\n    push acc\n    mov a, sbuf\n    mov 0x71, a\n    pop acc\n    reti\n",
    );
    src.push_str("org 0x0040\nmain:\n    mov 0x78, #0\nouter:\n");
    for _ in 0..body_len {
        emit_template(&mut rng, &mut src, &mut label, periph);
    }
    src.push_str("    inc 0x78\n    ljmp outer\n");
    src.push_str("helper0:\n    inc b\n    ret\n");
    src.push_str("helper1:\n    xrl a, #0x5a\n    ret\n");
    src.push_str("org 0x0300\ntable:\n");
    write!(src, "    db {}", rng.byte()).unwrap();
    for _ in 1..16 {
        write!(src, ", {}", rng.byte()).unwrap();
    }
    src.push('\n');
    assemble(&src).unwrap_or_else(|e| panic!("seed {seed}: {e:?}\n{src}"))
}

/// How a variant advances the CPU to each sampling mark.
#[derive(Clone, Copy)]
enum Drive {
    /// Per-step interpreter loop.
    Step,
    /// One `run_cycles` call per mark.
    Batch,
    /// `run_cycles` in fixed-size chunks (exercises mid-block resume).
    Chunks(u64),
}

struct RunOutcome {
    checkpoints: Vec<Vec<u8>>,
    trace: Vec<(u8, u16, u8)>,
    tx: Vec<u8>,
    hits: u64,
    misses: u64,
}

/// Runs `rom` to `marks` successive cycle marks spaced `sample_every`
/// apart, checkpointing at each. All variants stop at the *first
/// instruction boundary at or past each mark*, which is the same
/// boundary regardless of drive mode — `run_cycles(target)` and a
/// `step` loop both stop at the first boundary >= target.
fn run_variant(
    rom: &[u8],
    xlate: bool,
    drive: Drive,
    sample_every: u64,
    marks: usize,
    mut on_mark: impl FnMut(usize, &mut Cpu),
) -> RunOutcome {
    let mut cpu = Cpu::new();
    cpu.load_code(rom);
    cpu.set_xlate_enabled(xlate);
    let mut bus = RecordingBus::new();
    let mut checkpoints = Vec::with_capacity(marks);
    for mark in 0..marks {
        let target = sample_every * (mark as u64 + 1);
        match drive {
            Drive::Step => {
                while cpu.cycles() < target {
                    cpu.step(&mut bus);
                }
            }
            Drive::Batch => {
                cpu.run_cycles(target - cpu.cycles(), &mut bus);
            }
            Drive::Chunks(chunk) => {
                while cpu.cycles() < target {
                    let need = (target - cpu.cycles()).min(chunk);
                    cpu.run_cycles(need, &mut bus);
                }
            }
        }
        checkpoints.push(checkpoint(&cpu));
        on_mark(mark, &mut cpu);
    }
    RunOutcome {
        checkpoints,
        trace: bus.trace,
        tx: cpu.uart_take_tx(),
        hits: cpu.xlate_hits(),
        misses: cpu.xlate_misses(),
    }
}

/// Asserts two runs are observationally identical: every checkpoint,
/// the full bus trace, and the drained UART TX stream.
fn assert_identical(label: &str, base: &RunOutcome, other: &RunOutcome) {
    assert_eq!(
        base.checkpoints.len(),
        other.checkpoints.len(),
        "{label}: checkpoint count"
    );
    for (i, (a, b)) in base.checkpoints.iter().zip(&other.checkpoints).enumerate() {
        assert_eq!(a, b, "{label}: checkpoint bytes diverge at mark {i}");
    }
    assert_eq!(base.trace, other.trace, "{label}: bus trace diverges");
    assert_eq!(base.tx, other.tx, "{label}: UART TX diverges");
}

/// Tentpole pin: random firmware, four execution strategies, identical
/// checkpoints + bus traces + UART output. Seeds cover plain ALU/flow
/// firmware and firmware that enables timers, UART, and interrupts.
#[test]
fn random_firmware_differential() {
    for (seed, periph) in [
        (0x1234_5678, false),
        (0x0bad_cafe, false),
        (0xdead_beef, true),
        (0x00c0_ffee, true),
        (0x1357_9bdf, true),
    ] {
        let rom = random_firmware(seed, 40, periph);
        let nop = |_: usize, _: &mut Cpu| {};
        let base = run_variant(&rom, false, Drive::Step, 997, 40, nop);
        let cached_step = run_variant(&rom, true, Drive::Step, 997, 40, nop);
        let cached_batch = run_variant(&rom, true, Drive::Batch, 997, 40, nop);
        let cached_chunks = run_variant(&rom, true, Drive::Chunks(313), 997, 40, nop);
        let uncached_chunks = run_variant(&rom, false, Drive::Chunks(71), 997, 40, nop);
        assert_identical(&format!("seed {seed:#x} cached-step"), &base, &cached_step);
        assert_identical(
            &format!("seed {seed:#x} cached-batch"),
            &base,
            &cached_batch,
        );
        assert_identical(
            &format!("seed {seed:#x} cached-chunks"),
            &base,
            &cached_chunks,
        );
        assert_identical(
            &format!("seed {seed:#x} uncached-chunks"),
            &base,
            &uncached_chunks,
        );
        assert!(
            cached_step.hits > 0 && cached_step.misses > 0,
            "seed {seed:#x}: cache never engaged (hits={}, misses={})",
            cached_step.hits,
            cached_step.misses
        );
        assert_eq!(base.hits, 0, "uncached run must not touch the cache");
    }
}

/// Satellite: INT0/INT1 latency. The pins are raised at a sampling mark
/// where the cached CPU sits mid-way through a cached block; the
/// interrupt must be taken at the identical cycle in every variant
/// (pinned by checkpoint equality at every subsequent mark, which
/// includes the cycle counter, PC, and the ISR hit counters).
#[test]
fn external_interrupt_latency_identical_mid_block() {
    let rom = assemble(
        "    ljmp main\n\
         org 0x0003\n    inc 0x72\n    reti\n\
         org 0x0013\n    inc 0x73\n    reti\n\
         org 0x0040\n\
         main:\n    orl ie, #0x85\n\
         loop:\n    mov a, #1\n    add a, #2\n    mov r0, a\n    inc 0x30\n    djnz r0, loop\n    sjmp loop\n",
    )
    .unwrap();
    // Pulse INT0 at mark 5 (drop it at mark 8), INT1 at mark 11 (drop at 13).
    // An odd sample spacing lands the marks mid-block.
    let pins = |mark: usize, cpu: &mut Cpu| match mark {
        5 => cpu.set_int_pins(true, false),
        8 | 13 => cpu.set_int_pins(false, false),
        11 => cpu.set_int_pins(false, true),
        _ => {}
    };
    let base = run_variant(&rom, false, Drive::Step, 13, 40, pins);
    let cached_step = run_variant(&rom, true, Drive::Step, 13, 40, pins);
    let cached_chunk = run_variant(&rom, true, Drive::Chunks(5), 13, 40, pins);
    let cached_batch = run_variant(&rom, true, Drive::Batch, 13, 40, pins);
    assert_identical("int cached-step", &base, &cached_step);
    assert_identical("int cached-chunk", &base, &cached_chunk);
    assert_identical("int cached-batch", &base, &cached_batch);

    // Both ISRs actually ran (the latency comparison is not vacuous).
    let mut probe = Cpu::new();
    probe.load_code(&rom);
    let mut bus = RecordingBus::new();
    for mark in 0..40usize {
        probe.run_cycles(13 * (mark as u64 + 1) - probe.cycles(), &mut bus);
        pins(mark, &mut probe);
    }
    assert!(probe.iram(0x72) > 0, "INT0 ISR never ran");
    assert!(probe.iram(0x73) > 0, "INT1 ISR never ran");
    assert!(probe.xlate_hits() > 0, "cache never engaged");
}

/// Satellite: UART RX interrupt latency. A byte is injected at a mark;
/// the serial ISR must fire at the identical cycle cached vs uncached,
/// and the received byte must land in IRAM identically.
#[test]
fn uart_interrupt_latency_identical() {
    let rom = assemble(
        "    ljmp main\n\
         org 0x0023\n    clr ri\n    clr ti\n    push acc\n    mov a, sbuf\n    mov 0x71, a\n    pop acc\n    reti\n\
         org 0x0040\n\
         main:\n    mov scon, #0x50\n    orl ie, #0x90\n\
         loop:\n    inc 0x30\n    mov r1, #4\n\
         spin:\n    djnz r1, spin\n    sjmp loop\n",
    )
    .unwrap();
    let inject = |mark: usize, cpu: &mut Cpu| {
        if mark == 3 {
            cpu.uart_inject_rx(0x5a);
        }
    };
    let base = run_variant(&rom, false, Drive::Step, 251, 30, inject);
    let cached_step = run_variant(&rom, true, Drive::Step, 251, 30, inject);
    let cached_batch = run_variant(&rom, true, Drive::Batch, 251, 30, inject);
    assert_identical("uart cached-step", &base, &cached_step);
    assert_identical("uart cached-batch", &base, &cached_batch);

    let mut probe = Cpu::new();
    probe.load_code(&rom);
    let mut bus = RecordingBus::new();
    for mark in 0..30usize {
        probe.run_cycles(251 * (mark as u64 + 1) - probe.cycles(), &mut bus);
        inject(mark, &mut probe);
    }
    assert_eq!(probe.iram(0x71), 0x5a, "serial ISR never captured the byte");
}

/// Satellite: self-modifying code. A `code_write` (JTAG-style patch)
/// into a hot cached block invalidates it; the next execution
/// re-decodes (miss counter grows) and the patched run stays
/// checkpoint- and trace-identical to an uncached twin patched at the
/// same instruction boundary.
#[test]
fn code_write_invalidates_and_stays_identical() {
    let rom = assemble(
        "start:\n    mov a, #1\n    add a, #2\n    mov r0, a\n    movx @r0, a\n    djnz r0, start\n    sjmp start\n",
    )
    .unwrap();
    // The immediate of `add a, #2` is the byte at address 3.
    assert_eq!(rom[2], 0x24, "opcode layout changed; update the patch site");
    let patch = |mark: usize, cpu: &mut Cpu| {
        if mark == 10 {
            cpu.code_write(3, 5);
        }
    };
    let base = run_variant(&rom, false, Drive::Step, 101, 25, patch);
    let cached_step = run_variant(&rom, true, Drive::Step, 101, 25, patch);
    let cached_batch = run_variant(&rom, true, Drive::Batch, 101, 25, patch);
    assert_identical("smc cached-step", &base, &cached_step);
    assert_identical("smc cached-batch", &base, &cached_batch);

    // The patch really went through the invalidate/re-decode path.
    let mut probe = Cpu::new();
    probe.load_code(&rom);
    let mut bus = RecordingBus::new();
    probe.run_cycles(1_000, &mut bus);
    let warm_misses = probe.xlate_misses();
    assert!(probe.xlate_hits() > 0, "block never replayed while warm");
    assert_eq!(probe.xlate_invalidations(), 0);
    probe.code_write(3, 5);
    assert!(
        probe.xlate_invalidations() > 0,
        "code_write into a cached block must invalidate"
    );
    probe.run_cycles(1_000, &mut bus);
    assert!(
        probe.xlate_misses() > warm_misses,
        "patched block was not re-decoded"
    );
}

/// A write to code memory *outside* any cached block must not flush
/// the cache (the span check keeps hot blocks alive).
#[test]
fn code_write_outside_cached_span_keeps_blocks() {
    let rom = assemble("start:\n    mov a, #1\n    djnz r0, start\n    sjmp start\n").unwrap();
    let mut cpu = Cpu::new();
    // Give the image some slack so address 0x200 is writable.
    let mut image = rom;
    image.resize(0x400, 0);
    cpu.load_code(&image);
    let mut bus = RecordingBus::new();
    cpu.run_cycles(500, &mut bus);
    let blocks = cpu.xlate_cached_blocks();
    assert!(blocks > 0);
    cpu.code_write(0x200, 0xab);
    assert_eq!(
        cpu.xlate_invalidations(),
        0,
        "unrelated write flushed the cache"
    );
    assert_eq!(cpu.xlate_cached_blocks(), blocks);
}
