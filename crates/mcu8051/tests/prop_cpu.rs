//! Property-based tests of the 8051 core: ALU flags against an independent
//! reference model over random operands, stack round trips, and
//! assembler↔interpreter agreement for random immediates.

use ascp_mcu8051::asm::assemble;
use ascp_mcu8051::cpu::{psw, sfr, Cpu, NullBus};
use proptest::prelude::*;

/// Independent reference for ADD/ADDC flags (textbook definitions).
fn ref_add(a: u8, b: u8, carry_in: bool) -> (u8, bool, bool, bool) {
    let c = u16::from(carry_in);
    let sum = a as u16 + b as u16 + c;
    let cy = sum > 0xff;
    let ac = (a & 0x0f) as u16 + (b & 0x0f) as u16 + c > 0x0f;
    let signed = (a as i8 as i16) + (b as i8 as i16) + c as i16;
    let ov = !(-128..=127).contains(&signed);
    (sum as u8, cy, ac, ov)
}

fn ref_subb(a: u8, b: u8, borrow_in: bool) -> (u8, bool, bool, bool) {
    let c = i16::from(borrow_in);
    let diff = a as i16 - b as i16 - c;
    let cy = diff < 0;
    let ac = (a & 0x0f) as i16 - (b & 0x0f) as i16 - c < 0;
    let signed = (a as i8 as i16) - (b as i8 as i16) - c;
    let ov = !(-128..=127).contains(&signed);
    (diff as u8, cy, ac, ov)
}

fn run_alu(op: &str, a: u8, b: u8, carry: bool) -> (u8, bool, bool, bool) {
    let src = format!(
        "{}\nmov a, #{a}\n{op} a, #{b}\nhalt: sjmp halt\n",
        if carry { "setb c" } else { "clr c" }
    );
    let mut cpu = Cpu::new();
    cpu.load_code(&assemble(&src).expect("assembles"));
    let mut bus = NullBus;
    for _ in 0..3 {
        cpu.step(&mut bus);
    }
    let flags = cpu.sfr(sfr::PSW);
    (
        cpu.acc(),
        flags & psw::CY != 0,
        flags & psw::AC != 0,
        flags & psw::OV != 0,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_matches_reference(a in any::<u8>(), b in any::<u8>()) {
        let (r, cy, ac, ov) = run_alu("add", a, b, false);
        let (er, ecy, eac, eov) = ref_add(a, b, false);
        prop_assert_eq!((r, cy, ac, ov), (er, ecy, eac, eov), "ADD {:#x}+{:#x}", a, b);
    }

    #[test]
    fn addc_matches_reference(a in any::<u8>(), b in any::<u8>(), c in any::<bool>()) {
        let (r, cy, ac, ov) = run_alu("addc", a, b, c);
        let (er, ecy, eac, eov) = ref_add(a, b, c);
        prop_assert_eq!((r, cy, ac, ov), (er, ecy, eac, eov), "ADDC {:#x}+{:#x}+{}", a, b, c);
    }

    #[test]
    fn subb_matches_reference(a in any::<u8>(), b in any::<u8>(), c in any::<bool>()) {
        let (r, cy, ac, ov) = run_alu("subb", a, b, c);
        let (er, ecy, eac, eov) = ref_subb(a, b, c);
        prop_assert_eq!((r, cy, ac, ov), (er, ecy, eac, eov), "SUBB {:#x}-{:#x}-{}", a, b, c);
    }

    #[test]
    fn mul_matches_u16_product(a in any::<u8>(), b in any::<u8>()) {
        let src = format!("mov a, #{a}\nmov b, #{b}\nmul ab\nhalt: sjmp halt\n");
        let mut cpu = Cpu::new();
        cpu.load_code(&assemble(&src).expect("assembles"));
        let mut bus = NullBus;
        for _ in 0..3 {
            cpu.step(&mut bus);
        }
        let p = a as u16 * b as u16;
        prop_assert_eq!(cpu.acc(), p as u8);
        prop_assert_eq!(cpu.sfr(sfr::B), (p >> 8) as u8);
        prop_assert_eq!(cpu.sfr(sfr::PSW) & psw::OV != 0, p > 0xff);
    }

    #[test]
    fn div_matches_integer_division(a in any::<u8>(), b in 1u8..) {
        let src = format!("mov a, #{a}\nmov b, #{b}\ndiv ab\nhalt: sjmp halt\n");
        let mut cpu = Cpu::new();
        cpu.load_code(&assemble(&src).expect("assembles"));
        let mut bus = NullBus;
        for _ in 0..3 {
            cpu.step(&mut bus);
        }
        prop_assert_eq!(cpu.acc(), a / b);
        prop_assert_eq!(cpu.sfr(sfr::B), a % b);
    }

    #[test]
    fn immediate_loads_round_trip(v in any::<u8>(), reg in 0u8..8) {
        let src = format!("mov r{reg}, #{v}\nmov a, r{reg}\nhalt: sjmp halt\n");
        let mut cpu = Cpu::new();
        cpu.load_code(&assemble(&src).expect("assembles"));
        let mut bus = NullBus;
        for _ in 0..2 {
            cpu.step(&mut bus);
        }
        prop_assert_eq!(cpu.acc(), v);
    }

    #[test]
    fn push_pop_round_trips(values in proptest::collection::vec(any::<u8>(), 1..16)) {
        // Push all values, pop them back in reverse into IRAM 0x40...
        let mut src = String::new();
        for v in &values {
            src.push_str(&format!("mov a, #{v}\npush acc\n"));
        }
        for i in 0..values.len() {
            src.push_str(&format!("pop {}\n", 0x40 + i));
        }
        src.push_str("halt: sjmp halt\n");
        let mut cpu = Cpu::new();
        cpu.load_code(&assemble(&src).expect("assembles"));
        let mut bus = NullBus;
        for _ in 0..(values.len() * 3 + 2) {
            cpu.step(&mut bus);
        }
        for (i, v) in values.iter().rev().enumerate() {
            prop_assert_eq!(cpu.iram(0x40 + i as u8), *v, "pop {}", i);
        }
        // Stack pointer restored.
        prop_assert_eq!(cpu.sfr(sfr::SP), 0x07);
    }

    #[test]
    fn swap_rl_rr_identities(v in any::<u8>()) {
        let src = format!("mov a, #{v}\nswap a\nswap a\nrl a\nrr a\nhalt: sjmp halt\n");
        let mut cpu = Cpu::new();
        cpu.load_code(&assemble(&src).expect("assembles"));
        let mut bus = NullBus;
        for _ in 0..5 {
            cpu.step(&mut bus);
        }
        prop_assert_eq!(cpu.acc(), v);
    }

    #[test]
    fn djnz_counts_exactly(n in 1u8..=255) {
        let src = format!(
            "mov r2, #{n}\nmov r3, #0\nloop: inc r3\ndjnz r2, loop\nhalt: sjmp halt\n"
        );
        let mut cpu = Cpu::new();
        cpu.load_code(&assemble(&src).expect("assembles"));
        let mut bus = NullBus;
        for _ in 0..(n as usize * 2 + 4) {
            cpu.step(&mut bus);
        }
        prop_assert_eq!(cpu.iram(3), n);
    }

    #[test]
    fn xdata_round_trips(addr in any::<u16>(), v in any::<u8>()) {
        use ascp_mcu8051::periph::SystemBus;
        let src = format!(
            "mov dptr, #{addr}\nmov a, #{v}\nmovx @dptr, a\nclr a\nmovx a, @dptr\nhalt: sjmp halt\n"
        );
        let mut cpu = Cpu::new();
        cpu.load_code(&assemble(&src).expect("assembles"));
        let mut bus = SystemBus::new();
        for _ in 0..5 {
            cpu.step(&mut bus);
        }
        prop_assert_eq!(cpu.acc(), v);
    }
}

mod disasm_round_trip {
    use ascp_mcu8051::asm::assemble;
    use ascp_mcu8051::disasm::disassemble;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Any byte soup, disassembled and re-assembled, must reproduce the
        /// exact original bytes (the two tools agree on every encoding).
        #[test]
        fn disassemble_reassemble_is_identity(code in proptest::collection::vec(any::<u8>(), 1..64)) {
            let insts = disassemble(&code, 0, code.len() as u16);
            // Rebuild source; pad any trailing truncated instruction
            // (bytes past the image end decode as zero operands).
            let mut src = String::new();
            let mut covered = 0usize;
            for i in &insts {
                src.push_str(&i.text);
                src.push('\n');
                covered = i.address as usize + i.bytes.len();
            }
            let rebuilt = assemble(&src).expect("canonical text must reassemble");
            let mut expect = code.clone();
            expect.resize(covered, 0); // decoder zero-fills truncated tails
            prop_assert_eq!(&rebuilt, &expect,
                "source:\n{}", src);
        }
    }
}
