//! 8051 instruction-set simulator.
//!
//! The platform's programmable section is the Oregano MC8051 core (paper
//! §4.2, ref \[9\]) — a classic 8051. This interpreter implements the full
//! instruction set (all 255 defined opcodes), the register banks,
//! bit-addressable space, stack, PSW flags, both timers, the serial port,
//! and the five-source interrupt system, with standard 12-clock machine
//! cycle counts — everything monitoring/communication firmware can observe.
//!
//! External hardware (the bridge to the 16-bit peripheral bus, the cache
//! controller, XDATA-mapped devices) attaches through the [`ExternalBus`]
//! trait passed to [`Cpu::step`].

use ascp_sim::noise::Rng64;
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};
use std::collections::VecDeque;

/// SFR addresses used by the core.
pub mod sfr {
    /// Port 0 latch.
    pub const P0: u8 = 0x80;
    /// Stack pointer.
    pub const SP: u8 = 0x81;
    /// Data pointer low byte.
    pub const DPL: u8 = 0x82;
    /// Data pointer high byte.
    pub const DPH: u8 = 0x83;
    /// Power control (SMOD in bit 7).
    pub const PCON: u8 = 0x87;
    /// Timer control.
    pub const TCON: u8 = 0x88;
    /// Timer mode.
    pub const TMOD: u8 = 0x89;
    /// Timer 0 low byte.
    pub const TL0: u8 = 0x8a;
    /// Timer 1 low byte.
    pub const TL1: u8 = 0x8b;
    /// Timer 0 high byte.
    pub const TH0: u8 = 0x8c;
    /// Timer 1 high byte.
    pub const TH1: u8 = 0x8d;
    /// Port 1 latch.
    pub const P1: u8 = 0x90;
    /// Serial control.
    pub const SCON: u8 = 0x98;
    /// Serial buffer.
    pub const SBUF: u8 = 0x99;
    /// Port 2 latch.
    pub const P2: u8 = 0xa0;
    /// Interrupt enable.
    pub const IE: u8 = 0xa8;
    /// Port 3 latch.
    pub const P3: u8 = 0xb0;
    /// Interrupt priority.
    pub const IP: u8 = 0xb8;
    /// Program status word.
    pub const PSW: u8 = 0xd0;
    /// Accumulator.
    pub const ACC: u8 = 0xe0;
    /// B register.
    pub const B: u8 = 0xf0;
}

/// PSW flag bits.
pub mod psw {
    /// Carry.
    pub const CY: u8 = 0x80;
    /// Auxiliary carry (BCD).
    pub const AC: u8 = 0x40;
    /// General-purpose flag 0.
    pub const F0: u8 = 0x20;
    /// Register-bank select bit 1.
    pub const RS1: u8 = 0x10;
    /// Register-bank select bit 0.
    pub const RS0: u8 = 0x08;
    /// Overflow.
    pub const OV: u8 = 0x04;
    /// Parity of ACC (hardware-maintained).
    pub const P: u8 = 0x01;
}

/// External hardware visible to the CPU: non-core SFRs (the paper's cache
/// controller and UART sit on the 8-bit SFR bus; SPI/timer/watchdog/SRAM
/// behind the bridge) and the XDATA space.
pub trait ExternalBus {
    /// Reads an SFR the core does not implement; `None` leaves 0xFF.
    fn sfr_read(&mut self, addr: u8) -> Option<u8>;

    /// Writes an SFR the core does not implement; return `true` if claimed.
    fn sfr_write(&mut self, addr: u8, value: u8) -> bool;

    /// MOVX read.
    fn xdata_read(&mut self, addr: u16) -> u8;

    /// MOVX write.
    fn xdata_write(&mut self, addr: u16, value: u8);
}

/// A bus with nothing attached (reads float to 0xFF).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullBus;

impl ExternalBus for NullBus {
    fn sfr_read(&mut self, _addr: u8) -> Option<u8> {
        None
    }
    fn sfr_write(&mut self, _addr: u8, _value: u8) -> bool {
        false
    }
    fn xdata_read(&mut self, _addr: u16) -> u8 {
        0xff
    }
    fn xdata_write(&mut self, _addr: u16, _value: u8) {}
}

/// Interrupt sources in priority-vector order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IntSource {
    Ext0,
    Timer0,
    Ext1,
    Timer1,
    Serial,
}

impl IntSource {
    fn vector(self) -> u16 {
        match self {
            Self::Ext0 => 0x0003,
            Self::Timer0 => 0x000b,
            Self::Ext1 => 0x0013,
            Self::Timer1 => 0x001b,
            Self::Serial => 0x0023,
        }
    }
    fn enable_mask(self) -> u8 {
        match self {
            Self::Ext0 => 0x01,
            Self::Timer0 => 0x02,
            Self::Ext1 => 0x04,
            Self::Timer1 => 0x08,
            Self::Serial => 0x10,
        }
    }

    /// Stable numeric code for serialization.
    fn code(self) -> u8 {
        match self {
            Self::Ext0 => 0,
            Self::Timer0 => 1,
            Self::Ext1 => 2,
            Self::Timer1 => 3,
            Self::Serial => 4,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => Self::Ext0,
            1 => Self::Timer0,
            2 => Self::Ext1,
            3 => Self::Timer1,
            4 => Self::Serial,
            _ => return None,
        })
    }
}

/// The 8051 core.
#[derive(Debug, Clone)]
pub struct Cpu {
    pc: u16,
    /// Internal RAM: 0x00–0x7F direct/indirect, 0x80–0xFF indirect only.
    iram: [u8; 256],
    /// SFR space 0x80–0xFF (index = addr − 0x80).
    sfrs: [u8; 128],
    code: Vec<u8>,
    cycles: u64,
    /// Instructions retired (telemetry).
    instructions: u64,
    /// Bytes ever written to SBUF for transmit (monotonic; `uart_take_tx`
    /// drains the queue but not this counter).
    uart_tx_total: u64,
    /// Machine cycles spent in the current UART transmission, if any.
    uart_tx_countdown: Option<u32>,
    /// Bytes the firmware has transmitted (host-visible).
    uart_tx: VecDeque<u8>,
    /// Bytes waiting to be received (host-injected).
    uart_rx: VecDeque<u8>,
    /// Machine cycles per UART byte (derived from a nominal baud).
    uart_cycles_per_byte: u32,
    /// Cycle count at which the next RX byte is loaded.
    uart_rx_countdown: Option<u32>,
    /// Interrupt currently in service, with its priority (0/1).
    in_service: Vec<(IntSource, bool)>,
    /// External interrupt input pins.
    int0_pin: bool,
    int1_pin: bool,
    halted: bool,
    /// Injected latch-up: the core burns cycles without fetching, so only
    /// the (external) watchdog can recover it. Cleared by reset.
    hung: bool,
    /// Injected UART line fault: per-byte corruption probability and the
    /// deterministic bit-flip generator.
    uart_fault: Option<(f64, Rng64)>,
    /// Bytes the far-end framing/parity check flagged as corrupted
    /// (monotonic; models the receiving ECU's line-error counter, so a
    /// CPU reset does not clear it).
    uart_line_errors: u64,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// Creates a reset CPU with empty code memory.
    #[must_use]
    pub fn new() -> Self {
        let mut cpu = Self {
            pc: 0,
            iram: [0; 256],
            sfrs: [0; 128],
            code: Vec::new(),
            cycles: 0,
            instructions: 0,
            uart_tx_total: 0,
            uart_tx_countdown: None,
            uart_tx: VecDeque::new(),
            uart_rx: VecDeque::new(),
            uart_cycles_per_byte: 96, // ~19200 baud at 20 MHz / 12
            uart_rx_countdown: None,
            in_service: Vec::new(),
            int0_pin: false,
            int1_pin: false,
            halted: false,
            hung: false,
            uart_fault: None,
            uart_line_errors: 0,
        };
        cpu.reset();
        cpu
    }

    /// Loads code memory (ROM image) and resets.
    ///
    /// # Panics
    ///
    /// Panics if the image exceeds 64 KiB.
    pub fn load_code(&mut self, image: &[u8]) {
        assert!(image.len() <= 0x1_0000, "code image exceeds 64 KiB");
        self.code = image.to_vec();
        self.reset();
    }

    /// Writes one byte of code memory, growing it if needed — the cache
    /// controller's program-download path ("newer software versions could
    /// be downloaded and tested", paper §4.2).
    pub fn code_write(&mut self, addr: u16, value: u8) {
        let idx = addr as usize;
        if self.code.len() <= idx {
            self.code.resize(idx + 1, 0);
        }
        self.code[idx] = value;
    }

    /// Hardware reset: PC = 0, SP = 7, ports high, everything else zero.
    pub fn reset(&mut self) {
        self.pc = 0;
        self.iram = [0; 256];
        self.sfrs = [0; 128];
        self.sfr_store(sfr::SP, 0x07);
        self.sfr_store(sfr::P0, 0xff);
        self.sfr_store(sfr::P1, 0xff);
        self.sfr_store(sfr::P2, 0xff);
        self.sfr_store(sfr::P3, 0xff);
        self.cycles = 0;
        self.instructions = 0;
        self.uart_tx_total = 0;
        self.uart_tx_countdown = None;
        self.uart_tx.clear();
        self.uart_rx.clear();
        self.uart_rx_countdown = None;
        self.in_service.clear();
        self.halted = false;
        // A hardware reset releases an injected latch-up; the platform
        // re-asserts it while the underlying fault stays active. The UART
        // line fault and error count live on the harness side and survive.
        self.hung = false;
    }

    /// Program counter.
    #[must_use]
    pub fn pc(&self) -> u16 {
        self.pc
    }

    /// Total machine cycles executed.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired since reset.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Total bytes the firmware has queued for UART transmit since reset
    /// (monotonic — unaffected by [`Cpu::uart_take_tx`] draining the queue).
    #[must_use]
    pub fn uart_tx_total(&self) -> u64 {
        self.uart_tx_total
    }

    /// `true` after executing the idle pseudo-halt (`SJMP $` detection is
    /// not used; halted means a `MOV PCON` power-down, bit 1).
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Accumulator value.
    #[must_use]
    pub fn acc(&self) -> u8 {
        self.sfr_load(sfr::ACC)
    }

    /// Direct-reads internal RAM (test/monitor access).
    #[must_use]
    pub fn iram(&self, addr: u8) -> u8 {
        self.iram[addr as usize]
    }

    /// Direct-writes internal RAM (test setup).
    pub fn set_iram(&mut self, addr: u8, value: u8) {
        self.iram[addr as usize] = value;
    }

    /// Reads an SFR as the firmware would (no external bus consulted).
    #[must_use]
    pub fn sfr(&self, addr: u8) -> u8 {
        self.sfr_load(addr)
    }

    /// Host-side write of an SFR (test setup).
    pub fn set_sfr(&mut self, addr: u8, value: u8) {
        self.sfr_store(addr, value);
    }

    /// Pops all bytes the firmware has written to the UART.
    pub fn uart_take_tx(&mut self) -> Vec<u8> {
        self.uart_tx.drain(..).collect()
    }

    /// Queues a byte for firmware reception (sets RI when delivered).
    pub fn uart_inject_rx(&mut self, byte: u8) {
        self.uart_rx.push_back(byte);
    }

    /// Number of RX bytes not yet delivered.
    #[must_use]
    pub fn uart_rx_pending(&self) -> usize {
        self.uart_rx.len()
    }

    /// Sets the external interrupt pins.
    pub fn set_int_pins(&mut self, int0: bool, int1: bool) {
        self.int0_pin = int0;
        self.int1_pin = int1;
    }

    /// Fault injection: latches (or releases) a CPU hang. A hung core
    /// consumes cycles without fetching instructions — the state a
    /// latch-up or runaway leaves — and does not kick the watchdog.
    pub fn set_hung(&mut self, hung: bool) {
        self.hung = hung;
    }

    /// `true` while an injected hang is latched.
    #[must_use]
    pub fn is_hung(&self) -> bool {
        self.hung
    }

    /// Fault injection: corrupts transmitted UART bytes with per-byte
    /// probability `rate`, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is in `[0, 1]`.
    pub fn set_uart_fault(&mut self, rate: f64, seed: u64) {
        assert!((0.0..=1.0).contains(&rate), "corruption rate {rate}");
        self.uart_fault = Some((rate, Rng64::new(seed)));
    }

    /// Removes an injected UART line fault.
    pub fn clear_uart_fault(&mut self) {
        self.uart_fault = None;
    }

    /// Transmitted bytes the receiving end flagged as corrupted
    /// (single-bit flips, always caught by the frame parity check).
    /// Monotonic across CPU resets.
    #[must_use]
    pub fn uart_line_errors(&self) -> u64 {
        self.uart_line_errors
    }

    /// Serializes the complete core state: PC, IRAM, SFRs, code memory
    /// (runtime-mutable through the program-download path), counters, UART
    /// queues and timing, the interrupt in-service stack, pins, and
    /// injected-fault state.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_u16(self.pc);
        w.put_u8_slice(&self.iram);
        w.put_u8_slice(&self.sfrs);
        w.put_u8_slice(&self.code);
        w.put_u64(self.cycles);
        w.put_u64(self.instructions);
        w.put_u64(self.uart_tx_total);
        w.put_opt_u32(self.uart_tx_countdown);
        w.put_u8_slice(self.uart_tx.iter().copied().collect::<Vec<u8>>().as_slice());
        w.put_u8_slice(self.uart_rx.iter().copied().collect::<Vec<u8>>().as_slice());
        w.put_u32(self.uart_cycles_per_byte);
        w.put_opt_u32(self.uart_rx_countdown);
        w.put_u32(self.in_service.len() as u32);
        for &(src, high) in &self.in_service {
            w.put_u8(src.code());
            w.put_bool(high);
        }
        w.put_bool(self.int0_pin);
        w.put_bool(self.int1_pin);
        w.put_bool(self.halted);
        w.put_bool(self.hung);
        match &self.uart_fault {
            Some((rate, rng)) => {
                w.put_bool(true);
                w.put_f64(*rate);
                rng.save_state(w);
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.uart_line_errors);
    }

    /// Restores state saved by [`Cpu::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] if the IRAM/SFR images have the
    /// wrong size, the code image exceeds 64 KiB, an interrupt-source code
    /// is unknown, or the fault rate is outside `[0, 1]`; propagates other
    /// [`SnapshotError`]s on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let pc = r.take_u16()?;
        let iram = r.take_u8_vec()?;
        let sfrs = r.take_u8_vec()?;
        if iram.len() != 256 || sfrs.len() != 128 {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "CPU memory images {}B IRAM / {}B SFR (expected 256/128)",
                    iram.len(),
                    sfrs.len()
                ),
            });
        }
        let code = r.take_u8_vec()?;
        if code.len() > 0x1_0000 {
            return Err(SnapshotError::Corrupt {
                context: format!("CPU code image of {} bytes exceeds 64 KiB", code.len()),
            });
        }
        self.pc = pc;
        self.iram.copy_from_slice(&iram);
        self.sfrs.copy_from_slice(&sfrs);
        self.code = code;
        self.cycles = r.take_u64()?;
        self.instructions = r.take_u64()?;
        self.uart_tx_total = r.take_u64()?;
        self.uart_tx_countdown = r.take_opt_u32()?;
        self.uart_tx = r.take_u8_vec()?.into();
        self.uart_rx = r.take_u8_vec()?.into();
        self.uart_cycles_per_byte = r.take_u32()?;
        self.uart_rx_countdown = r.take_opt_u32()?;
        let n = r.take_u32()? as usize;
        let mut in_service = Vec::with_capacity(n.min(16));
        for _ in 0..n {
            let code = r.take_u8()?;
            let src = IntSource::from_code(code).ok_or_else(|| SnapshotError::Corrupt {
                context: format!("unknown interrupt source code {code}"),
            })?;
            in_service.push((src, r.take_bool()?));
        }
        self.in_service = in_service;
        self.int0_pin = r.take_bool()?;
        self.int1_pin = r.take_bool()?;
        self.halted = r.take_bool()?;
        self.hung = r.take_bool()?;
        self.uart_fault = if r.take_bool()? {
            let rate = r.take_f64()?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(SnapshotError::Corrupt {
                    context: format!("UART fault rate {rate} outside [0, 1]"),
                });
            }
            let mut rng = Rng64::new(1);
            rng.load_state(r)?;
            Some((rate, rng))
        } else {
            None
        };
        self.uart_line_errors = r.take_u64()?;
        Ok(())
    }

    // ---- SFR raw accessors (no side effects) ----

    fn sfr_load(&self, addr: u8) -> u8 {
        debug_assert!(addr >= 0x80);
        self.sfrs[(addr - 0x80) as usize]
    }

    fn sfr_store(&mut self, addr: u8, value: u8) {
        debug_assert!(addr >= 0x80);
        self.sfrs[(addr - 0x80) as usize] = value;
    }

    fn is_core_sfr(addr: u8) -> bool {
        matches!(
            addr,
            sfr::P0
                | sfr::SP
                | sfr::DPL
                | sfr::DPH
                | sfr::PCON
                | sfr::TCON
                | sfr::TMOD
                | sfr::TL0
                | sfr::TL1
                | sfr::TH0
                | sfr::TH1
                | sfr::P1
                | sfr::SCON
                | sfr::SBUF
                | sfr::P2
                | sfr::IE
                | sfr::P3
                | sfr::IP
                | sfr::PSW
                | sfr::ACC
                | sfr::B
        )
    }

    // ---- direct address space (operand access) ----

    fn direct_read(&mut self, addr: u8, bus: &mut dyn ExternalBus) -> u8 {
        if addr < 0x80 {
            self.iram[addr as usize]
        } else if Self::is_core_sfr(addr) {
            if addr == sfr::PSW {
                self.psw_with_parity()
            } else {
                self.sfr_load(addr)
            }
        } else {
            bus.sfr_read(addr).unwrap_or(0xff)
        }
    }

    fn direct_write(&mut self, addr: u8, value: u8, bus: &mut dyn ExternalBus) {
        if addr < 0x80 {
            self.iram[addr as usize] = value;
        } else if Self::is_core_sfr(addr) {
            if addr == sfr::SBUF {
                // Writing SBUF starts a transmission. An injected line
                // fault flips one bit on the wire; the far end's parity
                // check flags the frame (single-bit errors always detect).
                let mut wire = value;
                if let Some((rate, rng)) = &mut self.uart_fault {
                    if rng.next_f64() < *rate {
                        wire ^= 1 << (rng.next_u64() % 8);
                        self.uart_line_errors += 1;
                    }
                }
                self.uart_tx.push_back(wire);
                self.uart_tx_total += 1;
                self.uart_tx_countdown = Some(self.uart_cycles_per_byte);
            }
            if addr == sfr::PCON && value & 0x02 != 0 {
                self.halted = true;
            }
            self.sfr_store(addr, value);
        } else if !bus.sfr_write(addr, value) {
            // Unclaimed writes land in the local shadow so read-back works
            // for software flags parked on spare addresses.
            self.sfr_store(addr, value);
        }
    }

    fn indirect_read(&self, addr: u8) -> u8 {
        // Indirect access reaches upper IRAM, never SFRs.
        self.iram[addr as usize]
    }

    fn indirect_write(&mut self, addr: u8, value: u8) {
        self.iram[addr as usize] = value;
    }

    // ---- registers and flags ----

    fn bank_base(&self) -> u8 {
        (self.sfr_load(sfr::PSW) >> 3) & 0x03
    }

    fn reg_addr(&self, n: u8) -> u8 {
        self.bank_base() * 8 + n
    }

    fn reg(&self, n: u8) -> u8 {
        self.iram[self.reg_addr(n) as usize]
    }

    fn set_reg(&mut self, n: u8, value: u8) {
        let a = self.reg_addr(n);
        self.iram[a as usize] = value;
    }

    fn psw_with_parity(&self) -> u8 {
        let acc = self.sfr_load(sfr::ACC);
        let p = (acc.count_ones() & 1) as u8;
        (self.sfr_load(sfr::PSW) & !psw::P) | p
    }

    fn get_flag(&self, mask: u8) -> bool {
        self.sfr_load(sfr::PSW) & mask != 0
    }

    fn set_flag(&mut self, mask: u8, on: bool) {
        let v = self.sfr_load(sfr::PSW);
        self.sfr_store(sfr::PSW, if on { v | mask } else { v & !mask });
    }

    fn dptr(&self) -> u16 {
        u16::from_le_bytes([self.sfr_load(sfr::DPL), self.sfr_load(sfr::DPH)])
    }

    fn set_dptr(&mut self, v: u16) {
        let [lo, hi] = v.to_le_bytes();
        self.sfr_store(sfr::DPL, lo);
        self.sfr_store(sfr::DPH, hi);
    }

    // ---- bit space ----

    fn bit_read(&mut self, bit: u8, bus: &mut dyn ExternalBus) -> bool {
        if bit < 0x80 {
            let byte = 0x20 + bit / 8;
            self.iram[byte as usize] & (1 << (bit % 8)) != 0
        } else {
            let addr = bit & 0xf8;
            self.direct_read(addr, bus) & (1 << (bit % 8)) != 0
        }
    }

    fn bit_write(&mut self, bit: u8, on: bool, bus: &mut dyn ExternalBus) {
        let mask = 1u8 << (bit % 8);
        if bit < 0x80 {
            let byte = (0x20 + bit / 8) as usize;
            if on {
                self.iram[byte] |= mask;
            } else {
                self.iram[byte] &= !mask;
            }
        } else {
            let addr = bit & 0xf8;
            let v = self.direct_read(addr, bus);
            self.direct_write(addr, if on { v | mask } else { v & !mask }, bus);
        }
    }

    // ---- stack ----

    fn push(&mut self, value: u8) {
        let sp = self.sfr_load(sfr::SP).wrapping_add(1);
        self.sfr_store(sfr::SP, sp);
        self.iram[sp as usize] = value;
    }

    fn pop(&mut self) -> u8 {
        let sp = self.sfr_load(sfr::SP);
        let v = self.iram[sp as usize];
        self.sfr_store(sfr::SP, sp.wrapping_sub(1));
        v
    }

    fn push_pc(&mut self) {
        let [lo, hi] = self.pc.to_le_bytes();
        self.push(lo);
        self.push(hi);
    }

    // ---- code fetch ----

    fn fetch(&mut self) -> u8 {
        let b = self.code_at(self.pc);
        self.pc = self.pc.wrapping_add(1);
        b
    }

    fn code_at(&self, addr: u16) -> u8 {
        self.code.get(addr as usize).copied().unwrap_or(0)
    }

    fn fetch16(&mut self) -> u16 {
        let hi = self.fetch();
        let lo = self.fetch();
        u16::from_be_bytes([hi, lo])
    }

    fn rel_jump(&mut self, offset: u8) {
        self.pc = self.pc.wrapping_add(offset as i8 as u16);
    }

    // ---- ALU helpers ----

    fn add(&mut self, operand: u8, with_carry: bool) {
        let a = self.sfr_load(sfr::ACC);
        let c = u16::from(with_carry && self.get_flag(psw::CY));
        let sum = a as u16 + operand as u16 + c;
        let half = (a & 0x0f) as u16 + (operand & 0x0f) as u16 + c;
        let signed = (a as i8 as i16) + (operand as i8 as i16) + c as i16;
        self.set_flag(psw::CY, sum > 0xff);
        self.set_flag(psw::AC, half > 0x0f);
        self.set_flag(psw::OV, !(-128..=127).contains(&signed));
        self.sfr_store(sfr::ACC, sum as u8);
    }

    fn subb(&mut self, operand: u8) {
        let a = self.sfr_load(sfr::ACC);
        let c = u16::from(self.get_flag(psw::CY));
        let diff = (a as i16) - (operand as i16) - c as i16;
        let half = (a & 0x0f) as i16 - (operand & 0x0f) as i16 - c as i16;
        let signed = (a as i8 as i16) - (operand as i8 as i16) - c as i16;
        self.set_flag(psw::CY, diff < 0);
        self.set_flag(psw::AC, half < 0);
        self.set_flag(psw::OV, !(-128..=127).contains(&signed));
        self.sfr_store(sfr::ACC, diff as u8);
    }

    fn cjne(&mut self, a: u8, b: u8, rel: u8) {
        self.set_flag(psw::CY, a < b);
        if a != b {
            self.rel_jump(rel);
        }
    }

    // ---- peripherals driven by elapsed cycles ----

    fn tick_timers(&mut self, machine_cycles: u32) {
        let tmod = self.sfr_load(sfr::TMOD);
        let tcon = self.sfr_load(sfr::TCON);
        // Timer 0 (TR0 = TCON.4).
        if tcon & 0x10 != 0 {
            self.tick_timer(0, tmod & 0x0f, machine_cycles);
        }
        // Timer 1 (TR1 = TCON.6).
        if tcon & 0x40 != 0 {
            self.tick_timer(1, (tmod >> 4) & 0x0f, machine_cycles);
        }
    }

    fn tick_timer(&mut self, which: u8, mode_bits: u8, machine_cycles: u32) {
        let (tl_a, th_a, tf_mask) = if which == 0 {
            (sfr::TL0, sfr::TH0, 0x20u8)
        } else {
            (sfr::TL1, sfr::TH1, 0x80u8)
        };
        // Gate/CT ignored (no external count inputs modelled).
        let mode = mode_bits & 0x03;
        let mut tl = self.sfr_load(tl_a) as u32;
        let mut th = self.sfr_load(th_a) as u32;
        let mut overflowed = false;
        match mode {
            0 => {
                // 13-bit: TL holds 5 bits.
                let mut count = (th << 5) | (tl & 0x1f);
                count += machine_cycles;
                if count > 0x1fff {
                    overflowed = true;
                    count &= 0x1fff;
                }
                th = count >> 5;
                tl = count & 0x1f;
            }
            1 => {
                let mut count = (th << 8) | tl;
                count += machine_cycles;
                if count > 0xffff {
                    overflowed = true;
                    count &= 0xffff;
                }
                th = count >> 8;
                tl = count & 0xff;
            }
            2 => {
                // 8-bit auto-reload from TH.
                let reload = th;
                let span = 256 - reload;
                let mut count = tl.wrapping_sub(reload) + machine_cycles;
                if count >= span {
                    overflowed = true;
                    count %= span.max(1);
                }
                tl = reload + count;
            }
            _ => {
                // Mode 3: treat as mode 1 for timer 0; timer 1 frozen.
                if which == 0 {
                    let mut count = (th << 8) | tl;
                    count += machine_cycles;
                    if count > 0xffff {
                        overflowed = true;
                        count &= 0xffff;
                    }
                    th = count >> 8;
                    tl = count & 0xff;
                }
            }
        }
        self.sfr_store(tl_a, tl as u8);
        self.sfr_store(th_a, th as u8);
        if overflowed {
            let tcon = self.sfr_load(sfr::TCON);
            self.sfr_store(sfr::TCON, tcon | tf_mask);
        }
    }

    fn tick_uart(&mut self, machine_cycles: u32) {
        // Transmit completion -> TI.
        if let Some(rem) = self.uart_tx_countdown {
            if rem <= machine_cycles {
                self.uart_tx_countdown = None;
                let scon = self.sfr_load(sfr::SCON);
                self.sfr_store(sfr::SCON, scon | 0x02); // TI
            } else {
                self.uart_tx_countdown = Some(rem - machine_cycles);
            }
        }
        // Receive delivery -> SBUF + RI (only when REN set and RI clear).
        let scon = self.sfr_load(sfr::SCON);
        if scon & 0x10 != 0 && scon & 0x01 == 0 && !self.uart_rx.is_empty() {
            match self.uart_rx_countdown {
                None => self.uart_rx_countdown = Some(self.uart_cycles_per_byte),
                Some(rem) if rem <= machine_cycles => {
                    self.uart_rx_countdown = None;
                    if let Some(byte) = self.uart_rx.pop_front() {
                        self.sfr_store(sfr::SBUF, byte);
                        let scon = self.sfr_load(sfr::SCON);
                        self.sfr_store(sfr::SCON, scon | 0x01); // RI
                    }
                }
                Some(rem) => self.uart_rx_countdown = Some(rem - machine_cycles),
            }
        }
        // External interrupt pins -> TCON IE0/IE1 (level-triggered model).
        let mut tcon = self.sfr_load(sfr::TCON);
        if self.int0_pin {
            tcon |= 0x02;
        }
        if self.int1_pin {
            tcon |= 0x08;
        }
        self.sfr_store(sfr::TCON, tcon);
    }

    fn pending_interrupt(&self) -> Option<(IntSource, bool)> {
        let ie = self.sfr_load(sfr::IE);
        if ie & 0x80 == 0 {
            return None; // EA clear
        }
        let ip = self.sfr_load(sfr::IP);
        let tcon = self.sfr_load(sfr::TCON);
        let scon = self.sfr_load(sfr::SCON);
        let candidates = [
            (IntSource::Ext0, tcon & 0x02 != 0),
            (IntSource::Timer0, tcon & 0x20 != 0),
            (IntSource::Ext1, tcon & 0x08 != 0),
            (IntSource::Timer1, tcon & 0x80 != 0),
            (IntSource::Serial, scon & 0x03 != 0),
        ];
        let active_high = self.in_service.iter().any(|&(_, high)| high);
        let active_any = !self.in_service.is_empty();
        // High priority first, then low, in vector order.
        for &want_high in &[true, false] {
            for &(src, flagged) in &candidates {
                if !flagged || ie & src.enable_mask() == 0 {
                    continue;
                }
                let is_high = ip & src.enable_mask() != 0;
                if is_high != want_high {
                    continue;
                }
                // A high-priority ISR blocks everything; a low-priority ISR
                // blocks other low-priority sources.
                if active_high || (active_any && !is_high) {
                    continue;
                }
                return Some((src, is_high));
            }
        }
        None
    }

    fn service_interrupt(&mut self, src: IntSource, high: bool) {
        // Clear the hardware-cleared flags (IE0/IE1/TF0/TF1); serial RI/TI
        // are cleared by software.
        let tcon = self.sfr_load(sfr::TCON);
        let cleared = match src {
            IntSource::Ext0 => tcon & !0x02,
            IntSource::Timer0 => tcon & !0x20,
            IntSource::Ext1 => tcon & !0x08,
            IntSource::Timer1 => tcon & !0x80,
            IntSource::Serial => tcon,
        };
        self.sfr_store(sfr::TCON, cleared);
        self.push_pc();
        self.pc = src.vector();
        self.in_service.push((src, high));
        self.cycles += 2;
    }

    /// Executes one instruction (servicing pending interrupts first);
    /// returns the machine cycles consumed.
    pub fn step(&mut self, bus: &mut dyn ExternalBus) -> u32 {
        if self.hung {
            // Latch-up: the clock runs but nothing fetches, no timers
            // tick, no watchdog kicks happen. Cycles still accumulate so
            // an external watchdog sees time passing.
            self.cycles += 1;
            return 1;
        }
        if self.halted {
            self.tick_timers(1);
            self.tick_uart(1);
            self.cycles += 1;
            return 1;
        }
        if let Some((src, high)) = self.pending_interrupt() {
            self.service_interrupt(src, high);
        }
        let op = self.fetch();
        let cycles = self.execute(op, bus);
        self.instructions += 1;
        self.cycles += cycles as u64;
        self.tick_timers(cycles);
        self.tick_uart(cycles);
        cycles
    }

    /// Runs until `cycles` machine cycles have elapsed (at least one step).
    pub fn run_cycles(&mut self, cycles: u64, bus: &mut dyn ExternalBus) -> u64 {
        let target = self.cycles + cycles;
        let mut executed = 0u64;
        while self.cycles < target {
            executed += u64::from(self.step(bus));
        }
        executed
    }

    #[allow(clippy::too_many_lines)]
    fn execute(&mut self, op: u8, bus: &mut dyn ExternalBus) -> u32 {
        match op {
            0x00 => 1, // NOP
            // AJMP / ACALL (page encoded in opcode bits 7..5)
            0x01 | 0x21 | 0x41 | 0x61 | 0x81 | 0xa1 | 0xc1 | 0xe1 => {
                let lo = self.fetch();
                let page = (op >> 5) as u16;
                self.pc = (self.pc & 0xf800) | (page << 8) | lo as u16;
                2
            }
            0x11 | 0x31 | 0x51 | 0x71 | 0x91 | 0xb1 | 0xd1 | 0xf1 => {
                let lo = self.fetch();
                let page = (op >> 5) as u16;
                self.push_pc();
                self.pc = (self.pc & 0xf800) | (page << 8) | lo as u16;
                2
            }
            0x02 => {
                self.pc = self.fetch16();
                2
            } // LJMP
            0x12 => {
                let target = self.fetch16();
                self.push_pc();
                self.pc = target;
                2
            } // LCALL
            0x03 => {
                let a = self.sfr_load(sfr::ACC);
                self.sfr_store(sfr::ACC, a.rotate_right(1));
                1
            } // RR A
            0x13 => {
                let a = self.sfr_load(sfr::ACC);
                let c = self.get_flag(psw::CY);
                self.set_flag(psw::CY, a & 1 != 0);
                self.sfr_store(sfr::ACC, (a >> 1) | ((c as u8) << 7));
                1
            } // RRC A
            0x23 => {
                let a = self.sfr_load(sfr::ACC);
                self.sfr_store(sfr::ACC, a.rotate_left(1));
                1
            } // RL A
            0x33 => {
                let a = self.sfr_load(sfr::ACC);
                let c = self.get_flag(psw::CY);
                self.set_flag(psw::CY, a & 0x80 != 0);
                self.sfr_store(sfr::ACC, (a << 1) | c as u8);
                1
            } // RLC A
            0x04 => {
                let a = self.sfr_load(sfr::ACC).wrapping_add(1);
                self.sfr_store(sfr::ACC, a);
                1
            } // INC A
            0x14 => {
                let a = self.sfr_load(sfr::ACC).wrapping_sub(1);
                self.sfr_store(sfr::ACC, a);
                1
            } // DEC A
            0x05 => {
                let d = self.fetch();
                let v = self.direct_read(d, bus).wrapping_add(1);
                self.direct_write(d, v, bus);
                1
            } // INC dir
            0x15 => {
                let d = self.fetch();
                let v = self.direct_read(d, bus).wrapping_sub(1);
                self.direct_write(d, v, bus);
                1
            } // DEC dir
            0x06 | 0x07 => {
                let a = self.reg(op & 1);
                let v = self.indirect_read(a).wrapping_add(1);
                self.indirect_write(a, v);
                1
            } // INC @Ri
            0x16 | 0x17 => {
                let a = self.reg(op & 1);
                let v = self.indirect_read(a).wrapping_sub(1);
                self.indirect_write(a, v);
                1
            } // DEC @Ri
            0x08..=0x0f => {
                let n = op & 7;
                let v = self.reg(n).wrapping_add(1);
                self.set_reg(n, v);
                1
            } // INC Rn
            0x18..=0x1f => {
                let n = op & 7;
                let v = self.reg(n).wrapping_sub(1);
                self.set_reg(n, v);
                1
            } // DEC Rn
            0xa3 => {
                self.set_dptr(self.dptr().wrapping_add(1));
                2
            } // INC DPTR
            0x10 => {
                let bit = self.fetch();
                let rel = self.fetch();
                if self.bit_read(bit, bus) {
                    self.bit_write(bit, false, bus);
                    self.rel_jump(rel);
                }
                2
            } // JBC
            0x20 => {
                let bit = self.fetch();
                let rel = self.fetch();
                if self.bit_read(bit, bus) {
                    self.rel_jump(rel);
                }
                2
            } // JB
            0x30 => {
                let bit = self.fetch();
                let rel = self.fetch();
                if !self.bit_read(bit, bus) {
                    self.rel_jump(rel);
                }
                2
            } // JNB
            0x40 => {
                let rel = self.fetch();
                if self.get_flag(psw::CY) {
                    self.rel_jump(rel);
                }
                2
            } // JC
            0x50 => {
                let rel = self.fetch();
                if !self.get_flag(psw::CY) {
                    self.rel_jump(rel);
                }
                2
            } // JNC
            0x60 => {
                let rel = self.fetch();
                if self.sfr_load(sfr::ACC) == 0 {
                    self.rel_jump(rel);
                }
                2
            } // JZ
            0x70 => {
                let rel = self.fetch();
                if self.sfr_load(sfr::ACC) != 0 {
                    self.rel_jump(rel);
                }
                2
            } // JNZ
            0x80 => {
                let rel = self.fetch();
                self.rel_jump(rel);
                2
            } // SJMP
            0x73 => {
                self.pc = self.dptr().wrapping_add(self.sfr_load(sfr::ACC) as u16);
                2
            } // JMP @A+DPTR
            0x22 => {
                let hi = self.pop();
                let lo = self.pop();
                self.pc = u16::from_le_bytes([lo, hi]);
                2
            } // RET
            0x32 => {
                let hi = self.pop();
                let lo = self.pop();
                self.pc = u16::from_le_bytes([lo, hi]);
                self.in_service.pop();
                2
            } // RETI
            // ADD / ADDC / SUBB
            0x24 => {
                let v = self.fetch();
                self.add(v, false);
                1
            }
            0x25 => {
                let d = self.fetch();
                let v = self.direct_read(d, bus);
                self.add(v, false);
                1
            }
            0x26 | 0x27 => {
                let v = self.indirect_read(self.reg(op & 1));
                self.add(v, false);
                1
            }
            0x28..=0x2f => {
                let v = self.reg(op & 7);
                self.add(v, false);
                1
            }
            0x34 => {
                let v = self.fetch();
                self.add(v, true);
                1
            }
            0x35 => {
                let d = self.fetch();
                let v = self.direct_read(d, bus);
                self.add(v, true);
                1
            }
            0x36 | 0x37 => {
                let v = self.indirect_read(self.reg(op & 1));
                self.add(v, true);
                1
            }
            0x38..=0x3f => {
                let v = self.reg(op & 7);
                self.add(v, true);
                1
            }
            0x94 => {
                let v = self.fetch();
                self.subb(v);
                1
            }
            0x95 => {
                let d = self.fetch();
                let v = self.direct_read(d, bus);
                self.subb(v);
                1
            }
            0x96 | 0x97 => {
                let v = self.indirect_read(self.reg(op & 1));
                self.subb(v);
                1
            }
            0x98..=0x9f => {
                let v = self.reg(op & 7);
                self.subb(v);
                1
            }
            // Logic: ORL / ANL / XRL
            0x42 | 0x52 | 0x62 => {
                let d = self.fetch();
                let v = self.direct_read(d, bus);
                let a = self.sfr_load(sfr::ACC);
                let r = match op {
                    0x42 => v | a,
                    0x52 => v & a,
                    _ => v ^ a,
                };
                self.direct_write(d, r, bus);
                1
            }
            0x43 | 0x53 | 0x63 => {
                let d = self.fetch();
                let imm = self.fetch();
                let v = self.direct_read(d, bus);
                let r = match op {
                    0x43 => v | imm,
                    0x53 => v & imm,
                    _ => v ^ imm,
                };
                self.direct_write(d, r, bus);
                2
            }
            0x44 | 0x54 | 0x64 => {
                let imm = self.fetch();
                let a = self.sfr_load(sfr::ACC);
                let r = match op {
                    0x44 => a | imm,
                    0x54 => a & imm,
                    _ => a ^ imm,
                };
                self.sfr_store(sfr::ACC, r);
                1
            }
            0x45 | 0x55 | 0x65 => {
                let d = self.fetch();
                let v = self.direct_read(d, bus);
                let a = self.sfr_load(sfr::ACC);
                let r = match op {
                    0x45 => a | v,
                    0x55 => a & v,
                    _ => a ^ v,
                };
                self.sfr_store(sfr::ACC, r);
                1
            }
            0x46 | 0x47 | 0x56 | 0x57 | 0x66 | 0x67 => {
                let v = self.indirect_read(self.reg(op & 1));
                let a = self.sfr_load(sfr::ACC);
                let r = match op & 0xf0 {
                    0x40 => a | v,
                    0x50 => a & v,
                    _ => a ^ v,
                };
                self.sfr_store(sfr::ACC, r);
                1
            }
            0x48..=0x4f | 0x58..=0x5f | 0x68..=0x6f => {
                let v = self.reg(op & 7);
                let a = self.sfr_load(sfr::ACC);
                let r = match op & 0xf0 {
                    0x40 => a | v,
                    0x50 => a & v,
                    _ => a ^ v,
                };
                self.sfr_store(sfr::ACC, r);
                1
            }
            // Carry-bit logic
            0x72 => {
                let bit = self.fetch();
                let v = self.bit_read(bit, bus);
                let c = self.get_flag(psw::CY);
                self.set_flag(psw::CY, c | v);
                2
            } // ORL C,bit
            0xa0 => {
                let bit = self.fetch();
                let v = self.bit_read(bit, bus);
                let c = self.get_flag(psw::CY);
                self.set_flag(psw::CY, c | !v);
                2
            } // ORL C,/bit
            0x82 => {
                let bit = self.fetch();
                let v = self.bit_read(bit, bus);
                let c = self.get_flag(psw::CY);
                self.set_flag(psw::CY, c & v);
                2
            } // ANL C,bit
            0xb0 => {
                let bit = self.fetch();
                let v = self.bit_read(bit, bus);
                let c = self.get_flag(psw::CY);
                self.set_flag(psw::CY, c & !v);
                2
            } // ANL C,/bit
            // MOV immediate / register forms
            0x74 => {
                let v = self.fetch();
                self.sfr_store(sfr::ACC, v);
                1
            }
            0x75 => {
                let d = self.fetch();
                let v = self.fetch();
                self.direct_write(d, v, bus);
                2
            }
            0x76 | 0x77 => {
                let v = self.fetch();
                self.indirect_write(self.reg(op & 1), v);
                1
            }
            0x78..=0x7f => {
                let v = self.fetch();
                self.set_reg(op & 7, v);
                1
            }
            0x85 => {
                // MOV dest,src is encoded src-first.
                let src = self.fetch();
                let dst = self.fetch();
                let v = self.direct_read(src, bus);
                self.direct_write(dst, v, bus);
                2
            }
            0x86 | 0x87 => {
                let d = self.fetch();
                let v = self.indirect_read(self.reg(op & 1));
                self.direct_write(d, v, bus);
                2
            }
            0x88..=0x8f => {
                let d = self.fetch();
                let v = self.reg(op & 7);
                self.direct_write(d, v, bus);
                2
            }
            0x90 => {
                let v = self.fetch16();
                self.set_dptr(v);
                2
            } // MOV DPTR,#
            0xa6 | 0xa7 => {
                let d = self.fetch();
                let v = self.direct_read(d, bus);
                self.indirect_write(self.reg(op & 1), v);
                2
            }
            0xa8..=0xaf => {
                let d = self.fetch();
                let v = self.direct_read(d, bus);
                self.set_reg(op & 7, v);
                2
            }
            0xe5 => {
                let d = self.fetch();
                let v = self.direct_read(d, bus);
                self.sfr_store(sfr::ACC, v);
                1
            }
            0xe6 | 0xe7 => {
                let v = self.indirect_read(self.reg(op & 1));
                self.sfr_store(sfr::ACC, v);
                1
            }
            0xe8..=0xef => {
                let v = self.reg(op & 7);
                self.sfr_store(sfr::ACC, v);
                1
            }
            0xf5 => {
                let d = self.fetch();
                let v = self.sfr_load(sfr::ACC);
                self.direct_write(d, v, bus);
                1
            }
            0xf6 | 0xf7 => {
                let v = self.sfr_load(sfr::ACC);
                self.indirect_write(self.reg(op & 1), v);
                1
            }
            0xf8..=0xff => {
                let v = self.sfr_load(sfr::ACC);
                self.set_reg(op & 7, v);
                1
            }
            // MOVC
            0x83 => {
                let a = self.sfr_load(sfr::ACC);
                let v = self.code_at(self.pc.wrapping_add(a as u16));
                self.sfr_store(sfr::ACC, v);
                2
            } // MOVC A,@A+PC
            0x93 => {
                let a = self.sfr_load(sfr::ACC);
                let v = self.code_at(self.dptr().wrapping_add(a as u16));
                self.sfr_store(sfr::ACC, v);
                2
            } // MOVC A,@A+DPTR
            // MOVX
            0xe0 => {
                let v = bus.xdata_read(self.dptr());
                self.sfr_store(sfr::ACC, v);
                2
            }
            0xe2 | 0xe3 => {
                let addr = u16::from_le_bytes([self.reg(op & 1), self.sfr_load(sfr::P2)]);
                let v = bus.xdata_read(addr);
                self.sfr_store(sfr::ACC, v);
                2
            }
            0xf0 => {
                bus.xdata_write(self.dptr(), self.sfr_load(sfr::ACC));
                2
            }
            0xf2 | 0xf3 => {
                let addr = u16::from_le_bytes([self.reg(op & 1), self.sfr_load(sfr::P2)]);
                bus.xdata_write(addr, self.sfr_load(sfr::ACC));
                2
            }
            // MUL / DIV / DA / SWAP / CPL / CLR A
            0xa4 => {
                let p = self.sfr_load(sfr::ACC) as u16 * self.sfr_load(sfr::B) as u16;
                self.sfr_store(sfr::ACC, p as u8);
                self.sfr_store(sfr::B, (p >> 8) as u8);
                self.set_flag(psw::CY, false);
                self.set_flag(psw::OV, p > 0xff);
                4
            }
            0x84 => {
                let a = self.sfr_load(sfr::ACC);
                let b = self.sfr_load(sfr::B);
                self.set_flag(psw::CY, false);
                if let Some(q) = a.checked_div(b) {
                    self.set_flag(psw::OV, false);
                    self.sfr_store(sfr::ACC, q);
                    self.sfr_store(sfr::B, a % b);
                } else {
                    self.set_flag(psw::OV, true);
                }
                4
            }
            0xd4 => {
                // DA A (decimal adjust after addition).
                let mut a = self.sfr_load(sfr::ACC) as u16;
                if a & 0x0f > 9 || self.get_flag(psw::AC) {
                    a += 0x06;
                }
                if a > 0x9f || self.get_flag(psw::CY) || (a >> 4) & 0x0f > 9 {
                    a += 0x60;
                }
                if a > 0xff {
                    self.set_flag(psw::CY, true);
                }
                self.sfr_store(sfr::ACC, a as u8);
                1
            }
            0xc4 => {
                let a = self.sfr_load(sfr::ACC);
                self.sfr_store(sfr::ACC, a.rotate_left(4));
                1
            } // SWAP
            0xe4 => {
                self.sfr_store(sfr::ACC, 0);
                1
            } // CLR A
            0xf4 => {
                let a = self.sfr_load(sfr::ACC);
                self.sfr_store(sfr::ACC, !a);
                1
            } // CPL A
            // Bit ops
            0xc2 => {
                let bit = self.fetch();
                self.bit_write(bit, false, bus);
                1
            } // CLR bit
            0xc3 => {
                self.set_flag(psw::CY, false);
                1
            } // CLR C
            0xd2 => {
                let bit = self.fetch();
                self.bit_write(bit, true, bus);
                1
            } // SETB bit
            0xd3 => {
                self.set_flag(psw::CY, true);
                1
            } // SETB C
            0xb2 => {
                let bit = self.fetch();
                let v = self.bit_read(bit, bus);
                self.bit_write(bit, !v, bus);
                1
            } // CPL bit
            0xb3 => {
                let c = self.get_flag(psw::CY);
                self.set_flag(psw::CY, !c);
                1
            } // CPL C
            0x92 => {
                let bit = self.fetch();
                let c = self.get_flag(psw::CY);
                self.bit_write(bit, c, bus);
                2
            } // MOV bit,C
            0xa2 => {
                let bit = self.fetch();
                let v = self.bit_read(bit, bus);
                self.set_flag(psw::CY, v);
                1
            } // MOV C,bit
            // PUSH / POP
            0xc0 => {
                let d = self.fetch();
                let v = self.direct_read(d, bus);
                self.push(v);
                2
            }
            0xd0 => {
                let d = self.fetch();
                let v = self.pop();
                self.direct_write(d, v, bus);
                2
            }
            // XCH / XCHD
            0xc5 => {
                let d = self.fetch();
                let v = self.direct_read(d, bus);
                let a = self.sfr_load(sfr::ACC);
                self.direct_write(d, a, bus);
                self.sfr_store(sfr::ACC, v);
                1
            }
            0xc6 | 0xc7 => {
                let r = self.reg(op & 1);
                let v = self.indirect_read(r);
                let a = self.sfr_load(sfr::ACC);
                self.indirect_write(r, a);
                self.sfr_store(sfr::ACC, v);
                1
            }
            0xc8..=0xcf => {
                let n = op & 7;
                let v = self.reg(n);
                let a = self.sfr_load(sfr::ACC);
                self.set_reg(n, a);
                self.sfr_store(sfr::ACC, v);
                1
            }
            0xd6 | 0xd7 => {
                let r = self.reg(op & 1);
                let v = self.indirect_read(r);
                let a = self.sfr_load(sfr::ACC);
                self.indirect_write(r, (v & 0xf0) | (a & 0x0f));
                self.sfr_store(sfr::ACC, (a & 0xf0) | (v & 0x0f));
                1
            }
            // CJNE
            0xb4 => {
                let imm = self.fetch();
                let rel = self.fetch();
                let a = self.sfr_load(sfr::ACC);
                self.cjne(a, imm, rel);
                2
            }
            0xb5 => {
                let d = self.fetch();
                let rel = self.fetch();
                let a = self.sfr_load(sfr::ACC);
                let v = self.direct_read(d, bus);
                self.cjne(a, v, rel);
                2
            }
            0xb6 | 0xb7 => {
                let imm = self.fetch();
                let rel = self.fetch();
                let v = self.indirect_read(self.reg(op & 1));
                self.cjne(v, imm, rel);
                2
            }
            0xb8..=0xbf => {
                let imm = self.fetch();
                let rel = self.fetch();
                let v = self.reg(op & 7);
                self.cjne(v, imm, rel);
                2
            }
            // DJNZ
            0xd5 => {
                let d = self.fetch();
                let rel = self.fetch();
                let v = self.direct_read(d, bus).wrapping_sub(1);
                self.direct_write(d, v, bus);
                if v != 0 {
                    self.rel_jump(rel);
                }
                2
            }
            0xd8..=0xdf => {
                let n = op & 7;
                let rel = self.fetch();
                let v = self.reg(n).wrapping_sub(1);
                self.set_reg(n, v);
                if v != 0 {
                    self.rel_jump(rel);
                }
                2
            }
            0xa5 => 1, // reserved opcode: NOP on this core
        }
    }
}
