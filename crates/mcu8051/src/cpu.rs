//! 8051 instruction-set simulator.
//!
//! The platform's programmable section is the Oregano MC8051 core (paper
//! §4.2, ref \[9\]) — a classic 8051. This interpreter implements the full
//! instruction set (all 255 defined opcodes), the register banks,
//! bit-addressable space, stack, PSW flags, both timers, the serial port,
//! and the five-source interrupt system, with standard 12-clock machine
//! cycle counts — everything monitoring/communication firmware can observe.
//!
//! External hardware (the bridge to the 16-bit peripheral bus, the cache
//! controller, XDATA-mapped devices) attaches through the [`ExternalBus`]
//! trait passed to [`Cpu::step`].

use crate::xlate::{self, XlateCache};
use ascp_sim::noise::Rng64;
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};
use std::collections::VecDeque;

/// SFR addresses used by the core.
pub mod sfr {
    /// Port 0 latch.
    pub const P0: u8 = 0x80;
    /// Stack pointer.
    pub const SP: u8 = 0x81;
    /// Data pointer low byte.
    pub const DPL: u8 = 0x82;
    /// Data pointer high byte.
    pub const DPH: u8 = 0x83;
    /// Power control (SMOD in bit 7).
    pub const PCON: u8 = 0x87;
    /// Timer control.
    pub const TCON: u8 = 0x88;
    /// Timer mode.
    pub const TMOD: u8 = 0x89;
    /// Timer 0 low byte.
    pub const TL0: u8 = 0x8a;
    /// Timer 1 low byte.
    pub const TL1: u8 = 0x8b;
    /// Timer 0 high byte.
    pub const TH0: u8 = 0x8c;
    /// Timer 1 high byte.
    pub const TH1: u8 = 0x8d;
    /// Port 1 latch.
    pub const P1: u8 = 0x90;
    /// Serial control.
    pub const SCON: u8 = 0x98;
    /// Serial buffer.
    pub const SBUF: u8 = 0x99;
    /// Port 2 latch.
    pub const P2: u8 = 0xa0;
    /// Interrupt enable.
    pub const IE: u8 = 0xa8;
    /// Port 3 latch.
    pub const P3: u8 = 0xb0;
    /// Interrupt priority.
    pub const IP: u8 = 0xb8;
    /// Program status word.
    pub const PSW: u8 = 0xd0;
    /// Accumulator.
    pub const ACC: u8 = 0xe0;
    /// B register.
    pub const B: u8 = 0xf0;
}

/// PSW flag bits.
pub mod psw {
    /// Carry.
    pub const CY: u8 = 0x80;
    /// Auxiliary carry (BCD).
    pub const AC: u8 = 0x40;
    /// General-purpose flag 0.
    pub const F0: u8 = 0x20;
    /// Register-bank select bit 1.
    pub const RS1: u8 = 0x10;
    /// Register-bank select bit 0.
    pub const RS0: u8 = 0x08;
    /// Overflow.
    pub const OV: u8 = 0x04;
    /// Parity of ACC (hardware-maintained).
    pub const P: u8 = 0x01;
}

/// External hardware visible to the CPU: non-core SFRs (the paper's cache
/// controller and UART sit on the 8-bit SFR bus; SPI/timer/watchdog/SRAM
/// behind the bridge) and the XDATA space.
pub trait ExternalBus {
    /// Reads an SFR the core does not implement; `None` leaves 0xFF.
    fn sfr_read(&mut self, addr: u8) -> Option<u8>;

    /// Writes an SFR the core does not implement; return `true` if claimed.
    fn sfr_write(&mut self, addr: u8, value: u8) -> bool;

    /// MOVX read.
    fn xdata_read(&mut self, addr: u16) -> u8;

    /// MOVX write.
    fn xdata_write(&mut self, addr: u16, value: u8);

    /// `true` if the bus wants [`ExternalBus::after_instructions`] calls
    /// during batched execution ([`Cpu::run_slice`] / [`Cpu::run_cycles`]).
    /// Buses that return `false` (the default) pay nothing per
    /// instruction on the batched replay fast path.
    fn wants_instruction_hook(&self) -> bool {
        false
    }

    /// Called by batched execution after `spent` machine cycles of
    /// instructions have retired; return `true` to stop the slice at
    /// this instruction boundary (e.g. a watchdog expiry the platform
    /// must turn into a CPU reset). Batches never span more than
    /// [`ExternalBus::instruction_batch_headroom`] cycles, and cycles in
    /// one batch contain no bus-visible side effects, so accounting here
    /// is equivalent to a call after every instruction.
    fn after_instructions(&mut self, spent: u32) -> bool {
        let _ = spent;
        false
    }

    /// Upper bound on machine cycles that may be reported through one
    /// [`ExternalBus::after_instructions`] call without changing the
    /// bus's observable behaviour (e.g. a watchdog's cycles-to-expiry
    /// minus one). `0` forces per-instruction accounting.
    fn instruction_batch_headroom(&self) -> u64 {
        u64::MAX
    }
}

/// A bus with nothing attached (reads float to 0xFF).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullBus;

impl ExternalBus for NullBus {
    fn sfr_read(&mut self, _addr: u8) -> Option<u8> {
        None
    }
    fn sfr_write(&mut self, _addr: u8, _value: u8) -> bool {
        false
    }
    fn xdata_read(&mut self, _addr: u16) -> u8 {
        0xff
    }
    fn xdata_write(&mut self, _addr: u16, _value: u8) {}
}

/// Result of one [`Cpu::run_slice`] call: cycles executed and whether
/// the bus's instruction hook stopped the slice early (the caller
/// handles the stop — e.g. a watchdog reset — and may call again with
/// the remaining budget).
#[derive(Debug, Clone, Copy)]
pub struct SliceOutcome {
    /// Machine cycles executed in this slice.
    pub executed: u64,
    /// `true` when [`ExternalBus::after_instructions`] requested a stop.
    pub stopped: bool,
}

/// Interrupt sources in priority-vector order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IntSource {
    Ext0,
    Timer0,
    Ext1,
    Timer1,
    Serial,
}

impl IntSource {
    fn vector(self) -> u16 {
        match self {
            Self::Ext0 => 0x0003,
            Self::Timer0 => 0x000b,
            Self::Ext1 => 0x0013,
            Self::Timer1 => 0x001b,
            Self::Serial => 0x0023,
        }
    }
    fn enable_mask(self) -> u8 {
        match self {
            Self::Ext0 => 0x01,
            Self::Timer0 => 0x02,
            Self::Ext1 => 0x04,
            Self::Timer1 => 0x08,
            Self::Serial => 0x10,
        }
    }

    /// Stable numeric code for serialization.
    fn code(self) -> u8 {
        match self {
            Self::Ext0 => 0,
            Self::Timer0 => 1,
            Self::Ext1 => 2,
            Self::Timer1 => 3,
            Self::Serial => 4,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => Self::Ext0,
            1 => Self::Timer0,
            2 => Self::Ext1,
            3 => Self::Timer1,
            4 => Self::Serial,
            _ => return None,
        })
    }
}

/// The 8051 core.
#[derive(Debug, Clone)]
pub struct Cpu {
    pc: u16,
    /// Internal RAM: 0x00–0x7F direct/indirect, 0x80–0xFF indirect only.
    iram: [u8; 256],
    /// SFR space 0x80–0xFF (index = addr − 0x80).
    sfrs: [u8; 128],
    code: Vec<u8>,
    cycles: u64,
    /// Instructions retired (telemetry).
    instructions: u64,
    /// Bytes ever written to SBUF for transmit (monotonic; `uart_take_tx`
    /// drains the queue but not this counter).
    uart_tx_total: u64,
    /// Machine cycles spent in the current UART transmission, if any.
    uart_tx_countdown: Option<u32>,
    /// Bytes the firmware has transmitted (host-visible).
    uart_tx: VecDeque<u8>,
    /// Bytes waiting to be received (host-injected).
    uart_rx: VecDeque<u8>,
    /// Machine cycles per UART byte (derived from a nominal baud).
    uart_cycles_per_byte: u32,
    /// Cycle count at which the next RX byte is loaded.
    uart_rx_countdown: Option<u32>,
    /// Interrupt currently in service, with its priority (0/1).
    in_service: Vec<(IntSource, bool)>,
    /// External interrupt input pins.
    int0_pin: bool,
    int1_pin: bool,
    halted: bool,
    /// Injected latch-up: the core burns cycles without fetching, so only
    /// the (external) watchdog can recover it. Cleared by reset.
    hung: bool,
    /// Injected UART line fault: per-byte corruption probability and the
    /// deterministic bit-flip generator.
    uart_fault: Option<(f64, Rng64)>,
    /// Bytes the far-end framing/parity check flagged as corrupted
    /// (monotonic; models the receiving ECU's line-error counter, so a
    /// CPU reset does not clear it).
    uart_line_errors: u64,
    /// Basic-block translation cache (decode-once replay). Derived
    /// entirely from code memory; **never serialized** — see
    /// [`crate::xlate`] for the invalidation rules.
    xlate: XlateCache,
    /// Replay enabled (default). Disabling falls back to the per-step
    /// fetch/decode interpreter — behaviour is bit-identical; only the
    /// speed differs. Not serialized: an execution-strategy knob, not
    /// architectural state.
    xlate_enabled: bool,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// Creates a reset CPU with empty code memory.
    #[must_use]
    pub fn new() -> Self {
        let mut cpu = Self {
            pc: 0,
            iram: [0; 256],
            sfrs: [0; 128],
            code: Vec::new(),
            cycles: 0,
            instructions: 0,
            uart_tx_total: 0,
            uart_tx_countdown: None,
            uart_tx: VecDeque::new(),
            uart_rx: VecDeque::new(),
            uart_cycles_per_byte: 96, // ~19200 baud at 20 MHz / 12
            uart_rx_countdown: None,
            in_service: Vec::new(),
            int0_pin: false,
            int1_pin: false,
            halted: false,
            hung: false,
            uart_fault: None,
            uart_line_errors: 0,
            xlate: XlateCache::default(),
            xlate_enabled: true,
        };
        cpu.reset();
        cpu
    }

    /// Loads code memory (ROM image) and resets.
    ///
    /// # Panics
    ///
    /// Panics if the image exceeds 64 KiB.
    pub fn load_code(&mut self, image: &[u8]) {
        assert!(image.len() <= 0x1_0000, "code image exceeds 64 KiB");
        self.code = image.to_vec();
        self.reset();
    }

    /// Writes one byte of code memory, growing it if needed — the cache
    /// controller's program-download path ("newer software versions could
    /// be downloaded and tested", paper §4.2).
    pub fn code_write(&mut self, addr: u16, value: u8) {
        let idx = addr as usize;
        if self.code.len() <= idx {
            self.code.resize(idx + 1, 0);
        }
        self.code[idx] = value;
        // Self-modifying code: drop cached blocks decoded from the
        // patched span; they re-decode lazily on next execution.
        self.xlate.code_written(addr);
    }

    /// Hardware reset: PC = 0, SP = 7, ports high, everything else zero.
    pub fn reset(&mut self) {
        self.pc = 0;
        self.iram = [0; 256];
        self.sfrs = [0; 128];
        self.sfr_store(sfr::SP, 0x07);
        self.sfr_store(sfr::P0, 0xff);
        self.sfr_store(sfr::P1, 0xff);
        self.sfr_store(sfr::P2, 0xff);
        self.sfr_store(sfr::P3, 0xff);
        self.cycles = 0;
        self.instructions = 0;
        self.uart_tx_total = 0;
        self.uart_tx_countdown = None;
        self.uart_tx.clear();
        self.uart_rx.clear();
        self.uart_rx_countdown = None;
        self.in_service.clear();
        self.halted = false;
        // A hardware reset releases an injected latch-up; the platform
        // re-asserts it while the underlying fault stays active. The UART
        // line fault and error count live on the harness side and survive.
        self.hung = false;
        // Reset flushes the translation cache (safety net: the reset and
        // program-download paths interleave on the watchdog/JTAG side).
        self.xlate.flush();
    }

    /// Program counter.
    #[must_use]
    pub fn pc(&self) -> u16 {
        self.pc
    }

    /// Total machine cycles executed.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired since reset.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Total bytes the firmware has queued for UART transmit since reset
    /// (monotonic — unaffected by [`Cpu::uart_take_tx`] draining the queue).
    #[must_use]
    pub fn uart_tx_total(&self) -> u64 {
        self.uart_tx_total
    }

    /// `true` after executing the idle pseudo-halt (`SJMP $` detection is
    /// not used; halted means a `MOV PCON` power-down, bit 1).
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Accumulator value.
    #[must_use]
    pub fn acc(&self) -> u8 {
        self.sfr_load(sfr::ACC)
    }

    /// Direct-reads internal RAM (test/monitor access).
    #[must_use]
    pub fn iram(&self, addr: u8) -> u8 {
        self.iram[addr as usize]
    }

    /// Direct-writes internal RAM (test setup).
    pub fn set_iram(&mut self, addr: u8, value: u8) {
        self.iram[addr as usize] = value;
    }

    /// Reads an SFR as the firmware would (no external bus consulted).
    #[must_use]
    pub fn sfr(&self, addr: u8) -> u8 {
        self.sfr_load(addr)
    }

    /// Host-side write of an SFR (test setup).
    pub fn set_sfr(&mut self, addr: u8, value: u8) {
        self.sfr_store(addr, value);
    }

    /// Pops all bytes the firmware has written to the UART.
    pub fn uart_take_tx(&mut self) -> Vec<u8> {
        self.uart_tx.drain(..).collect()
    }

    /// Queues a byte for firmware reception (sets RI when delivered).
    pub fn uart_inject_rx(&mut self, byte: u8) {
        self.uart_rx.push_back(byte);
    }

    /// Number of RX bytes not yet delivered.
    #[must_use]
    pub fn uart_rx_pending(&self) -> usize {
        self.uart_rx.len()
    }

    /// Sets the external interrupt pins.
    pub fn set_int_pins(&mut self, int0: bool, int1: bool) {
        self.int0_pin = int0;
        self.int1_pin = int1;
    }

    /// Fault injection: latches (or releases) a CPU hang. A hung core
    /// consumes cycles without fetching instructions — the state a
    /// latch-up or runaway leaves — and does not kick the watchdog.
    pub fn set_hung(&mut self, hung: bool) {
        self.hung = hung;
    }

    /// `true` while an injected hang is latched.
    #[must_use]
    pub fn is_hung(&self) -> bool {
        self.hung
    }

    /// Fault injection: corrupts transmitted UART bytes with per-byte
    /// probability `rate`, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is in `[0, 1]`.
    pub fn set_uart_fault(&mut self, rate: f64, seed: u64) {
        assert!((0.0..=1.0).contains(&rate), "corruption rate {rate}");
        self.uart_fault = Some((rate, Rng64::new(seed)));
    }

    /// Removes an injected UART line fault.
    pub fn clear_uart_fault(&mut self) {
        self.uart_fault = None;
    }

    /// Transmitted bytes the receiving end flagged as corrupted
    /// (single-bit flips, always caught by the frame parity check).
    /// Monotonic across CPU resets.
    #[must_use]
    pub fn uart_line_errors(&self) -> u64 {
        self.uart_line_errors
    }

    // ---- translation cache (see crate::xlate) ----

    /// Enables or disables the basic-block translation cache. Execution
    /// is bit-identical either way (pinned by the differential tests);
    /// only throughput changes. Disabling also drops cached blocks so a
    /// later re-enable starts cold.
    pub fn set_xlate_enabled(&mut self, enabled: bool) {
        self.xlate_enabled = enabled;
        if !enabled {
            self.xlate.flush();
        }
    }

    /// `true` while the translation cache is enabled (the default).
    #[must_use]
    pub fn xlate_enabled(&self) -> bool {
        self.xlate_enabled
    }

    /// Basic-block entries replayed from an already-decoded block.
    #[must_use]
    pub fn xlate_hits(&self) -> u64 {
        self.xlate.hits()
    }

    /// Basic blocks decoded from code memory (cache misses).
    #[must_use]
    pub fn xlate_misses(&self) -> u64 {
        self.xlate.misses()
    }

    /// Cache flushes (`code_write` into a cached block, `load_code`,
    /// reset, snapshot restore) that dropped at least one block.
    #[must_use]
    pub fn xlate_invalidations(&self) -> u64 {
        self.xlate.invalidations()
    }

    /// Number of basic blocks currently cached.
    #[must_use]
    pub fn xlate_cached_blocks(&self) -> usize {
        self.xlate.cached_blocks()
    }

    /// Serializes the complete core state: PC, IRAM, SFRs, code memory
    /// (runtime-mutable through the program-download path), counters, UART
    /// queues and timing, the interrupt in-service stack, pins, and
    /// injected-fault state.
    ///
    /// The translation cache and its hit/miss/invalidation counters are
    /// deliberately **not** serialized: the cache is a pure function of
    /// the code image saved here, so snapshot bytes are identical whether
    /// execution ran cached or interpreted, and the PR 5 format (and the
    /// warm-start cache keys derived from it) is unchanged.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_u16(self.pc);
        w.put_u8_slice(&self.iram);
        w.put_u8_slice(&self.sfrs);
        w.put_u8_slice(&self.code);
        w.put_u64(self.cycles);
        w.put_u64(self.instructions);
        w.put_u64(self.uart_tx_total);
        w.put_opt_u32(self.uart_tx_countdown);
        w.put_u8_slice(self.uart_tx.iter().copied().collect::<Vec<u8>>().as_slice());
        w.put_u8_slice(self.uart_rx.iter().copied().collect::<Vec<u8>>().as_slice());
        w.put_u32(self.uart_cycles_per_byte);
        w.put_opt_u32(self.uart_rx_countdown);
        w.put_u32(self.in_service.len() as u32);
        for &(src, high) in &self.in_service {
            w.put_u8(src.code());
            w.put_bool(high);
        }
        w.put_bool(self.int0_pin);
        w.put_bool(self.int1_pin);
        w.put_bool(self.halted);
        w.put_bool(self.hung);
        match &self.uart_fault {
            Some((rate, rng)) => {
                w.put_bool(true);
                w.put_f64(*rate);
                rng.save_state(w);
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.uart_line_errors);
    }

    /// Restores state saved by [`Cpu::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] if the IRAM/SFR images have the
    /// wrong size, the code image exceeds 64 KiB, an interrupt-source code
    /// is unknown, or the fault rate is outside `[0, 1]`; propagates other
    /// [`SnapshotError`]s on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let pc = r.take_u16()?;
        let iram = r.take_u8_vec()?;
        let sfrs = r.take_u8_vec()?;
        if iram.len() != 256 || sfrs.len() != 128 {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "CPU memory images {}B IRAM / {}B SFR (expected 256/128)",
                    iram.len(),
                    sfrs.len()
                ),
            });
        }
        let code = r.take_u8_vec()?;
        if code.len() > 0x1_0000 {
            return Err(SnapshotError::Corrupt {
                context: format!("CPU code image of {} bytes exceeds 64 KiB", code.len()),
            });
        }
        self.pc = pc;
        self.iram.copy_from_slice(&iram);
        self.sfrs.copy_from_slice(&sfrs);
        self.code = code;
        self.cycles = r.take_u64()?;
        self.instructions = r.take_u64()?;
        self.uart_tx_total = r.take_u64()?;
        self.uart_tx_countdown = r.take_opt_u32()?;
        self.uart_tx = r.take_u8_vec()?.into();
        self.uart_rx = r.take_u8_vec()?.into();
        self.uart_cycles_per_byte = r.take_u32()?;
        self.uart_rx_countdown = r.take_opt_u32()?;
        let n = r.take_u32()? as usize;
        let mut in_service = Vec::with_capacity(n.min(16));
        for _ in 0..n {
            let code = r.take_u8()?;
            let src = IntSource::from_code(code).ok_or_else(|| SnapshotError::Corrupt {
                context: format!("unknown interrupt source code {code}"),
            })?;
            in_service.push((src, r.take_bool()?));
        }
        self.in_service = in_service;
        self.int0_pin = r.take_bool()?;
        self.int1_pin = r.take_bool()?;
        self.halted = r.take_bool()?;
        self.hung = r.take_bool()?;
        self.uart_fault = if r.take_bool()? {
            let rate = r.take_f64()?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(SnapshotError::Corrupt {
                    context: format!("UART fault rate {rate} outside [0, 1]"),
                });
            }
            let mut rng = Rng64::new(1);
            rng.load_state(r)?;
            Some((rate, rng))
        } else {
            None
        };
        self.uart_line_errors = r.take_u64()?;
        // Code memory may have been replaced wholesale; the translation
        // cache rebuilds lazily from the restored image.
        self.xlate.flush();
        Ok(())
    }

    // ---- SFR raw accessors (no side effects) ----

    fn sfr_load(&self, addr: u8) -> u8 {
        debug_assert!(addr >= 0x80);
        self.sfrs[(addr - 0x80) as usize]
    }

    fn sfr_store(&mut self, addr: u8, value: u8) {
        debug_assert!(addr >= 0x80);
        self.sfrs[(addr - 0x80) as usize] = value;
    }

    fn is_core_sfr(addr: u8) -> bool {
        matches!(
            addr,
            sfr::P0
                | sfr::SP
                | sfr::DPL
                | sfr::DPH
                | sfr::PCON
                | sfr::TCON
                | sfr::TMOD
                | sfr::TL0
                | sfr::TL1
                | sfr::TH0
                | sfr::TH1
                | sfr::P1
                | sfr::SCON
                | sfr::SBUF
                | sfr::P2
                | sfr::IE
                | sfr::P3
                | sfr::IP
                | sfr::PSW
                | sfr::ACC
                | sfr::B
        )
    }

    // ---- direct address space (operand access) ----

    fn direct_read(&mut self, addr: u8, bus: &mut dyn ExternalBus) -> u8 {
        if addr < 0x80 {
            self.iram[addr as usize]
        } else if Self::is_core_sfr(addr) {
            if addr == sfr::PSW {
                self.psw_with_parity()
            } else {
                self.sfr_load(addr)
            }
        } else {
            bus.sfr_read(addr).unwrap_or(0xff)
        }
    }

    fn direct_write(&mut self, addr: u8, value: u8, bus: &mut dyn ExternalBus) {
        if addr < 0x80 {
            self.iram[addr as usize] = value;
        } else if Self::is_core_sfr(addr) {
            if addr == sfr::SBUF {
                // Writing SBUF starts a transmission. An injected line
                // fault flips one bit on the wire; the far end's parity
                // check flags the frame (single-bit errors always detect).
                let mut wire = value;
                if let Some((rate, rng)) = &mut self.uart_fault {
                    if rng.next_f64() < *rate {
                        wire ^= 1 << (rng.next_u64() % 8);
                        self.uart_line_errors += 1;
                    }
                }
                self.uart_tx.push_back(wire);
                self.uart_tx_total += 1;
                self.uart_tx_countdown = Some(self.uart_cycles_per_byte);
            }
            if addr == sfr::PCON && value & 0x02 != 0 {
                self.halted = true;
            }
            self.sfr_store(addr, value);
        } else if !bus.sfr_write(addr, value) {
            // Unclaimed writes land in the local shadow so read-back works
            // for software flags parked on spare addresses.
            self.sfr_store(addr, value);
        }
    }

    fn indirect_read(&self, addr: u8) -> u8 {
        // Indirect access reaches upper IRAM, never SFRs.
        self.iram[addr as usize]
    }

    fn indirect_write(&mut self, addr: u8, value: u8) {
        self.iram[addr as usize] = value;
    }

    // ---- registers and flags ----

    fn bank_base(&self) -> u8 {
        (self.sfr_load(sfr::PSW) >> 3) & 0x03
    }

    fn reg_addr(&self, n: u8) -> u8 {
        self.bank_base() * 8 + n
    }

    fn reg(&self, n: u8) -> u8 {
        self.iram[self.reg_addr(n) as usize]
    }

    fn set_reg(&mut self, n: u8, value: u8) {
        let a = self.reg_addr(n);
        self.iram[a as usize] = value;
    }

    fn psw_with_parity(&self) -> u8 {
        let acc = self.sfr_load(sfr::ACC);
        let p = (acc.count_ones() & 1) as u8;
        (self.sfr_load(sfr::PSW) & !psw::P) | p
    }

    fn get_flag(&self, mask: u8) -> bool {
        self.sfr_load(sfr::PSW) & mask != 0
    }

    fn set_flag(&mut self, mask: u8, on: bool) {
        let v = self.sfr_load(sfr::PSW);
        self.sfr_store(sfr::PSW, if on { v | mask } else { v & !mask });
    }

    fn dptr(&self) -> u16 {
        u16::from_le_bytes([self.sfr_load(sfr::DPL), self.sfr_load(sfr::DPH)])
    }

    fn set_dptr(&mut self, v: u16) {
        let [lo, hi] = v.to_le_bytes();
        self.sfr_store(sfr::DPL, lo);
        self.sfr_store(sfr::DPH, hi);
    }

    // ---- bit space ----

    fn bit_read(&mut self, bit: u8, bus: &mut dyn ExternalBus) -> bool {
        if bit < 0x80 {
            let byte = 0x20 + bit / 8;
            self.iram[byte as usize] & (1 << (bit % 8)) != 0
        } else {
            let addr = bit & 0xf8;
            self.direct_read(addr, bus) & (1 << (bit % 8)) != 0
        }
    }

    fn bit_write(&mut self, bit: u8, on: bool, bus: &mut dyn ExternalBus) {
        let mask = 1u8 << (bit % 8);
        if bit < 0x80 {
            let byte = (0x20 + bit / 8) as usize;
            if on {
                self.iram[byte] |= mask;
            } else {
                self.iram[byte] &= !mask;
            }
        } else {
            let addr = bit & 0xf8;
            let v = self.direct_read(addr, bus);
            self.direct_write(addr, if on { v | mask } else { v & !mask }, bus);
        }
    }

    // ---- stack ----

    fn push(&mut self, value: u8) {
        let sp = self.sfr_load(sfr::SP).wrapping_add(1);
        self.sfr_store(sfr::SP, sp);
        self.iram[sp as usize] = value;
    }

    fn pop(&mut self) -> u8 {
        let sp = self.sfr_load(sfr::SP);
        let v = self.iram[sp as usize];
        self.sfr_store(sfr::SP, sp.wrapping_sub(1));
        v
    }

    fn push_pc(&mut self) {
        let [lo, hi] = self.pc.to_le_bytes();
        self.push(lo);
        self.push(hi);
    }

    // ---- code fetch ----

    fn fetch(&mut self) -> u8 {
        let b = self.code_at(self.pc);
        self.pc = self.pc.wrapping_add(1);
        b
    }

    fn code_at(&self, addr: u16) -> u8 {
        self.code.get(addr as usize).copied().unwrap_or(0)
    }

    /// Interpreter decode: fetches the opcode and its operand bytes,
    /// advancing PC past the instruction — the uncached twin of a
    /// [`crate::xlate::MicroOp`] replay. Both paths feed the same
    /// [`Cpu::execute_decoded`] core, so they cannot diverge.
    #[inline]
    fn fetch_decoded(&mut self) -> (u8, u8, u8) {
        let op = self.fetch();
        let operands = xlate::OPERAND_COUNT[op as usize];
        let a = if operands >= 1 { self.fetch() } else { 0 };
        let b = if operands >= 2 { self.fetch() } else { 0 };
        (op, a, b)
    }

    fn rel_jump(&mut self, offset: u8) {
        self.pc = self.pc.wrapping_add(offset as i8 as u16);
    }

    // ---- ALU helpers ----

    fn add(&mut self, operand: u8, with_carry: bool) {
        let a = self.sfr_load(sfr::ACC);
        let psw0 = self.sfr_load(sfr::PSW);
        let c = u16::from(with_carry && psw0 & psw::CY != 0);
        let sum = a as u16 + operand as u16 + c;
        let half = (a & 0x0f) as u16 + (operand & 0x0f) as u16 + c;
        let signed = (a as i8 as i16) + (operand as i8 as i16) + c as i16;
        // One PSW read-modify-write for all three flags (the per-flag
        // set_flag chain is a measurable store-forwarding stall in the
        // interpreter hot loop).
        let mut pswv = psw0 & !(psw::CY | psw::AC | psw::OV);
        if sum > 0xff {
            pswv |= psw::CY;
        }
        if half > 0x0f {
            pswv |= psw::AC;
        }
        if !(-128..=127).contains(&signed) {
            pswv |= psw::OV;
        }
        self.sfr_store(sfr::PSW, pswv);
        self.sfr_store(sfr::ACC, sum as u8);
    }

    fn subb(&mut self, operand: u8) {
        let a = self.sfr_load(sfr::ACC);
        let psw0 = self.sfr_load(sfr::PSW);
        let c = u16::from(psw0 & psw::CY != 0);
        let diff = (a as i16) - (operand as i16) - c as i16;
        let half = (a & 0x0f) as i16 - (operand & 0x0f) as i16 - c as i16;
        let signed = (a as i8 as i16) - (operand as i8 as i16) - c as i16;
        let mut pswv = psw0 & !(psw::CY | psw::AC | psw::OV);
        if diff < 0 {
            pswv |= psw::CY;
        }
        if half < 0 {
            pswv |= psw::AC;
        }
        if !(-128..=127).contains(&signed) {
            pswv |= psw::OV;
        }
        self.sfr_store(sfr::PSW, pswv);
        self.sfr_store(sfr::ACC, diff as u8);
    }

    fn cjne(&mut self, a: u8, b: u8, rel: u8) {
        self.set_flag(psw::CY, a < b);
        if a != b {
            self.rel_jump(rel);
        }
    }

    // ---- peripherals driven by elapsed cycles ----

    fn tick_timers(&mut self, machine_cycles: u32) {
        let tmod = self.sfr_load(sfr::TMOD);
        let tcon = self.sfr_load(sfr::TCON);
        // Timer 0 (TR0 = TCON.4).
        if tcon & 0x10 != 0 {
            self.tick_timer(0, tmod & 0x0f, machine_cycles);
        }
        // Timer 1 (TR1 = TCON.6).
        if tcon & 0x40 != 0 {
            self.tick_timer(1, (tmod >> 4) & 0x0f, machine_cycles);
        }
    }

    fn tick_timer(&mut self, which: u8, mode_bits: u8, machine_cycles: u32) {
        let (tl_a, th_a, tf_mask) = if which == 0 {
            (sfr::TL0, sfr::TH0, 0x20u8)
        } else {
            (sfr::TL1, sfr::TH1, 0x80u8)
        };
        // Gate/CT ignored (no external count inputs modelled).
        let mode = mode_bits & 0x03;
        let mut tl = self.sfr_load(tl_a) as u32;
        let mut th = self.sfr_load(th_a) as u32;
        let mut overflowed = false;
        match mode {
            0 => {
                // 13-bit: TL holds 5 bits.
                let mut count = (th << 5) | (tl & 0x1f);
                count += machine_cycles;
                if count > 0x1fff {
                    overflowed = true;
                    count &= 0x1fff;
                }
                th = count >> 5;
                tl = count & 0x1f;
            }
            1 => {
                let mut count = (th << 8) | tl;
                count += machine_cycles;
                if count > 0xffff {
                    overflowed = true;
                    count &= 0xffff;
                }
                th = count >> 8;
                tl = count & 0xff;
            }
            2 => {
                // 8-bit auto-reload from TH.
                let reload = th;
                let span = 256 - reload;
                let mut count = tl.wrapping_sub(reload) + machine_cycles;
                if count >= span {
                    overflowed = true;
                    count %= span.max(1);
                }
                tl = reload + count;
            }
            _ => {
                // Mode 3: treat as mode 1 for timer 0; timer 1 frozen.
                if which == 0 {
                    let mut count = (th << 8) | tl;
                    count += machine_cycles;
                    if count > 0xffff {
                        overflowed = true;
                        count &= 0xffff;
                    }
                    th = count >> 8;
                    tl = count & 0xff;
                }
            }
        }
        self.sfr_store(tl_a, tl as u8);
        self.sfr_store(th_a, th as u8);
        if overflowed {
            let tcon = self.sfr_load(sfr::TCON);
            self.sfr_store(sfr::TCON, tcon | tf_mask);
        }
    }

    fn tick_uart(&mut self, machine_cycles: u32) {
        // Transmit completion -> TI.
        if let Some(rem) = self.uart_tx_countdown {
            if rem <= machine_cycles {
                self.uart_tx_countdown = None;
                let scon = self.sfr_load(sfr::SCON);
                self.sfr_store(sfr::SCON, scon | 0x02); // TI
            } else {
                self.uart_tx_countdown = Some(rem - machine_cycles);
            }
        }
        // Receive delivery -> SBUF + RI (only when REN set and RI clear).
        let scon = self.sfr_load(sfr::SCON);
        if scon & 0x10 != 0 && scon & 0x01 == 0 && !self.uart_rx.is_empty() {
            match self.uart_rx_countdown {
                None => self.uart_rx_countdown = Some(self.uart_cycles_per_byte),
                Some(rem) if rem <= machine_cycles => {
                    self.uart_rx_countdown = None;
                    if let Some(byte) = self.uart_rx.pop_front() {
                        self.sfr_store(sfr::SBUF, byte);
                        let scon = self.sfr_load(sfr::SCON);
                        self.sfr_store(sfr::SCON, scon | 0x01); // RI
                    }
                }
                Some(rem) => self.uart_rx_countdown = Some(rem - machine_cycles),
            }
        }
        // External interrupt pins -> TCON IE0/IE1 (level-triggered model).
        let mut tcon = self.sfr_load(sfr::TCON);
        if self.int0_pin {
            tcon |= 0x02;
        }
        if self.int1_pin {
            tcon |= 0x08;
        }
        self.sfr_store(sfr::TCON, tcon);
    }

    /// Hot-path interrupt poll: one SFR load and a mask when interrupts
    /// are globally disabled (the common case between `EA` writes).
    #[inline]
    fn pending_interrupt(&self) -> Option<(IntSource, bool)> {
        if self.sfr_load(sfr::IE) & 0x80 == 0 {
            return None; // EA clear
        }
        self.pending_interrupt_enabled()
    }

    fn pending_interrupt_enabled(&self) -> Option<(IntSource, bool)> {
        let ie = self.sfr_load(sfr::IE);
        let ip = self.sfr_load(sfr::IP);
        let tcon = self.sfr_load(sfr::TCON);
        let scon = self.sfr_load(sfr::SCON);
        let candidates = [
            (IntSource::Ext0, tcon & 0x02 != 0),
            (IntSource::Timer0, tcon & 0x20 != 0),
            (IntSource::Ext1, tcon & 0x08 != 0),
            (IntSource::Timer1, tcon & 0x80 != 0),
            (IntSource::Serial, scon & 0x03 != 0),
        ];
        let active_high = self.in_service.iter().any(|&(_, high)| high);
        let active_any = !self.in_service.is_empty();
        // High priority first, then low, in vector order.
        for &want_high in &[true, false] {
            for &(src, flagged) in &candidates {
                if !flagged || ie & src.enable_mask() == 0 {
                    continue;
                }
                let is_high = ip & src.enable_mask() != 0;
                if is_high != want_high {
                    continue;
                }
                // A high-priority ISR blocks everything; a low-priority ISR
                // blocks other low-priority sources.
                if active_high || (active_any && !is_high) {
                    continue;
                }
                return Some((src, is_high));
            }
        }
        None
    }

    fn service_interrupt(&mut self, src: IntSource, high: bool) {
        // Clear the hardware-cleared flags (IE0/IE1/TF0/TF1); serial RI/TI
        // are cleared by software.
        let tcon = self.sfr_load(sfr::TCON);
        let cleared = match src {
            IntSource::Ext0 => tcon & !0x02,
            IntSource::Timer0 => tcon & !0x20,
            IntSource::Ext1 => tcon & !0x08,
            IntSource::Timer1 => tcon & !0x80,
            IntSource::Serial => tcon,
        };
        self.sfr_store(sfr::TCON, cleared);
        self.push_pc();
        self.pc = src.vector();
        self.in_service.push((src, high));
        self.cycles += 2;
    }

    /// Executes one instruction (servicing pending interrupts first);
    /// returns the machine cycles consumed.
    ///
    /// With the translation cache enabled (the default), the instruction
    /// is replayed from a predecoded basic block ([`crate::xlate`])
    /// instead of being fetched and decoded from code memory; interrupts
    /// are still sampled here, at every instruction boundary, so IRQ
    /// latency, cycle counts and bus traces are bit-identical either way.
    pub fn step(&mut self, bus: &mut dyn ExternalBus) -> u32 {
        if self.hung {
            // Latch-up: the clock runs but nothing fetches, no timers
            // tick, no watchdog kicks happen. Cycles still accumulate so
            // an external watchdog sees time passing.
            self.cycles += 1;
            return 1;
        }
        if self.halted {
            self.tick_peripherals(1);
            self.cycles += 1;
            return 1;
        }
        if let Some((src, high)) = self.pending_interrupt() {
            self.service_interrupt(src, high);
        }
        let mut predicted = 0u8;
        let (op, a, b) = if self.xlate_enabled {
            if let Some(uop) = self.xlate.cursor_next(self.pc) {
                // Straight-line replay: the cursor is mid-block and the
                // next micro-op is exactly where PC points.
                self.pc = uop.next_pc;
                predicted = uop.cycles();
                (uop.op, uop.a, uop.b)
            } else {
                self.enter_block()
            }
        } else {
            self.fetch_decoded()
        };
        let cycles = self.execute_decoded(op, a, b, bus);
        debug_assert!(
            predicted == 0 || u32::from(predicted) == cycles,
            "micro-op cycle table disagrees with execution for {op:#04x}"
        );
        self.instructions += 1;
        self.cycles += u64::from(cycles);
        self.tick_peripherals(cycles);
        cycles
    }

    /// Cold half of the cached step: block-entry lookup (decoding the
    /// block on a miss) with interpreter fallback for PCs outside code
    /// memory.
    fn enter_block(&mut self) -> (u8, u8, u8) {
        if let Some(uop) = self.xlate.lookup(self.pc, &self.code) {
            self.pc = uop.next_pc;
            (uop.op, uop.a, uop.b)
        } else {
            self.fetch_decoded()
        }
    }

    /// Per-instruction peripheral tick with cheap idle fast paths. The
    /// guards skip only calls that would be observable no-ops: timers
    /// with TR0 and TR1 clear, and the UART with no transmission in
    /// flight, no deliverable RX byte and both interrupt pins low — so
    /// behaviour is exactly [`Cpu::tick_timers`] + [`Cpu::tick_uart`].
    #[inline]
    fn tick_peripherals(&mut self, machine_cycles: u32) {
        if self.sfr_load(sfr::TCON) & 0x50 != 0 {
            self.tick_timers(machine_cycles);
        }
        if self.uart_tx_countdown.is_some() || self.int0_pin || self.int1_pin {
            self.tick_uart(machine_cycles);
        } else {
            let scon = self.sfr_load(sfr::SCON);
            if scon & 0x10 != 0 && scon & 0x01 == 0 && !self.uart_rx.is_empty() {
                self.tick_uart(machine_cycles);
            }
        }
    }

    /// Runs until `cycles` machine cycles have elapsed.
    ///
    /// Batched twin of calling [`Cpu::step`] in a loop — behaviour is
    /// bit-identical (same instruction boundaries, interrupt latencies,
    /// peripheral timing and bus traffic), but when the translation
    /// cache is enabled and the machine is *quiet* — interrupts globally
    /// disabled, timers stopped, UART idle — cached micro-ops replay in
    /// a tight loop that skips the per-instruction interrupt poll and
    /// peripheral tick. Those are provable no-ops while quiet, and only
    /// a `Direct`/`Xdata`-class instruction (the ones that can write IE,
    /// TCON, SCON, SBUF, PCON or reach the external bus) can end
    /// quiescence, so the loop falls back to the careful per-instruction
    /// path exactly at the first instruction that could tell the
    /// difference. Buses that want per-instruction accounting (the
    /// platform watchdog) bound the batches via
    /// [`ExternalBus::instruction_batch_headroom`].
    pub fn run_cycles(&mut self, cycles: u64, bus: &mut dyn ExternalBus) -> u64 {
        let target = self.cycles.saturating_add(cycles);
        let hook = bus.wants_instruction_hook();
        let mut executed = 0u64;
        while self.cycles < target {
            let (spent, _stopped) = self.run_chunk(target - self.cycles, bus, hook);
            executed += spent;
        }
        executed
    }

    /// Runs up to `budget` machine cycles (fractional budgets execute
    /// while at least one whole cycle remains, exactly like the
    /// platform's historical `while debt >= 1.0 { step() }` loop — the
    /// last instruction may overshoot), stopping early when the bus's
    /// [`ExternalBus::after_instructions`] hook requests it (watchdog
    /// expiry). The caller handles the stop (e.g. resets the CPU) and
    /// calls again with the remaining budget.
    pub fn run_slice(&mut self, budget: f64, bus: &mut dyn ExternalBus) -> SliceOutcome {
        let limit = if budget >= 1.0 { budget as u64 } else { 0 };
        let hook = bus.wants_instruction_hook();
        let mut executed = 0u64;
        while executed < limit {
            let (spent, stopped) = self.run_chunk(limit - executed, bus, hook);
            executed += spent;
            if stopped {
                return SliceOutcome {
                    executed,
                    stopped: true,
                };
            }
        }
        SliceOutcome {
            executed,
            stopped: false,
        }
    }

    /// One batched-execution chunk: a quiet replay batch when the
    /// machine state allows it, otherwise a single careful [`Cpu::step`].
    /// Returns cycles spent and whether the bus hook asked to stop.
    fn run_chunk(&mut self, remaining: u64, bus: &mut dyn ExternalBus, hook: bool) -> (u64, bool) {
        if self.xlate_enabled && !self.hung && !self.halted && self.peripherals_quiet() {
            let headroom = if hook {
                bus.instruction_batch_headroom()
            } else {
                u64::MAX
            };
            if headroom > 0 {
                let limit = remaining.min(headroom).min(u64::from(u32::MAX));
                let done = self.replay_quiet(limit, bus);
                if done > 0 {
                    // `done` fits u32: limit was clamped above.
                    #[allow(clippy::cast_possible_truncation)]
                    let stop = hook && bus.after_instructions(done as u32);
                    return (done, stop);
                }
            }
        }
        let spent = self.step(bus);
        let stop = hook && bus.after_instructions(spent);
        (u64::from(spent), stop)
    }

    /// `true` when no per-instruction sampling can observe anything:
    /// interrupts are globally disabled (IE.EA clear), both timers are
    /// stopped (TCON.TR0/TR1 clear) and the UART is idle (no
    /// transmission in flight, both interrupt pins low, no deliverable
    /// RX byte). Under these conditions [`Cpu::pending_interrupt`] and
    /// [`Cpu::tick_peripherals`] are no-ops, and only a `Direct`-class
    /// instruction can change that.
    fn peripherals_quiet(&self) -> bool {
        if self.sfr_load(sfr::IE) & 0x80 != 0 || self.sfr_load(sfr::TCON) & 0x50 != 0 {
            return false;
        }
        if self.uart_tx_countdown.is_some() || self.int0_pin || self.int1_pin {
            return false;
        }
        let scon = self.sfr_load(sfr::SCON);
        !(scon & 0x10 != 0 && scon & 0x01 == 0 && !self.uart_rx.is_empty())
    }

    /// The quiet-replay hot loop: executes cached micro-ops until the
    /// cycle `limit` is reached, a non-quiet-safe op (or uncached /
    /// out-of-code PC) needs the careful path, whichever comes first.
    /// Returns the machine cycles executed.
    fn replay_quiet(&mut self, limit: u64, bus: &mut dyn ExternalBus) -> u64 {
        // Counters accumulate in locals and flush once at loop exit: no
        // execution arm reads them, and the save/accessor paths only run
        // between slices.
        let mut executed = 0u64;
        let mut retired = 0u64;
        // The arena moves out of the cache for the duration of the loop
        // so it can be indexed as a local slice (pointer and cursor in
        // registers) while `execute_decoded` mutably borrows `self`.
        // Sound because nothing the loop executes can touch the cache:
        // no 8051 instruction writes code memory, and every flush path
        // (`code_write`, `load_code`, `load_state`, `reset`,
        // `set_xlate_enabled`) is an external API, not an instruction.
        // Block decodes (cold path) hand the arena back first.
        let mut ops = std::mem::take(&mut self.xlate.ops);
        let mut cur = self.xlate.cur as usize;
        let mut end = self.xlate.cur_end as usize;
        while executed < limit {
            if cur >= end || ops[cur].pc != self.pc {
                // Block boundary or divergence: rewind for a same-block
                // re-entry (hot-loop backward jump), else do the full
                // lookup — which may decode a new block into the arena,
                // so it borrows the real cache. PCs outside code memory
                // leave the quiet loop for the interpreter.
                if !self.xlate.reenter(self.pc) {
                    self.xlate.ops = ops;
                    let ok = self.xlate.position(self.pc, &self.code);
                    ops = std::mem::take(&mut self.xlate.ops);
                    if !ok {
                        break;
                    }
                    end = self.xlate.cur_end as usize;
                }
                cur = self.xlate.cur as usize;
                continue;
            }
            let uop = ops[cur];
            if !uop.quiet_safe() {
                break;
            }
            cur += 1;
            self.pc = uop.next_pc;
            let spent = self.execute_decoded(uop.op, uop.a, uop.b, bus);
            debug_assert!(
                u32::from(uop.cycles()) == spent,
                "micro-op cycle table disagrees with execution for {:#04x}",
                uop.op
            );
            retired += 1;
            executed += u64::from(spent);
        }
        self.xlate.ops = ops;
        self.xlate.cur = u32::try_from(cur).unwrap_or(xlate::NONE_IDX);
        self.instructions += retired;
        self.cycles += executed;
        executed
    }

    /// The single execution core: one instruction's semantics, with the
    /// opcode and operand bytes already fetched (PC points past the
    /// instruction). Both the interpreter ([`Cpu::fetch_decoded`]) and
    /// the translation-cache replay feed this function, so cached and
    /// uncached execution share every side effect by construction.
    #[allow(clippy::too_many_lines)]
    #[inline(always)]
    fn execute_decoded(&mut self, op: u8, a: u8, b: u8, bus: &mut dyn ExternalBus) -> u32 {
        match op {
            0x00 => 1, // NOP
            // AJMP / ACALL (page encoded in opcode bits 7..5)
            0x01 | 0x21 | 0x41 | 0x61 | 0x81 | 0xa1 | 0xc1 | 0xe1 => {
                let page = (op >> 5) as u16;
                self.pc = (self.pc & 0xf800) | (page << 8) | a as u16;
                2
            }
            0x11 | 0x31 | 0x51 | 0x71 | 0x91 | 0xb1 | 0xd1 | 0xf1 => {
                let page = (op >> 5) as u16;
                self.push_pc();
                self.pc = (self.pc & 0xf800) | (page << 8) | a as u16;
                2
            }
            0x02 => {
                self.pc = u16::from_be_bytes([a, b]);
                2
            } // LJMP
            0x12 => {
                self.push_pc();
                self.pc = u16::from_be_bytes([a, b]);
                2
            } // LCALL
            0x03 => {
                let a = self.sfr_load(sfr::ACC);
                self.sfr_store(sfr::ACC, a.rotate_right(1));
                1
            } // RR A
            0x13 => {
                let a = self.sfr_load(sfr::ACC);
                let c = self.get_flag(psw::CY);
                self.set_flag(psw::CY, a & 1 != 0);
                self.sfr_store(sfr::ACC, (a >> 1) | ((c as u8) << 7));
                1
            } // RRC A
            0x23 => {
                let a = self.sfr_load(sfr::ACC);
                self.sfr_store(sfr::ACC, a.rotate_left(1));
                1
            } // RL A
            0x33 => {
                let a = self.sfr_load(sfr::ACC);
                let c = self.get_flag(psw::CY);
                self.set_flag(psw::CY, a & 0x80 != 0);
                self.sfr_store(sfr::ACC, (a << 1) | c as u8);
                1
            } // RLC A
            0x04 => {
                let a = self.sfr_load(sfr::ACC).wrapping_add(1);
                self.sfr_store(sfr::ACC, a);
                1
            } // INC A
            0x14 => {
                let a = self.sfr_load(sfr::ACC).wrapping_sub(1);
                self.sfr_store(sfr::ACC, a);
                1
            } // DEC A
            0x05 => {
                let v = self.direct_read(a, bus).wrapping_add(1);
                self.direct_write(a, v, bus);
                1
            } // INC dir
            0x15 => {
                let v = self.direct_read(a, bus).wrapping_sub(1);
                self.direct_write(a, v, bus);
                1
            } // DEC dir
            0x06 | 0x07 => {
                let a = self.reg(op & 1);
                let v = self.indirect_read(a).wrapping_add(1);
                self.indirect_write(a, v);
                1
            } // INC @Ri
            0x16 | 0x17 => {
                let a = self.reg(op & 1);
                let v = self.indirect_read(a).wrapping_sub(1);
                self.indirect_write(a, v);
                1
            } // DEC @Ri
            0x08..=0x0f => {
                let n = op & 7;
                let v = self.reg(n).wrapping_add(1);
                self.set_reg(n, v);
                1
            } // INC Rn
            0x18..=0x1f => {
                let n = op & 7;
                let v = self.reg(n).wrapping_sub(1);
                self.set_reg(n, v);
                1
            } // DEC Rn
            0xa3 => {
                self.set_dptr(self.dptr().wrapping_add(1));
                2
            } // INC DPTR
            0x10 => {
                if self.bit_read(a, bus) {
                    self.bit_write(a, false, bus);
                    self.rel_jump(b);
                }
                2
            } // JBC
            0x20 => {
                if self.bit_read(a, bus) {
                    self.rel_jump(b);
                }
                2
            } // JB
            0x30 => {
                if !self.bit_read(a, bus) {
                    self.rel_jump(b);
                }
                2
            } // JNB
            0x40 => {
                if self.get_flag(psw::CY) {
                    self.rel_jump(a);
                }
                2
            } // JC
            0x50 => {
                if !self.get_flag(psw::CY) {
                    self.rel_jump(a);
                }
                2
            } // JNC
            0x60 => {
                if self.sfr_load(sfr::ACC) == 0 {
                    self.rel_jump(a);
                }
                2
            } // JZ
            0x70 => {
                if self.sfr_load(sfr::ACC) != 0 {
                    self.rel_jump(a);
                }
                2
            } // JNZ
            0x80 => {
                self.rel_jump(a);
                2
            } // SJMP
            0x73 => {
                self.pc = self.dptr().wrapping_add(self.sfr_load(sfr::ACC) as u16);
                2
            } // JMP @A+DPTR
            0x22 => {
                let hi = self.pop();
                let lo = self.pop();
                self.pc = u16::from_le_bytes([lo, hi]);
                2
            } // RET
            0x32 => {
                let hi = self.pop();
                let lo = self.pop();
                self.pc = u16::from_le_bytes([lo, hi]);
                self.in_service.pop();
                2
            } // RETI
            // ADD / ADDC / SUBB
            0x24 => {
                self.add(a, false);
                1
            }
            0x25 => {
                let v = self.direct_read(a, bus);
                self.add(v, false);
                1
            }
            0x26 | 0x27 => {
                let v = self.indirect_read(self.reg(op & 1));
                self.add(v, false);
                1
            }
            0x28..=0x2f => {
                let v = self.reg(op & 7);
                self.add(v, false);
                1
            }
            0x34 => {
                self.add(a, true);
                1
            }
            0x35 => {
                let v = self.direct_read(a, bus);
                self.add(v, true);
                1
            }
            0x36 | 0x37 => {
                let v = self.indirect_read(self.reg(op & 1));
                self.add(v, true);
                1
            }
            0x38..=0x3f => {
                let v = self.reg(op & 7);
                self.add(v, true);
                1
            }
            0x94 => {
                self.subb(a);
                1
            }
            0x95 => {
                let v = self.direct_read(a, bus);
                self.subb(v);
                1
            }
            0x96 | 0x97 => {
                let v = self.indirect_read(self.reg(op & 1));
                self.subb(v);
                1
            }
            0x98..=0x9f => {
                let v = self.reg(op & 7);
                self.subb(v);
                1
            }
            // Logic: ORL / ANL / XRL
            0x42 | 0x52 | 0x62 => {
                let d = a;
                let v = self.direct_read(d, bus);
                let a = self.sfr_load(sfr::ACC);
                let r = match op {
                    0x42 => v | a,
                    0x52 => v & a,
                    _ => v ^ a,
                };
                self.direct_write(d, r, bus);
                1
            }
            0x43 | 0x53 | 0x63 => {
                let d = a;
                let imm = b;
                let v = self.direct_read(d, bus);
                let r = match op {
                    0x43 => v | imm,
                    0x53 => v & imm,
                    _ => v ^ imm,
                };
                self.direct_write(d, r, bus);
                2
            }
            0x44 | 0x54 | 0x64 => {
                let imm = a;
                let a = self.sfr_load(sfr::ACC);
                let r = match op {
                    0x44 => a | imm,
                    0x54 => a & imm,
                    _ => a ^ imm,
                };
                self.sfr_store(sfr::ACC, r);
                1
            }
            0x45 | 0x55 | 0x65 => {
                let d = a;
                let v = self.direct_read(d, bus);
                let a = self.sfr_load(sfr::ACC);
                let r = match op {
                    0x45 => a | v,
                    0x55 => a & v,
                    _ => a ^ v,
                };
                self.sfr_store(sfr::ACC, r);
                1
            }
            0x46 | 0x47 | 0x56 | 0x57 | 0x66 | 0x67 => {
                let v = self.indirect_read(self.reg(op & 1));
                let a = self.sfr_load(sfr::ACC);
                let r = match op & 0xf0 {
                    0x40 => a | v,
                    0x50 => a & v,
                    _ => a ^ v,
                };
                self.sfr_store(sfr::ACC, r);
                1
            }
            0x48..=0x4f | 0x58..=0x5f | 0x68..=0x6f => {
                let v = self.reg(op & 7);
                let a = self.sfr_load(sfr::ACC);
                let r = match op & 0xf0 {
                    0x40 => a | v,
                    0x50 => a & v,
                    _ => a ^ v,
                };
                self.sfr_store(sfr::ACC, r);
                1
            }
            // Carry-bit logic
            0x72 => {
                let v = self.bit_read(a, bus);
                let c = self.get_flag(psw::CY);
                self.set_flag(psw::CY, c | v);
                2
            } // ORL C,bit
            0xa0 => {
                let v = self.bit_read(a, bus);
                let c = self.get_flag(psw::CY);
                self.set_flag(psw::CY, c | !v);
                2
            } // ORL C,/bit
            0x82 => {
                let v = self.bit_read(a, bus);
                let c = self.get_flag(psw::CY);
                self.set_flag(psw::CY, c & v);
                2
            } // ANL C,bit
            0xb0 => {
                let v = self.bit_read(a, bus);
                let c = self.get_flag(psw::CY);
                self.set_flag(psw::CY, c & !v);
                2
            } // ANL C,/bit
            // MOV immediate / register forms
            0x74 => {
                self.sfr_store(sfr::ACC, a);
                1
            }
            0x75 => {
                self.direct_write(a, b, bus);
                2
            }
            0x76 | 0x77 => {
                self.indirect_write(self.reg(op & 1), a);
                1
            }
            0x78..=0x7f => {
                self.set_reg(op & 7, a);
                1
            }
            0x85 => {
                // MOV dest,src is encoded src-first.
                let v = self.direct_read(a, bus);
                self.direct_write(b, v, bus);
                2
            }
            0x86 | 0x87 => {
                let v = self.indirect_read(self.reg(op & 1));
                self.direct_write(a, v, bus);
                2
            }
            0x88..=0x8f => {
                let v = self.reg(op & 7);
                self.direct_write(a, v, bus);
                2
            }
            0x90 => {
                self.set_dptr(u16::from_be_bytes([a, b]));
                2
            } // MOV DPTR,#
            0xa6 | 0xa7 => {
                let v = self.direct_read(a, bus);
                self.indirect_write(self.reg(op & 1), v);
                2
            }
            0xa8..=0xaf => {
                let v = self.direct_read(a, bus);
                self.set_reg(op & 7, v);
                2
            }
            0xe5 => {
                let v = self.direct_read(a, bus);
                self.sfr_store(sfr::ACC, v);
                1
            }
            0xe6 | 0xe7 => {
                let v = self.indirect_read(self.reg(op & 1));
                self.sfr_store(sfr::ACC, v);
                1
            }
            0xe8..=0xef => {
                let v = self.reg(op & 7);
                self.sfr_store(sfr::ACC, v);
                1
            }
            0xf5 => {
                let v = self.sfr_load(sfr::ACC);
                self.direct_write(a, v, bus);
                1
            }
            0xf6 | 0xf7 => {
                let v = self.sfr_load(sfr::ACC);
                self.indirect_write(self.reg(op & 1), v);
                1
            }
            0xf8..=0xff => {
                let v = self.sfr_load(sfr::ACC);
                self.set_reg(op & 7, v);
                1
            }
            // MOVC
            0x83 => {
                let a = self.sfr_load(sfr::ACC);
                let v = self.code_at(self.pc.wrapping_add(a as u16));
                self.sfr_store(sfr::ACC, v);
                2
            } // MOVC A,@A+PC
            0x93 => {
                let a = self.sfr_load(sfr::ACC);
                let v = self.code_at(self.dptr().wrapping_add(a as u16));
                self.sfr_store(sfr::ACC, v);
                2
            } // MOVC A,@A+DPTR
            // MOVX
            0xe0 => {
                let v = bus.xdata_read(self.dptr());
                self.sfr_store(sfr::ACC, v);
                2
            }
            0xe2 | 0xe3 => {
                let addr = u16::from_le_bytes([self.reg(op & 1), self.sfr_load(sfr::P2)]);
                let v = bus.xdata_read(addr);
                self.sfr_store(sfr::ACC, v);
                2
            }
            0xf0 => {
                bus.xdata_write(self.dptr(), self.sfr_load(sfr::ACC));
                2
            }
            0xf2 | 0xf3 => {
                let addr = u16::from_le_bytes([self.reg(op & 1), self.sfr_load(sfr::P2)]);
                bus.xdata_write(addr, self.sfr_load(sfr::ACC));
                2
            }
            // MUL / DIV / DA / SWAP / CPL / CLR A
            0xa4 => {
                let p = self.sfr_load(sfr::ACC) as u16 * self.sfr_load(sfr::B) as u16;
                self.sfr_store(sfr::ACC, p as u8);
                self.sfr_store(sfr::B, (p >> 8) as u8);
                self.set_flag(psw::CY, false);
                self.set_flag(psw::OV, p > 0xff);
                4
            }
            0x84 => {
                let a = self.sfr_load(sfr::ACC);
                let b = self.sfr_load(sfr::B);
                self.set_flag(psw::CY, false);
                if let Some(q) = a.checked_div(b) {
                    self.set_flag(psw::OV, false);
                    self.sfr_store(sfr::ACC, q);
                    self.sfr_store(sfr::B, a % b);
                } else {
                    self.set_flag(psw::OV, true);
                }
                4
            }
            0xd4 => {
                // DA A (decimal adjust after addition).
                let mut a = self.sfr_load(sfr::ACC) as u16;
                if a & 0x0f > 9 || self.get_flag(psw::AC) {
                    a += 0x06;
                }
                if a > 0x9f || self.get_flag(psw::CY) || (a >> 4) & 0x0f > 9 {
                    a += 0x60;
                }
                if a > 0xff {
                    self.set_flag(psw::CY, true);
                }
                self.sfr_store(sfr::ACC, a as u8);
                1
            }
            0xc4 => {
                let a = self.sfr_load(sfr::ACC);
                self.sfr_store(sfr::ACC, a.rotate_left(4));
                1
            } // SWAP
            0xe4 => {
                self.sfr_store(sfr::ACC, 0);
                1
            } // CLR A
            0xf4 => {
                let a = self.sfr_load(sfr::ACC);
                self.sfr_store(sfr::ACC, !a);
                1
            } // CPL A
            // Bit ops
            0xc2 => {
                self.bit_write(a, false, bus);
                1
            } // CLR bit
            0xc3 => {
                self.set_flag(psw::CY, false);
                1
            } // CLR C
            0xd2 => {
                self.bit_write(a, true, bus);
                1
            } // SETB bit
            0xd3 => {
                self.set_flag(psw::CY, true);
                1
            } // SETB C
            0xb2 => {
                let v = self.bit_read(a, bus);
                self.bit_write(a, !v, bus);
                1
            } // CPL bit
            0xb3 => {
                let c = self.get_flag(psw::CY);
                self.set_flag(psw::CY, !c);
                1
            } // CPL C
            0x92 => {
                let c = self.get_flag(psw::CY);
                self.bit_write(a, c, bus);
                2
            } // MOV bit,C
            0xa2 => {
                let v = self.bit_read(a, bus);
                self.set_flag(psw::CY, v);
                1
            } // MOV C,bit
            // PUSH / POP
            0xc0 => {
                let v = self.direct_read(a, bus);
                self.push(v);
                2
            }
            0xd0 => {
                let v = self.pop();
                self.direct_write(a, v, bus);
                2
            }
            // XCH / XCHD
            0xc5 => {
                let d = a;
                let v = self.direct_read(d, bus);
                let a = self.sfr_load(sfr::ACC);
                self.direct_write(d, a, bus);
                self.sfr_store(sfr::ACC, v);
                1
            }
            0xc6 | 0xc7 => {
                let r = self.reg(op & 1);
                let v = self.indirect_read(r);
                let a = self.sfr_load(sfr::ACC);
                self.indirect_write(r, a);
                self.sfr_store(sfr::ACC, v);
                1
            }
            0xc8..=0xcf => {
                let n = op & 7;
                let v = self.reg(n);
                let a = self.sfr_load(sfr::ACC);
                self.set_reg(n, a);
                self.sfr_store(sfr::ACC, v);
                1
            }
            0xd6 | 0xd7 => {
                let r = self.reg(op & 1);
                let v = self.indirect_read(r);
                let a = self.sfr_load(sfr::ACC);
                self.indirect_write(r, (v & 0xf0) | (a & 0x0f));
                self.sfr_store(sfr::ACC, (a & 0xf0) | (v & 0x0f));
                1
            }
            // CJNE
            0xb4 => {
                let imm = a;
                let a = self.sfr_load(sfr::ACC);
                self.cjne(a, imm, b);
                2
            }
            0xb5 => {
                let d = a;
                let a = self.sfr_load(sfr::ACC);
                let v = self.direct_read(d, bus);
                self.cjne(a, v, b);
                2
            }
            0xb6 | 0xb7 => {
                let v = self.indirect_read(self.reg(op & 1));
                self.cjne(v, a, b);
                2
            }
            0xb8..=0xbf => {
                let v = self.reg(op & 7);
                self.cjne(v, a, b);
                2
            }
            // DJNZ
            0xd5 => {
                let v = self.direct_read(a, bus).wrapping_sub(1);
                self.direct_write(a, v, bus);
                if v != 0 {
                    self.rel_jump(b);
                }
                2
            }
            0xd8..=0xdf => {
                let n = op & 7;
                let v = self.reg(n).wrapping_sub(1);
                self.set_reg(n, v);
                if v != 0 {
                    self.rel_jump(a);
                }
                2
            }
            0xa5 => 1, // reserved opcode: NOP on this core
        }
    }
}
