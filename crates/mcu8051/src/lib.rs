//! # ascp-mcu8051 — 8051 microcontroller subsystem
//!
//! The programmable digital section of the ASCP platform (reproduction of
//! *Platform Based Design for Automotive Sensor Conditioning*, DATE 2005).
//! The paper's CPU core is the LGPL Oregano MC8051 (§4.2, Fig. 4),
//! surrounded by ROM/RAM, a cache controller and UART on the 8-bit SFR bus,
//! and SPI / timer / watchdog / SRAM controller behind a bridge on a 16-bit
//! bus. This crate rebuilds that subsystem as an instruction-set simulation:
//!
//! - [`cpu`] — full 8051 interpreter (all opcodes, flags, banks, stack,
//!   timers, serial port, five-source two-priority interrupts, machine-cycle
//!   accounting);
//! - [`xlate`] — basic-block predecode / translation cache: each block is
//!   decoded once into micro-ops and replayed by [`cpu::Cpu::step`] with
//!   bit-identical semantics (interrupt sampling stays at instruction
//!   boundaries) at roughly twice the instruction throughput;
//! - [`asm`] — two-pass assembler so firmware lives as readable source;
//! - [`disasm`] — the matching disassembler (debug views, round-trip tests);
//! - [`periph`] — bridge, SPI master + EEPROM, watchdog, capture SRAM,
//!   program-download (cache) controller, and the composed
//!   [`periph::SystemBus`].
//!
//! # Example: assemble and run firmware
//!
//! ```
//! use ascp_mcu8051::{asm::assemble, cpu::{Cpu, NullBus}};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rom = assemble("mov a, #21\nadd a, acc\nhalt: sjmp halt\n")?;
//! let mut cpu = Cpu::new();
//! cpu.load_code(&rom);
//! let mut bus = NullBus;
//! for _ in 0..3 { cpu.step(&mut bus); }
//! assert_eq!(cpu.acc(), 42);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod cpu;
pub mod disasm;
pub mod periph;
pub mod xlate;

#[cfg(test)]
mod cpu_tests;
