//! Two-pass 8051 assembler.
//!
//! The paper's platform firmware (monitoring, communication, boot loaders)
//! is written in low-level code developed alongside the hardware (§2,
//! "low level drivers are provided just after the first stable VHDL").
//! This assembler lets ASCP firmware live as readable source in examples
//! and tests instead of opaque hex arrays.
//!
//! Supported syntax: one instruction per line, `label:` definitions,
//! `;` comments, `ORG addr`, `DB b, b, ...`, `DW w, ...`,
//! `NAME EQU value`, character literals `'x'`, hex `0xNN`/`0NNh`, binary
//! `0bNNNN`, decimal, and `SFR.n` bit notation. All 8051 mnemonics are
//! implemented.
//!
//! # Example
//!
//! ```
//! use ascp_mcu8051::asm::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = assemble(
//!     "start:  mov a, #0x5a\n        mov r0, a\n        sjmp start\n",
//! )?;
//! assert_eq!(image, vec![0x74, 0x5a, 0xf8, 0x80, 0xfb]);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Assembly error with source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// Built-in SFR byte symbols.
fn sfr_symbols() -> HashMap<&'static str, u16> {
    [
        ("P0", 0x80),
        ("SP", 0x81),
        ("DPL", 0x82),
        ("DPH", 0x83),
        ("PCON", 0x87),
        ("TCON", 0x88),
        ("TMOD", 0x89),
        ("TL0", 0x8a),
        ("TL1", 0x8b),
        ("TH0", 0x8c),
        ("TH1", 0x8d),
        ("P1", 0x90),
        ("SCON", 0x98),
        ("SBUF", 0x99),
        ("P2", 0xa0),
        ("IE", 0xa8),
        ("P3", 0xb0),
        ("IP", 0xb8),
        ("PSW", 0xd0),
        ("ACC", 0xe0),
        ("B", 0xf0),
    ]
    .into_iter()
    .collect()
}

/// Built-in bit symbols.
fn bit_symbols() -> HashMap<&'static str, u16> {
    [
        ("IT0", 0x88),
        ("IE0", 0x89),
        ("IT1", 0x8a),
        ("IE1", 0x8b),
        ("TR0", 0x8c),
        ("TF0", 0x8d),
        ("TR1", 0x8e),
        ("TF1", 0x8f),
        ("RI", 0x98),
        ("TI", 0x99),
        ("RB8", 0x9a),
        ("TB8", 0x9b),
        ("REN", 0x9c),
        ("SM2", 0x9d),
        ("SM1", 0x9e),
        ("SM0", 0x9f),
        ("EX0", 0xa8),
        ("ET0", 0xa9),
        ("EX1", 0xaa),
        ("ET1", 0xab),
        ("ES", 0xac),
        ("EA", 0xaf),
        ("P", 0xd0),
        ("OV", 0xd2),
        ("RS0", 0xd3),
        ("RS1", 0xd4),
        ("F0", 0xd5),
        ("AC", 0xd6),
        ("CY", 0xd7),
    ]
    .into_iter()
    .collect()
}

/// One parsed operand.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Operand {
    A,
    Ab,
    C,
    Dptr,
    AtDptr,
    AtAPlusDptr,
    AtAPlusPc,
    Reg(u8),
    AtReg(u8),
    Immediate(String),
    /// `/bit` complement form for ANL/ORL C.
    NotBit(String),
    /// Anything else: a direct address, bit reference or label, resolved
    /// in pass 2 according to the instruction context.
    Expr(String),
}

fn parse_operand(tok: &str) -> Operand {
    let t = tok.trim();
    let u = t.to_ascii_uppercase();
    match u.as_str() {
        "A" => return Operand::A,
        "AB" => return Operand::Ab,
        "C" => return Operand::C,
        "DPTR" => return Operand::Dptr,
        "@DPTR" => return Operand::AtDptr,
        "@A+DPTR" => return Operand::AtAPlusDptr,
        "@A+PC" => return Operand::AtAPlusPc,
        "@R0" => return Operand::AtReg(0),
        "@R1" => return Operand::AtReg(1),
        _ => {}
    }
    if u.len() == 2 && u.starts_with('R') {
        if let Some(d) = u[1..].parse::<u8>().ok().filter(|&d| d < 8) {
            return Operand::Reg(d);
        }
    }
    if let Some(rest) = t.strip_prefix('#') {
        return Operand::Immediate(rest.to_owned());
    }
    if let Some(rest) = t.strip_prefix('/') {
        return Operand::NotBit(rest.to_owned());
    }
    Operand::Expr(t.to_owned())
}

/// Numeric literal / symbol evaluator.
fn eval(
    expr: &str,
    symbols: &HashMap<String, u16>,
    bits: bool,
    line: usize,
) -> Result<u16, AsmError> {
    let t = expr.trim();
    // SFR.bit / symbol.bit notation.
    if bits {
        if let Some((base, bitn)) = t.rsplit_once('.') {
            let bit: u16 = bitn.trim().parse().map_err(|_| AsmError {
                line,
                message: format!("bad bit number in `{t}`"),
            })?;
            if bit > 7 {
                return err(line, format!("bit number {bit} > 7 in `{t}`"));
            }
            let byte = eval(base, symbols, false, line)?;
            return if byte >= 0x80 {
                if byte % 8 != 0 {
                    err(line, format!("SFR {byte:#x} is not bit-addressable"))
                } else {
                    Ok(byte | bit)
                }
            } else if (0x20..0x30).contains(&byte) {
                Ok((byte - 0x20) * 8 + bit)
            } else {
                err(line, format!("address {byte:#x} is not bit-addressable"))
            };
        }
        if let Some(&b) = bit_symbols().get(t.to_ascii_uppercase().as_str()) {
            return Ok(b);
        }
    }
    if let Some(&v) = symbols.get(&t.to_ascii_uppercase()) {
        return Ok(v);
    }
    if let Some(&v) = sfr_symbols().get(t.to_ascii_uppercase().as_str()) {
        return Ok(v);
    }
    // Character literal.
    if t.len() == 3 && t.starts_with('\'') && t.ends_with('\'') {
        return Ok(t.as_bytes()[1] as u16);
    }
    let (digits, radix) = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (h, 16)
    } else if let Some(b) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        (b, 2)
    } else if t.len() > 1 && (t.ends_with('h') || t.ends_with('H')) {
        (&t[..t.len() - 1], 16)
    } else {
        (t, 10)
    };
    u16::from_str_radix(digits, radix).map_or_else(
        |_| err(line, format!("undefined symbol or bad literal `{t}`")),
        Ok,
    )
}

/// A source line after tokenization.
#[derive(Debug)]
struct Item {
    line: usize,
    mnemonic: String,
    operands: Vec<Operand>,
    /// Raw operand strings (needed for DB/DW expressions).
    raw: Vec<String>,
}

/// Splits operands on commas that are not inside character literals.
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_char = false;
    for ch in s.chars() {
        match ch {
            '\'' => {
                in_char = !in_char;
                cur.push(ch);
            }
            ',' if !in_char => {
                out.push(cur.trim().to_owned());
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_owned());
    }
    out
}

/// Instruction size in bytes, determined by mnemonic and operand shapes.
fn size_of(item: &Item) -> Result<usize, AsmError> {
    use Operand::*;
    let m = item.mnemonic.as_str();
    let ops = &item.operands;
    let n = match (m, ops.as_slice()) {
        ("NOP" | "RET" | "RETI", _) => 1,
        ("RR" | "RRC" | "RL" | "RLC" | "SWAP" | "DA", [A]) => 1,
        ("CLR" | "CPL" | "SETB", [A | C]) => 1,
        ("CLR" | "CPL" | "SETB", [_]) => 2,
        ("INC" | "DEC", [A | Reg(_) | AtReg(_)]) => 1,
        ("INC", [Dptr]) => 1,
        ("INC" | "DEC", [Expr(_)]) => 2,
        ("MUL" | "DIV", [Ab]) => 1,
        ("LJMP" | "LCALL", [_]) => 3,
        ("AJMP" | "ACALL", [_]) => 2,
        ("SJMP" | "JC" | "JNC" | "JZ" | "JNZ", [_]) => 2,
        ("JMP", [AtAPlusDptr]) => 1,
        ("JB" | "JNB" | "JBC", [_, _]) => 3,
        ("ADD" | "ADDC" | "SUBB" | "ORL" | "ANL" | "XRL", [A, Reg(_) | AtReg(_)]) => 1,
        ("ADD" | "ADDC" | "SUBB" | "ORL" | "ANL" | "XRL", [A, Immediate(_) | Expr(_)]) => 2,
        ("ORL" | "ANL" | "XRL", [Expr(_), A]) => 2,
        ("ORL" | "ANL" | "XRL", [Expr(_), Immediate(_)]) => 3,
        ("ORL" | "ANL", [C, Expr(_) | NotBit(_)]) => 2,
        ("MOV", [A, Reg(_) | AtReg(_)]) => 1,
        ("MOV", [Reg(_) | AtReg(_), A]) => 1,
        ("MOV", [A, Immediate(_)]) => 2,
        ("MOV", [A, Expr(_)]) => 2,
        ("MOV", [Expr(_), A]) => 2,
        ("MOV", [Reg(_) | AtReg(_), Immediate(_)]) => 2,
        ("MOV", [Reg(_) | AtReg(_), Expr(_)]) => 2,
        ("MOV", [Expr(_), Reg(_) | AtReg(_)]) => 2,
        ("MOV", [Expr(_), Immediate(_)]) => 3,
        ("MOV", [Expr(_), Expr(_)]) => 3,
        ("MOV", [Dptr, Immediate(_)]) => 3,
        ("MOV", [C, Expr(_)]) => 2,
        ("MOV", [Expr(_), C]) => 2,
        ("MOVC", [A, AtAPlusDptr | AtAPlusPc]) => 1,
        ("MOVX", [A, AtDptr | AtReg(_)]) => 1,
        ("MOVX", [AtDptr | AtReg(_), A]) => 1,
        ("PUSH" | "POP", [_]) => 2,
        ("XCH", [A, Reg(_) | AtReg(_)]) => 1,
        ("XCH", [A, Expr(_)]) => 2,
        ("XCHD", [A, AtReg(_)]) => 1,
        ("CJNE", [_, _, _]) => 3,
        ("DJNZ", [Reg(_), _]) => 2,
        ("DJNZ", [Expr(_), _]) => 3,
        _ => {
            return err(
                item.line,
                format!("unsupported instruction `{m}` with these operands"),
            )
        }
    };
    Ok(n)
}

struct Encoder<'a> {
    symbols: &'a HashMap<String, u16>,
}

impl Encoder<'_> {
    fn byte(&self, s: &str, line: usize) -> Result<u8, AsmError> {
        let v = eval(s, self.symbols, false, line)?;
        if v > 0xff {
            return err(line, format!("value {v:#x} does not fit in a byte"));
        }
        Ok(v as u8)
    }

    fn bit(&self, s: &str, line: usize) -> Result<u8, AsmError> {
        let v = eval(s, self.symbols, true, line)?;
        if v > 0xff {
            return err(line, format!("bit address {v:#x} out of range"));
        }
        Ok(v as u8)
    }

    fn rel(&self, s: &str, pc_after: u16, line: usize) -> Result<u8, AsmError> {
        let target = eval(s, self.symbols, false, line)?;
        // The 8051 PC wraps at 64 KiB, so the shortest signed distance is
        // taken modulo 2^16 (a branch at 0x0002 can legally target 0xFFF0).
        let delta = i32::from(target.wrapping_sub(pc_after) as i16);
        if !(-128..=127).contains(&delta) {
            return err(
                line,
                format!("branch target {delta} bytes away exceeds ±128 (use LJMP)"),
            );
        }
        Ok(delta as u8)
    }

    #[allow(clippy::too_many_lines)]
    fn encode(&self, item: &Item, pc: u16) -> Result<Vec<u8>, AsmError> {
        use Operand::*;
        let m = item.mnemonic.as_str();
        let ops = &item.operands;
        let ln = item.line;
        let out: Vec<u8> = match (m, ops.as_slice()) {
            ("NOP", _) => vec![0x00],
            ("RET", _) => vec![0x22],
            ("RETI", _) => vec![0x32],
            ("RR", [A]) => vec![0x03],
            ("RRC", [A]) => vec![0x13],
            ("RL", [A]) => vec![0x23],
            ("RLC", [A]) => vec![0x33],
            ("SWAP", [A]) => vec![0xc4],
            ("DA", [A]) => vec![0xd4],
            ("CLR", [A]) => vec![0xe4],
            ("CLR", [C]) => vec![0xc3],
            ("CLR", [Expr(b)]) => vec![0xc2, self.bit(b, ln)?],
            ("CPL", [A]) => vec![0xf4],
            ("CPL", [C]) => vec![0xb3],
            ("CPL", [Expr(b)]) => vec![0xb2, self.bit(b, ln)?],
            ("SETB", [C]) => vec![0xd3],
            ("SETB", [Expr(b)]) => vec![0xd2, self.bit(b, ln)?],
            ("INC", [A]) => vec![0x04],
            ("INC", [Dptr]) => vec![0xa3],
            ("INC", [Reg(r)]) => vec![0x08 | r],
            ("INC", [AtReg(r)]) => vec![0x06 | r],
            ("INC", [Expr(d)]) => vec![0x05, self.byte(d, ln)?],
            ("DEC", [A]) => vec![0x14],
            ("DEC", [Reg(r)]) => vec![0x18 | r],
            ("DEC", [AtReg(r)]) => vec![0x16 | r],
            ("DEC", [Expr(d)]) => vec![0x15, self.byte(d, ln)?],
            ("MUL", [Ab]) => vec![0xa4],
            ("DIV", [Ab]) => vec![0x84],
            ("LJMP", [Expr(t)]) => {
                let a = eval(t, self.symbols, false, ln)?;
                vec![0x02, (a >> 8) as u8, a as u8]
            }
            ("LCALL", [Expr(t)]) => {
                let a = eval(t, self.symbols, false, ln)?;
                vec![0x12, (a >> 8) as u8, a as u8]
            }
            ("AJMP", [Expr(t)]) => {
                let a = eval(t, self.symbols, false, ln)?;
                self.a11(0x01, a, pc + 2, ln)?
            }
            ("ACALL", [Expr(t)]) => {
                let a = eval(t, self.symbols, false, ln)?;
                self.a11(0x11, a, pc + 2, ln)?
            }
            ("SJMP", [Expr(t)]) => vec![0x80, self.rel(t, pc + 2, ln)?],
            ("JC", [Expr(t)]) => vec![0x40, self.rel(t, pc + 2, ln)?],
            ("JNC", [Expr(t)]) => vec![0x50, self.rel(t, pc + 2, ln)?],
            ("JZ", [Expr(t)]) => vec![0x60, self.rel(t, pc + 2, ln)?],
            ("JNZ", [Expr(t)]) => vec![0x70, self.rel(t, pc + 2, ln)?],
            ("JMP", [AtAPlusDptr]) => vec![0x73],
            ("JB", [Expr(b), Expr(t)]) => {
                vec![0x20, self.bit(b, ln)?, self.rel(t, pc + 3, ln)?]
            }
            ("JNB", [Expr(b), Expr(t)]) => {
                vec![0x30, self.bit(b, ln)?, self.rel(t, pc + 3, ln)?]
            }
            ("JBC", [Expr(b), Expr(t)]) => {
                vec![0x10, self.bit(b, ln)?, self.rel(t, pc + 3, ln)?]
            }
            ("ADD", [A, rhs]) => self.alu(0x24, rhs, ln)?,
            ("ADDC", [A, rhs]) => self.alu(0x34, rhs, ln)?,
            ("SUBB", [A, rhs]) => self.alu(0x94, rhs, ln)?,
            ("ORL", [A, rhs]) => self.alu(0x44, rhs, ln)?,
            ("ANL", [A, rhs]) => self.alu(0x54, rhs, ln)?,
            ("XRL", [A, rhs]) => self.alu(0x64, rhs, ln)?,
            ("ORL", [Expr(d), A]) => vec![0x42, self.byte(d, ln)?],
            ("ANL", [Expr(d), A]) => vec![0x52, self.byte(d, ln)?],
            ("XRL", [Expr(d), A]) => vec![0x62, self.byte(d, ln)?],
            ("ORL", [Expr(d), Immediate(i)]) => {
                vec![0x43, self.byte(d, ln)?, self.byte(i, ln)?]
            }
            ("ANL", [Expr(d), Immediate(i)]) => {
                vec![0x53, self.byte(d, ln)?, self.byte(i, ln)?]
            }
            ("XRL", [Expr(d), Immediate(i)]) => {
                vec![0x63, self.byte(d, ln)?, self.byte(i, ln)?]
            }
            ("ORL", [C, Expr(b)]) => vec![0x72, self.bit(b, ln)?],
            ("ORL", [C, NotBit(b)]) => vec![0xa0, self.bit(b, ln)?],
            ("ANL", [C, Expr(b)]) => vec![0x82, self.bit(b, ln)?],
            ("ANL", [C, NotBit(b)]) => vec![0xb0, self.bit(b, ln)?],
            ("MOV", [A, Immediate(i)]) => vec![0x74, self.byte(i, ln)?],
            ("MOV", [A, Reg(r)]) => vec![0xe8 | r],
            ("MOV", [A, AtReg(r)]) => vec![0xe6 | r],
            ("MOV", [A, Expr(d)]) => vec![0xe5, self.byte(d, ln)?],
            ("MOV", [Reg(r), A]) => vec![0xf8 | r],
            ("MOV", [AtReg(r), A]) => vec![0xf6 | r],
            ("MOV", [Expr(d), A]) => vec![0xf5, self.byte(d, ln)?],
            ("MOV", [Reg(r), Immediate(i)]) => vec![0x78 | r, self.byte(i, ln)?],
            ("MOV", [AtReg(r), Immediate(i)]) => vec![0x76 | r, self.byte(i, ln)?],
            ("MOV", [Reg(r), Expr(d)]) => vec![0xa8 | r, self.byte(d, ln)?],
            ("MOV", [AtReg(r), Expr(d)]) => vec![0xa6 | r, self.byte(d, ln)?],
            ("MOV", [Expr(d), Reg(r)]) => vec![0x88 | r, self.byte(d, ln)?],
            ("MOV", [Expr(d), AtReg(r)]) => vec![0x86 | r, self.byte(d, ln)?],
            ("MOV", [Expr(d), Immediate(i)]) => {
                vec![0x75, self.byte(d, ln)?, self.byte(i, ln)?]
            }
            // MOV dest,src encodes src first.
            ("MOV", [Expr(dst), Expr(src)]) => {
                vec![0x85, self.byte(src, ln)?, self.byte(dst, ln)?]
            }
            ("MOV", [Dptr, Immediate(i)]) => {
                let v = eval(i, self.symbols, false, ln)?;
                vec![0x90, (v >> 8) as u8, v as u8]
            }
            ("MOV", [C, Expr(b)]) => vec![0xa2, self.bit(b, ln)?],
            ("MOV", [Expr(b), C]) => vec![0x92, self.bit(b, ln)?],
            ("MOVC", [A, AtAPlusDptr]) => vec![0x93],
            ("MOVC", [A, AtAPlusPc]) => vec![0x83],
            ("MOVX", [A, AtDptr]) => vec![0xe0],
            ("MOVX", [A, AtReg(r)]) => vec![0xe2 | r],
            ("MOVX", [AtDptr, A]) => vec![0xf0],
            ("MOVX", [AtReg(r), A]) => vec![0xf2 | r],
            ("PUSH", [Expr(d)]) => vec![0xc0, self.byte(d, ln)?],
            ("POP", [Expr(d)]) => vec![0xd0, self.byte(d, ln)?],
            ("XCH", [A, Reg(r)]) => vec![0xc8 | r],
            ("XCH", [A, AtReg(r)]) => vec![0xc6 | r],
            ("XCH", [A, Expr(d)]) => vec![0xc5, self.byte(d, ln)?],
            ("XCHD", [A, AtReg(r)]) => vec![0xd6 | r],
            ("CJNE", [A, Immediate(i), Expr(t)]) => {
                vec![0xb4, self.byte(i, ln)?, self.rel(t, pc + 3, ln)?]
            }
            ("CJNE", [A, Expr(d), Expr(t)]) => {
                vec![0xb5, self.byte(d, ln)?, self.rel(t, pc + 3, ln)?]
            }
            ("CJNE", [AtReg(r), Immediate(i), Expr(t)]) => {
                vec![0xb6 | r, self.byte(i, ln)?, self.rel(t, pc + 3, ln)?]
            }
            ("CJNE", [Reg(r), Immediate(i), Expr(t)]) => {
                vec![0xb8 | r, self.byte(i, ln)?, self.rel(t, pc + 3, ln)?]
            }
            ("DJNZ", [Reg(r), Expr(t)]) => vec![0xd8 | r, self.rel(t, pc + 2, ln)?],
            ("DJNZ", [Expr(d), Expr(t)]) => {
                vec![0xd5, self.byte(d, ln)?, self.rel(t, pc + 3, ln)?]
            }
            _ => {
                return err(
                    ln,
                    format!("unsupported instruction `{m}` with these operands"),
                )
            }
        };
        Ok(out)
    }

    fn alu(&self, base: u8, rhs: &Operand, line: usize) -> Result<Vec<u8>, AsmError> {
        Ok(match rhs {
            Operand::Immediate(i) => vec![base, self.byte(i, line)?],
            Operand::Expr(d) => vec![base | 0x01, self.byte(d, line)?],
            Operand::AtReg(r) => vec![base | 0x02 | r],
            // Register forms live at (row | 0x08 | r): plain OR with the
            // 0x.4 immediate base would collide r0..r3 with r4..r7.
            Operand::Reg(r) => vec![(base & 0xf0) | 0x08 | r],
            _ => return err(line, "bad ALU operand"),
        })
    }

    fn a11(&self, base: u8, target: u16, pc_after: u16, line: usize) -> Result<Vec<u8>, AsmError> {
        if target & 0xf800 != pc_after & 0xf800 {
            return err(
                line,
                format!("AJMP/ACALL target {target:#06x} outside the 2 KiB page"),
            );
        }
        let page = ((target >> 8) & 0x07) as u8;
        Ok(vec![base | (page << 5), target as u8])
    }
}

/// Assembles 8051 source into a ROM image (origin 0).
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the 1-based line number for syntax
/// errors, undefined symbols, range violations (branch too far, byte
/// overflow) and unsupported operand combinations.
pub fn assemble(source: &str) -> Result<Vec<u8>, AsmError> {
    let mut symbols: HashMap<String, u16> = HashMap::new();
    let mut items: Vec<(u16, Item)> = Vec::new();
    let mut pc: u16 = 0;

    // Pass 1: labels, EQU, sizes.
    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut text = raw_line;
        if let Some(p) = find_comment(text) {
            text = &text[..p];
        }
        let mut text = text.trim();
        // Labels (possibly several).
        while let Some(colon) = find_label_colon(text) {
            let label = text[..colon].trim();
            if label.is_empty() || !is_ident(label) {
                return err(line_no, format!("bad label `{label}`"));
            }
            if symbols.insert(label.to_ascii_uppercase(), pc).is_some() {
                return err(line_no, format!("duplicate label `{label}`"));
            }
            text = text[colon + 1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m.to_ascii_uppercase(), r.trim()),
            None => (text.to_ascii_uppercase(), ""),
        };
        // EQU: `NAME EQU value` (the first token is the symbol name).
        let upper_rest = rest.to_ascii_uppercase();
        if upper_rest == "EQU" {
            return err(line_no, "EQU requires `NAME EQU value` form");
        }
        if let Some(value_str) = upper_rest
            .strip_prefix("EQU")
            .filter(|r| r.starts_with(char::is_whitespace))
            .map(|_| rest[3..].trim())
        {
            let value = eval(value_str, &symbols, false, line_no)?;
            symbols.insert(mnemonic, value);
            continue;
        }
        match mnemonic.as_str() {
            "ORG" => {
                pc = eval(rest, &symbols, false, line_no)?;
                continue;
            }
            "DB" | "DW" => {
                let raw = split_operands(rest);
                let size = raw.len() * if mnemonic == "DB" { 1 } else { 2 };
                items.push((
                    pc,
                    Item {
                        line: line_no,
                        mnemonic,
                        operands: Vec::new(),
                        raw,
                    },
                ));
                pc = pc.wrapping_add(size as u16);
                continue;
            }
            _ => {}
        }
        let operands: Vec<Operand> = split_operands(rest)
            .iter()
            .map(|s| parse_operand(s))
            .collect();
        let item = Item {
            line: line_no,
            mnemonic,
            operands,
            raw: Vec::new(),
        };
        let size = size_of(&item)? as u16;
        items.push((pc, item));
        pc = pc.wrapping_add(size);
    }

    // Pass 2: encode.
    let enc = Encoder { symbols: &symbols };
    let mut image = Vec::new();
    for (addr, item) in &items {
        let bytes = match item.mnemonic.as_str() {
            "DB" => {
                let mut v = Vec::new();
                for r in &item.raw {
                    v.push(enc.byte(r, item.line)?);
                }
                v
            }
            "DW" => {
                let mut v = Vec::new();
                for r in &item.raw {
                    let w = eval(r, &symbols, false, item.line)?;
                    v.push((w >> 8) as u8);
                    v.push(w as u8);
                }
                v
            }
            _ => enc.encode(item, *addr)?,
        };
        let end = *addr as usize + bytes.len();
        if image.len() < end {
            image.resize(end, 0);
        }
        image[*addr as usize..end].copy_from_slice(&bytes);
    }
    Ok(image)
}

fn find_comment(s: &str) -> Option<usize> {
    let mut in_char = false;
    for (i, ch) in s.char_indices() {
        match ch {
            '\'' => in_char = !in_char,
            ';' if !in_char => return Some(i),
            _ => {}
        }
    }
    None
}

fn find_label_colon(s: &str) -> Option<usize> {
    // A label is `ident:` at the start of the line.
    let head: String = s.chars().take_while(|c| *c != ':').collect();
    if s.len() > head.len() && is_ident(head.trim()) && !head.trim().is_empty() {
        Some(head.len())
    } else {
        None
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_instructions() {
        let img = assemble("nop\nret\nclr a\ncpl c\n").unwrap();
        assert_eq!(img, vec![0x00, 0x22, 0xe4, 0xb3]);
    }

    #[test]
    fn mov_forms() {
        let img = assemble(
            "mov a, #0x12\nmov r3, a\nmov a, r3\nmov 0x30, #0x55\nmov a, @r0\nmov dptr, #0x1234\n",
        )
        .unwrap();
        assert_eq!(
            img,
            vec![0x74, 0x12, 0xfb, 0xeb, 0x75, 0x30, 0x55, 0xe6, 0x90, 0x12, 0x34]
        );
    }

    #[test]
    fn mov_direct_direct_encodes_src_first() {
        let img = assemble("mov 0x40, 0x30\n").unwrap();
        assert_eq!(img, vec![0x85, 0x30, 0x40]);
    }

    #[test]
    fn labels_and_branches() {
        let img = assemble("start: djnz r2, start\n sjmp start\n").unwrap();
        assert_eq!(img, vec![0xda, 0xfe, 0x80, 0xfc]);
    }

    #[test]
    fn forward_references() {
        let img = assemble("sjmp done\nnop\ndone: ret\n").unwrap();
        assert_eq!(img, vec![0x80, 0x01, 0x00, 0x22]);
    }

    #[test]
    fn sfr_names_resolve() {
        let img = assemble("mov sbuf, a\nmov a, p1\n").unwrap();
        assert_eq!(img, vec![0xf5, 0x99, 0xe5, 0x90]);
    }

    #[test]
    fn bit_notation() {
        let img = assemble("setb p1.3\nclr ti\njb ri, $0\n$0: ret\n");
        // `$0` is not a valid identifier — use a plain label instead.
        assert!(img.is_err());
        let img = assemble("setb p1.3\nclr ti\nhere: jb ri, here\nret\n").unwrap();
        assert_eq!(img, vec![0xd2, 0x93, 0xc2, 0x99, 0x20, 0x98, 0xfd, 0x22]);
    }

    #[test]
    fn iram_bit_addressing() {
        // Bit 5 of IRAM byte 0x2f = bit address (0x2f-0x20)*8+5 = 0x7d.
        let img = assemble("setb 0x2f.5\n").unwrap();
        assert_eq!(img, vec![0xd2, 0x7d]);
    }

    #[test]
    fn org_and_db_dw() {
        let img = assemble("org 0x10\ndb 1, 2, 'A'\ndw 0x1234\n").unwrap();
        assert_eq!(img.len(), 0x10 + 5);
        assert_eq!(&img[0x10..], &[1, 2, 0x41, 0x12, 0x34]);
    }

    #[test]
    fn equ_defines_symbols() {
        let img = assemble("LED EQU 0x90\nmov LED, #1\n").unwrap();
        assert_eq!(img, vec![0x75, 0x90, 0x01]);
    }

    #[test]
    fn ljmp_lcall() {
        let img = assemble("ljmp 0x1234\nlcall 0x0100\n").unwrap();
        assert_eq!(img, vec![0x02, 0x12, 0x34, 0x12, 0x01, 0x00]);
    }

    #[test]
    fn ajmp_page_check() {
        let err = assemble("org 0x07f0\najmp 0x1000\n").unwrap_err();
        assert!(err.message.contains("page"), "{err}");
    }

    #[test]
    fn branch_out_of_range_is_error() {
        let src = "start: nop\norg 0x200\nsjmp start\n";
        let err = assemble(src).unwrap_err();
        assert!(err.message.contains("±128"), "{err}");
        assert_eq!(err.line, 3);
    }

    #[test]
    fn undefined_symbol_reports_line() {
        let err = assemble("nop\nmov a, nosuch\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("nosuch"));
    }

    #[test]
    fn duplicate_label_is_error() {
        let err = assemble("x: nop\nx: nop\n").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn comments_ignored() {
        let img = assemble("; full line\nnop ; trailing\n").unwrap();
        assert_eq!(img, vec![0x00]);
    }

    #[test]
    fn alu_encodings() {
        let img = assemble("add a, #5\nadd a, 0x30\nadd a, @r1\nadd a, r7\nsubb a, #1\n").unwrap();
        assert_eq!(img, vec![0x24, 5, 0x25, 0x30, 0x27, 0x2f, 0x94, 1]);
    }

    #[test]
    fn cjne_forms() {
        let img = assemble("loop: cjne a, #3, loop\ncjne r0, #1, loop\n").unwrap();
        assert_eq!(img, vec![0xb4, 3, 0xfd, 0xb8, 1, 0xfa]);
    }

    #[test]
    fn movx_and_movc() {
        let img =
            assemble("movx a, @dptr\nmovx @dptr, a\nmovc a, @a+dptr\nmovc a, @a+pc\n").unwrap();
        assert_eq!(img, vec![0xe0, 0xf0, 0x93, 0x83]);
    }

    #[test]
    fn hex_suffix_and_binary_literals() {
        let img = assemble("mov a, #0ffh\nmov a, #0b1010\n").unwrap();
        assert_eq!(img, vec![0x74, 0xff, 0x74, 0x0a]);
    }
}
