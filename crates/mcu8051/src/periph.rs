//! Platform peripherals around the 8051 core.
//!
//! Paper §4.2 and Fig. 4: "Cache controller and UART are located on the
//! 8051 Special Function Register (SFR) Bus (8-bit), while the other
//! peripherals (SPI, timer, watchdog, and SRAM controller) are accessed via
//! a custom bridge by means of a 16-bit bus." The UART is inside
//! [`crate::cpu::Cpu`] (as on real 8051s); everything else lives here:
//!
//! - the bridge SFR window ([`bridge_sfr`]) onto the 16-bit bus;
//! - [`Spi`] — master port with pluggable [`SpiSlave`] (e.g. the boot
//!   [`SpiEeprom`]);
//! - [`Watchdog`] — safety timer with kick/expiry;
//! - [`SramController`] — captures real-time DSP samples into the 512 Kbit
//!   prototype SRAM for later read-back (§4.2);
//! - [`CacheController`] — program-memory write path for software download
//!   ("newer software versions could be downloaded and tested");
//! - [`SystemBus`] — composes all of the above into the CPU's
//!   [`crate::cpu::ExternalBus`].

use crate::cpu::ExternalBus;
use ascp_sim::noise::Rng64;
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};
use std::collections::VecDeque;

/// A device on the bridged 16-bit peripheral bus.
pub trait Bus16Device {
    /// Reads register `reg` (device-local address).
    fn read16(&mut self, reg: u8) -> u16;

    /// Writes register `reg`.
    fn write16(&mut self, reg: u8, value: u16);
}

/// SFR addresses of the bridge window.
pub mod bridge_sfr {
    /// Peripheral-bus address register.
    pub const ADDR: u8 = 0xa1;
    /// Data low byte.
    pub const DATA_LO: u8 = 0xa2;
    /// Data high byte.
    pub const DATA_HI: u8 = 0xa3;
    /// Control/strobe: write 1 = read strobe, 2 = write strobe.
    pub const CTRL: u8 = 0xa4;
}

/// SFR addresses of the cache/program-download controller.
pub mod cache_sfr {
    /// Program-memory write address, low byte.
    pub const ADDR_LO: u8 = 0x91;
    /// Program-memory write address, high byte.
    pub const ADDR_HI: u8 = 0x92;
    /// Data byte; writing strobes the program write and auto-increments.
    pub const DATA: u8 = 0x93;
    /// Status: bit 0 = ready.
    pub const STATUS: u8 = 0x94;
}

/// Peripheral-bus address map (high nibble of the bridge address).
pub mod map {
    /// SPI master: 0x00..=0x0f.
    pub const SPI_BASE: u8 = 0x00;
    /// Watchdog: 0x10..=0x1f.
    pub const WDOG_BASE: u8 = 0x10;
    /// SRAM controller: 0x20..=0x2f.
    pub const SRAM_BASE: u8 = 0x20;
    /// Platform/DSP registers: 0x40 and up (mapped by the platform crate).
    pub const DSP_BASE: u8 = 0x40;
}

/// SPI slave device (e.g. an EEPROM) seen by the [`Spi`] master.
pub trait SpiSlave {
    /// Full-duplex byte transfer while selected.
    fn transfer(&mut self, mosi: u8) -> u8;

    /// Chip-select edge; `false` = deselected (command boundary).
    fn set_selected(&mut self, selected: bool);

    /// Serializes slave-internal state for platform checkpointing.
    ///
    /// The default writes nothing — correct only for stateless slaves.
    /// Slaves with memory or a command state machine (e.g. [`SpiEeprom`])
    /// must override both hooks symmetrically.
    fn save_state(&self, w: &mut StateWriter) {
        let _ = w;
    }

    /// Restores state written by [`SpiSlave::save_state`].
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let _ = r;
        Ok(())
    }
}

/// SPI master registers (device-local): 0 = CTRL (bit0 CS), 1 = DATA
/// (write: start transfer; read: last response), 2 = STATUS (bit0 done).
#[derive(Default)]
pub struct Spi {
    slave: Option<Box<dyn SpiSlave>>,
    cs: bool,
    last_rx: u8,
    transfers: u64,
    /// Injected line fault: per-byte corruption probability and generator.
    fault: Option<(f64, Rng64)>,
    /// Transfers whose response byte the controller's parity/CRC check
    /// flagged (monotonic).
    line_errors: u64,
}

impl std::fmt::Debug for Spi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Spi")
            .field("cs", &self.cs)
            .field("last_rx", &self.last_rx)
            .field("transfers", &self.transfers)
            .field("line_errors", &self.line_errors)
            .finish()
    }
}

impl Spi {
    /// Creates a master with no slave attached (reads float 0xFF).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a slave device.
    pub fn attach(&mut self, slave: Box<dyn SpiSlave>) {
        self.slave = Some(slave);
    }

    /// Detaches and returns the slave.
    pub fn detach(&mut self) -> Option<Box<dyn SpiSlave>> {
        self.slave.take()
    }

    /// Total byte transfers performed.
    #[must_use]
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Fault injection: corrupts transferred bytes with per-byte
    /// probability `rate`, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is in `[0, 1]`.
    pub fn set_fault(&mut self, rate: f64, seed: u64) {
        assert!((0.0..=1.0).contains(&rate), "corruption rate {rate}");
        self.fault = Some((rate, Rng64::new(seed)));
    }

    /// Removes an injected line fault.
    pub fn clear_fault(&mut self) {
        self.fault = None;
    }

    /// Transfers flagged corrupt by the controller's parity check
    /// (single-bit flips always detect). Monotonic.
    #[must_use]
    pub fn line_errors(&self) -> u64 {
        self.line_errors
    }

    /// Supervisor line probe: when the bus is idle (CS deselected), clocks
    /// one harmless `0x00` byte through a transient select and checks the
    /// `0xff` fill the slave (or open bus) returns. Returns `None` when a
    /// firmware transaction is in flight (the probe never interferes), or
    /// `Some(clean)` with the probe verdict.
    pub fn probe(&mut self) -> Option<bool> {
        if self.cs {
            return None;
        }
        if let Some(s) = self.slave.as_mut() {
            s.set_selected(true);
        }
        let rx = self.raw_transfer(0x00);
        if let Some(s) = self.slave.as_mut() {
            s.set_selected(false);
        }
        Some(rx == 0xff)
    }

    /// Serializes controller state and (via its [`SpiSlave::save_state`]
    /// hook) the attached slave.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_bool(self.cs);
        w.put_u8(self.last_rx);
        w.put_u64(self.transfers);
        w.put_bool(self.fault.is_some());
        if let Some((rate, rng)) = &self.fault {
            w.put_f64(*rate);
            rng.save_state(w);
        }
        w.put_u64(self.line_errors);
        w.put_bool(self.slave.is_some());
        if let Some(slave) = &self.slave {
            slave.save_state(w);
        }
    }

    /// Restores state saved by [`Spi::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] if the snapshot's slave presence
    /// does not match this controller, or on out-of-range fields.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.cs = r.take_bool()?;
        self.last_rx = r.take_u8()?;
        self.transfers = r.take_u64()?;
        if r.take_bool()? {
            let rate = r.take_f64()?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(SnapshotError::Corrupt {
                    context: format!("SPI fault rate {rate} outside [0, 1]"),
                });
            }
            let mut rng = Rng64::new(1);
            rng.load_state(r)?;
            self.fault = Some((rate, rng));
        } else {
            self.fault = None;
        }
        self.line_errors = r.take_u64()?;
        let has_slave = r.take_bool()?;
        if has_slave != self.slave.is_some() {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "SPI snapshot slave presence {has_slave}, controller has slave: {}",
                    self.slave.is_some()
                ),
            });
        }
        if let Some(slave) = self.slave.as_mut() {
            slave.load_state(r)?;
        }
        Ok(())
    }

    /// One byte on the wire, applying an injected fault to the response.
    fn raw_transfer(&mut self, mosi: u8) -> u8 {
        self.transfers += 1;
        let mut rx = self.slave.as_mut().map_or(0xff, |s| s.transfer(mosi));
        if let Some((rate, rng)) = &mut self.fault {
            if rng.next_f64() < *rate {
                rx ^= 1 << (rng.next_u64() % 8);
                self.line_errors += 1;
            }
        }
        self.last_rx = rx;
        rx
    }
}

impl Bus16Device for Spi {
    fn read16(&mut self, reg: u8) -> u16 {
        match reg {
            0 => u16::from(self.cs),
            1 => self.last_rx as u16,
            2 => 1, // transfers complete immediately in this model
            _ => 0xffff,
        }
    }

    fn write16(&mut self, reg: u8, value: u16) {
        match reg {
            0 => {
                let cs = value & 1 != 0;
                if cs != self.cs {
                    self.cs = cs;
                    if let Some(s) = self.slave.as_mut() {
                        s.set_selected(cs);
                    }
                }
            }
            1 if self.cs => {
                let _ = self.raw_transfer(value as u8);
            }
            _ => {}
        }
    }
}

/// 25xx-series SPI EEPROM (READ/WRITE/WREN/RDSR), used for "reboot directly
/// from EEPROM instead of downloading each time after reset" (§4.2).
#[derive(Debug, Clone)]
pub struct SpiEeprom {
    memory: Vec<u8>,
    /// Command state machine.
    state: EepromState,
    write_enabled: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EepromState {
    Idle,
    AddrHi(u8),
    AddrLo {
        cmd: u8,
        hi: u8,
    },
    Stream {
        cmd: u8,
        addr: u16,
    },
    /// RDSR selected: every following byte returns the status register.
    Status,
}

impl SpiEeprom {
    /// READ command.
    pub const CMD_READ: u8 = 0x03;
    /// WRITE command.
    pub const CMD_WRITE: u8 = 0x02;
    /// Write-enable command.
    pub const CMD_WREN: u8 = 0x06;
    /// Read-status command.
    pub const CMD_RDSR: u8 = 0x05;

    /// Creates an EEPROM of `size` bytes filled with 0xFF.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or exceeds 64 KiB.
    #[must_use]
    pub fn new(size: usize) -> Self {
        assert!(size > 0 && size <= 0x1_0000, "EEPROM size out of range");
        Self {
            memory: vec![0xff; size],
            state: EepromState::Idle,
            write_enabled: false,
        }
    }

    /// Pre-loads an image at offset 0 (factory programming).
    ///
    /// # Panics
    ///
    /// Panics if the image is larger than the EEPROM.
    pub fn load(&mut self, image: &[u8]) {
        assert!(image.len() <= self.memory.len(), "image larger than EEPROM");
        self.memory[..image.len()].copy_from_slice(image);
    }

    /// Direct memory view (verification).
    #[must_use]
    pub fn memory(&self) -> &[u8] {
        &self.memory
    }
}

impl SpiSlave for SpiEeprom {
    /// Serializes the memory array, command state machine and WREN latch.
    fn save_state(&self, w: &mut StateWriter) {
        w.put_u8_slice(&self.memory);
        match self.state {
            EepromState::Idle => w.put_u8(0),
            EepromState::AddrHi(cmd) => {
                w.put_u8(1);
                w.put_u8(cmd);
            }
            EepromState::AddrLo { cmd, hi } => {
                w.put_u8(2);
                w.put_u8(cmd);
                w.put_u8(hi);
            }
            EepromState::Stream { cmd, addr } => {
                w.put_u8(3);
                w.put_u8(cmd);
                w.put_u16(addr);
            }
            EepromState::Status => w.put_u8(4),
        }
        w.put_bool(self.write_enabled);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let memory = r.take_u8_vec()?;
        if memory.len() != self.memory.len() {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "EEPROM snapshot of {} bytes, device has {}",
                    memory.len(),
                    self.memory.len()
                ),
            });
        }
        self.memory = memory;
        self.state = match r.take_u8()? {
            0 => EepromState::Idle,
            1 => EepromState::AddrHi(r.take_u8()?),
            2 => EepromState::AddrLo {
                cmd: r.take_u8()?,
                hi: r.take_u8()?,
            },
            3 => EepromState::Stream {
                cmd: r.take_u8()?,
                addr: r.take_u16()?,
            },
            4 => EepromState::Status,
            tag => {
                return Err(SnapshotError::Corrupt {
                    context: format!("unknown EEPROM state tag {tag}"),
                })
            }
        };
        self.write_enabled = r.take_bool()?;
        Ok(())
    }

    fn transfer(&mut self, mosi: u8) -> u8 {
        match self.state {
            EepromState::Idle => {
                match mosi {
                    Self::CMD_READ | Self::CMD_WRITE => {
                        self.state = EepromState::AddrHi(mosi);
                    }
                    Self::CMD_WREN => self.write_enabled = true,
                    // Real 25xx parts shift the status out on the byte
                    // *after* the RDSR opcode.
                    Self::CMD_RDSR => self.state = EepromState::Status,
                    _ => {}
                }
                0xff
            }
            EepromState::AddrHi(cmd) => {
                self.state = EepromState::AddrLo { cmd, hi: mosi };
                0xff
            }
            EepromState::AddrLo { cmd, hi } => {
                self.state = EepromState::Stream {
                    cmd,
                    addr: u16::from_be_bytes([hi, mosi]),
                };
                0xff
            }
            EepromState::Status => u8::from(self.write_enabled) << 1,
            EepromState::Stream { cmd, addr } => {
                let idx = addr as usize % self.memory.len();
                let out = if cmd == Self::CMD_READ {
                    self.memory[idx]
                } else {
                    if self.write_enabled {
                        self.memory[idx] = mosi;
                    }
                    0xff
                };
                self.state = EepromState::Stream {
                    cmd,
                    addr: addr.wrapping_add(1),
                };
                out
            }
        }
    }

    fn set_selected(&mut self, selected: bool) {
        if !selected {
            // Command boundary; WREN latches until a write completes.
            if matches!(
                self.state,
                EepromState::Stream {
                    cmd: Self::CMD_WRITE,
                    ..
                }
            ) {
                self.write_enabled = false;
            }
            self.state = EepromState::Idle;
        }
    }
}

/// Watchdog registers: 0 = CTRL (bit0 enable, bit1 *suppress* the
/// automatic CPU reset on expiry — clear by default so enabling with
/// `CTRL = 1` keeps the classic reset-on-expiry behaviour), 1 = RELOAD
/// (ticks), 2 = KICK (write anything), 3 = STATUS (bit0 expired,
/// write-1-to-clear).
#[derive(Debug, Clone)]
pub struct Watchdog {
    enabled: bool,
    reload: u16,
    counter: u32,
    expired: bool,
    expirations: u32,
    /// When `false` (CTRL bit1 set) an expiry only latches STATUS; the
    /// platform must not reset the CPU (interrupt-style watchdog).
    auto_reset: bool,
}

impl Default for Watchdog {
    fn default() -> Self {
        Self::new()
    }
}

impl Watchdog {
    /// Creates a disabled watchdog with a 50 000-tick reload.
    #[must_use]
    pub fn new() -> Self {
        Self {
            enabled: false,
            reload: 50_000,
            counter: 50_000,
            expired: false,
            expirations: 0,
            auto_reset: true,
        }
    }

    /// Advances by `ticks` machine cycles; returns `true` on expiry.
    pub fn tick(&mut self, ticks: u32) -> bool {
        if !self.enabled {
            return false;
        }
        if self.counter <= ticks {
            self.counter = self.reload as u32;
            self.expired = true;
            self.expirations += 1;
            return true;
        }
        self.counter -= ticks;
        false
    }

    /// `true` if an expiry is latched.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.expired
    }

    /// Number of expirations since construction.
    #[must_use]
    pub fn expirations(&self) -> u32 {
        self.expirations
    }

    /// Whether the dog is armed.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether an expiry should hardware-reset the CPU (CTRL bit1 clear).
    #[must_use]
    pub fn auto_reset(&self) -> bool {
        self.auto_reset
    }

    /// Machine cycles that may elapse in one batched [`Watchdog::tick`]
    /// without its observable behaviour diverging from per-cycle
    /// ticking: one less than the cycles to expiry (the countdown is
    /// linear until it crosses zero), or `u64::MAX` when disabled.
    #[must_use]
    pub fn batch_headroom(&self) -> u64 {
        if self.enabled {
            u64::from(self.counter).saturating_sub(1)
        } else {
            u64::MAX
        }
    }

    /// Configured reload value (machine cycles per timeout).
    #[must_use]
    pub fn reload(&self) -> u16 {
        self.reload
    }

    /// Serializes the full watchdog state.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_bool(self.enabled);
        w.put_u16(self.reload);
        w.put_u32(self.counter);
        w.put_bool(self.expired);
        w.put_u32(self.expirations);
        w.put_bool(self.auto_reset);
    }

    /// Restores state saved by [`Watchdog::save_state`].
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.enabled = r.take_bool()?;
        self.reload = r.take_u16()?;
        self.counter = r.take_u32()?;
        self.expired = r.take_bool()?;
        self.expirations = r.take_u32()?;
        self.auto_reset = r.take_bool()?;
        Ok(())
    }
}

impl Bus16Device for Watchdog {
    fn read16(&mut self, reg: u8) -> u16 {
        match reg {
            0 => u16::from(self.enabled) | (u16::from(!self.auto_reset) << 1),
            1 => self.reload,
            3 => u16::from(self.expired),
            _ => 0xffff,
        }
    }

    fn write16(&mut self, reg: u8, value: u16) {
        match reg {
            0 => {
                self.enabled = value & 1 != 0;
                self.auto_reset = value & 2 == 0;
                self.counter = self.reload as u32;
            }
            1 => {
                self.reload = value.max(1);
                self.counter = self.reload as u32;
            }
            2 => self.counter = self.reload as u32, // kick
            3 if value & 1 != 0 => {
                self.expired = false;
            }
            _ => {}
        }
    }
}

/// SRAM capture controller: stores a real-time stream of 16-bit DSP samples
/// into the 512 Kbit (64 KiB = 32 Ki-sample) prototype SRAM "with chance of
/// later read-back for analysis purposes" (§4.2).
///
/// Registers: 0 = CTRL (bit0 capture enable, bit1 reset write pointer),
/// 1 = COUNT (samples captured), 2 = READ_ADDR, 3 = READ_DATA.
#[derive(Debug, Clone)]
pub struct SramController {
    memory: Vec<u16>,
    write_ptr: usize,
    capturing: bool,
    read_addr: u16,
    wrapped: bool,
}

impl Default for SramController {
    fn default() -> Self {
        Self::new()
    }
}

impl SramController {
    /// Number of 16-bit samples in the 512 Kbit SRAM.
    pub const CAPACITY: usize = 32 * 1024;

    /// Creates the controller with capture disabled.
    #[must_use]
    pub fn new() -> Self {
        Self {
            memory: vec![0; Self::CAPACITY],
            write_ptr: 0,
            capturing: false,
            read_addr: 0,
            wrapped: false,
        }
    }

    /// Hardware-side capture of one DSP sample (called at the DSP rate).
    pub fn capture(&mut self, sample: u16) {
        if !self.capturing {
            return;
        }
        self.memory[self.write_ptr] = sample;
        self.write_ptr += 1;
        if self.write_ptr == self.memory.len() {
            self.write_ptr = 0;
            self.wrapped = true;
        }
    }

    /// Number of valid samples.
    #[must_use]
    pub fn count(&self) -> usize {
        if self.wrapped {
            self.memory.len()
        } else {
            self.write_ptr
        }
    }

    /// Whether capture is running.
    #[must_use]
    pub fn is_capturing(&self) -> bool {
        self.capturing
    }

    /// Direct sample view (host-side analysis).
    #[must_use]
    pub fn samples(&self) -> &[u16] {
        &self.memory[..self.count()]
    }

    /// Raw byte view of the SRAM for MOVX access (address = sample*2).
    #[must_use]
    pub fn read_byte(&self, addr: u16) -> u8 {
        let sample = self.memory[(addr as usize / 2) % self.memory.len()];
        if addr.is_multiple_of(2) {
            sample as u8
        } else {
            (sample >> 8) as u8
        }
    }

    /// Serializes the SRAM contents and capture-pointer state.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_u16_slice(&self.memory);
        w.put_u32(self.write_ptr as u32);
        w.put_bool(self.capturing);
        w.put_u16(self.read_addr);
        w.put_bool(self.wrapped);
    }

    /// Restores state saved by [`SramController::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] on a capacity mismatch or an
    /// out-of-range write pointer.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let memory = r.take_u16_vec()?;
        if memory.len() != self.memory.len() {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "SRAM snapshot of {} samples, controller has {}",
                    memory.len(),
                    self.memory.len()
                ),
            });
        }
        self.memory = memory;
        let write_ptr = r.take_u32()? as usize;
        if write_ptr >= self.memory.len() {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "SRAM write pointer {write_ptr} outside capacity {}",
                    self.memory.len()
                ),
            });
        }
        self.write_ptr = write_ptr;
        self.capturing = r.take_bool()?;
        self.read_addr = r.take_u16()?;
        self.wrapped = r.take_bool()?;
        Ok(())
    }

    /// Byte write (MOVX path; general-purpose external RAM use).
    pub fn write_byte(&mut self, addr: u16, value: u8) {
        let idx = (addr as usize / 2) % self.memory.len();
        let cur = self.memory[idx];
        self.memory[idx] = if addr.is_multiple_of(2) {
            (cur & 0xff00) | value as u16
        } else {
            (cur & 0x00ff) | ((value as u16) << 8)
        };
    }
}

impl Bus16Device for SramController {
    fn read16(&mut self, reg: u8) -> u16 {
        match reg {
            0 => u16::from(self.capturing),
            1 => self.count().min(u16::MAX as usize) as u16,
            2 => self.read_addr,
            3 => self.memory[self.read_addr as usize % self.memory.len()],
            _ => 0xffff,
        }
    }

    fn write16(&mut self, reg: u8, value: u16) {
        match reg {
            0 => {
                self.capturing = value & 1 != 0;
                if value & 2 != 0 {
                    self.write_ptr = 0;
                    self.wrapped = false;
                }
            }
            2 => self.read_addr = value,
            _ => {}
        }
    }
}

/// Cache / program-download controller on the SFR bus.
///
/// The 'prototype' platform variant boots from a 1 KiB ROM that downloads
/// application code over UART/SPI into program RAM (§4.2). Writes to
/// [`cache_sfr::DATA`] queue `(address, byte)` pairs; the platform applies
/// them to the CPU's code memory between instructions (the "2-wire
/// protocol" to external RAM abstracted to its effect).
#[derive(Debug, Clone, Default)]
pub struct CacheController {
    addr: u16,
    pending: VecDeque<(u16, u8)>,
    total_written: u32,
}

impl CacheController {
    /// Creates the controller.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains queued program-memory writes.
    pub fn take_writes(&mut self) -> Vec<(u16, u8)> {
        self.pending.drain(..).collect()
    }

    /// Total bytes downloaded since reset.
    #[must_use]
    pub fn total_written(&self) -> u32 {
        self.total_written
    }

    /// Serializes the write address, pending queue and byte counter.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_u16(self.addr);
        w.put_u32(self.pending.len() as u32);
        for &(addr, byte) in &self.pending {
            w.put_u16(addr);
            w.put_u8(byte);
        }
        w.put_u32(self.total_written);
    }

    /// Restores state saved by [`CacheController::save_state`].
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.addr = r.take_u16()?;
        let n = r.take_u32()? as usize;
        // Each queued write is 3 bytes; reject impossible counts before
        // allocating.
        if n.saturating_mul(3) > r.remaining() {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "cache-controller queue count {n} exceeds remaining {} bytes",
                    r.remaining()
                ),
            });
        }
        let mut pending = VecDeque::with_capacity(n);
        for _ in 0..n {
            let addr = r.take_u16()?;
            let byte = r.take_u8()?;
            pending.push_back((addr, byte));
        }
        self.pending = pending;
        self.total_written = r.take_u32()?;
        Ok(())
    }

    fn sfr_read(&mut self, addr: u8) -> Option<u8> {
        match addr {
            cache_sfr::ADDR_LO => Some(self.addr as u8),
            cache_sfr::ADDR_HI => Some((self.addr >> 8) as u8),
            cache_sfr::STATUS => Some(1),
            _ => None,
        }
    }

    fn sfr_write(&mut self, addr: u8, value: u8) -> bool {
        match addr {
            cache_sfr::ADDR_LO => {
                self.addr = (self.addr & 0xff00) | value as u16;
                true
            }
            cache_sfr::ADDR_HI => {
                self.addr = (self.addr & 0x00ff) | ((value as u16) << 8);
                true
            }
            cache_sfr::DATA => {
                self.pending.push_back((self.addr, value));
                self.addr = self.addr.wrapping_add(1);
                self.total_written += 1;
                true
            }
            _ => false,
        }
    }
}

/// The composed external bus: bridge + cache controller on the SFR side,
/// SRAM bytes on the XDATA side, SPI/watchdog/SRAM/DSP on the 16-bit bus.
pub struct SystemBus {
    /// SPI master (EEPROM attaches here).
    pub spi: Spi,
    /// Safety watchdog.
    pub watchdog: Watchdog,
    /// Prototype capture SRAM.
    pub sram: SramController,
    /// Program-download path.
    pub cache: CacheController,
    /// Platform/DSP register window (addresses ≥ [`map::DSP_BASE`]).
    pub dsp: Option<Box<dyn Bus16Device>>,
    bridge_addr: u8,
    bridge_data: u16,
}

impl std::fmt::Debug for SystemBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemBus")
            .field("spi", &self.spi)
            .field("watchdog", &self.watchdog)
            .field("bridge_addr", &self.bridge_addr)
            .field("bridge_data", &self.bridge_data)
            .finish()
    }
}

impl Default for SystemBus {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemBus {
    /// Creates the bus with default peripherals and no DSP window.
    #[must_use]
    pub fn new() -> Self {
        Self {
            spi: Spi::new(),
            watchdog: Watchdog::new(),
            sram: SramController::new(),
            cache: CacheController::new(),
            dsp: None,
            bridge_addr: 0,
            bridge_data: 0,
        }
    }

    /// Serializes the bridge latches and all owned peripherals.
    ///
    /// The DSP window ([`SystemBus::dsp`]) is platform-owned glue and is
    /// serialized by the platform alongside the DSP register bank itself,
    /// not here.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.leaf("brdg", |w| {
            w.put_u8(self.bridge_addr);
            w.put_u16(self.bridge_data);
        });
        w.leaf("spi ", |w| self.spi.save_state(w));
        w.leaf("wdog", |w| self.watchdog.save_state(w));
        w.leaf("sram", |w| self.sram.save_state(w));
        w.leaf("cach", |w| self.cache.save_state(w));
    }

    /// Restores state saved by [`SystemBus::save_state`].
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] from any peripheral section.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let (addr, data) = r.leaf("brdg", |r| Ok((r.take_u8()?, r.take_u16()?)))?;
        self.bridge_addr = addr;
        self.bridge_data = data;
        let spi = &mut self.spi;
        r.leaf("spi ", |r| spi.load_state(r))?;
        let watchdog = &mut self.watchdog;
        r.leaf("wdog", |r| watchdog.load_state(r))?;
        let sram = &mut self.sram;
        r.leaf("sram", |r| sram.load_state(r))?;
        let cache = &mut self.cache;
        r.leaf("cach", |r| cache.load_state(r))?;
        Ok(())
    }

    fn bus16_read(&mut self, addr: u8) -> u16 {
        let reg = addr & 0x0f;
        match addr & 0xf0 {
            0x00 => self.spi.read16(reg),
            0x10 => self.watchdog.read16(reg),
            0x20 => self.sram.read16(reg),
            _ if addr >= map::DSP_BASE => self
                .dsp
                .as_mut()
                .map_or(0xffff, |d| d.read16(addr - map::DSP_BASE)),
            _ => 0xffff,
        }
    }

    fn bus16_write(&mut self, addr: u8, value: u16) {
        let reg = addr & 0x0f;
        match addr & 0xf0 {
            0x00 => self.spi.write16(reg, value),
            0x10 => self.watchdog.write16(reg, value),
            0x20 => self.sram.write16(reg, value),
            _ if addr >= map::DSP_BASE => {
                if let Some(d) = self.dsp.as_mut() {
                    d.write16(addr - map::DSP_BASE, value);
                }
            }
            _ => {}
        }
    }
}

impl ExternalBus for SystemBus {
    fn sfr_read(&mut self, addr: u8) -> Option<u8> {
        match addr {
            bridge_sfr::ADDR => Some(self.bridge_addr),
            bridge_sfr::DATA_LO => Some(self.bridge_data as u8),
            bridge_sfr::DATA_HI => Some((self.bridge_data >> 8) as u8),
            bridge_sfr::CTRL => Some(0),
            _ => self.cache.sfr_read(addr),
        }
    }

    fn sfr_write(&mut self, addr: u8, value: u8) -> bool {
        match addr {
            bridge_sfr::ADDR => {
                self.bridge_addr = value;
                true
            }
            bridge_sfr::DATA_LO => {
                self.bridge_data = (self.bridge_data & 0xff00) | value as u16;
                true
            }
            bridge_sfr::DATA_HI => {
                self.bridge_data = (self.bridge_data & 0x00ff) | ((value as u16) << 8);
                true
            }
            bridge_sfr::CTRL => {
                match value {
                    1 => self.bridge_data = self.bus16_read(self.bridge_addr),
                    2 => self.bus16_write(self.bridge_addr, self.bridge_data),
                    _ => {}
                }
                true
            }
            _ => self.cache.sfr_write(addr, value),
        }
    }

    fn xdata_read(&mut self, addr: u16) -> u8 {
        self.sram.read_byte(addr)
    }

    fn xdata_write(&mut self, addr: u16, value: u8) {
        self.sram.write_byte(addr, value);
    }

    // The platform ticks the watchdog at every instruction boundary.
    // Batched execution keeps that exact: batches are bounded by the
    // cycles-to-expiry headroom and contain no bus writes (so no kicks),
    // making one `tick(batch)` equal to per-instruction ticks.
    fn wants_instruction_hook(&self) -> bool {
        true
    }

    fn after_instructions(&mut self, spent: u32) -> bool {
        self.watchdog.tick(spent) && self.watchdog.auto_reset()
    }

    fn instruction_batch_headroom(&self) -> u64 {
        self.watchdog.batch_headroom()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bridge_roundtrip_to_sram_controller() {
        let mut bus = SystemBus::new();
        // Write SRAM controller READ_ADDR (reg 2 at base 0x20) via bridge.
        bus.sfr_write(bridge_sfr::ADDR, 0x22);
        bus.sfr_write(bridge_sfr::DATA_LO, 0x34);
        bus.sfr_write(bridge_sfr::DATA_HI, 0x12);
        bus.sfr_write(bridge_sfr::CTRL, 2); // write strobe
                                            // Read it back.
        bus.sfr_write(bridge_sfr::CTRL, 1); // read strobe
        assert_eq!(bus.sfr_read(bridge_sfr::DATA_LO), Some(0x34));
        assert_eq!(bus.sfr_read(bridge_sfr::DATA_HI), Some(0x12));
    }

    #[test]
    fn sram_capture_and_readback() {
        let mut sram = SramController::new();
        sram.write16(0, 0b11); // enable + reset pointer
        for k in 0..100u16 {
            sram.capture(k * 3);
        }
        assert_eq!(sram.count(), 100);
        sram.write16(2, 42);
        assert_eq!(sram.read16(3), 126);
        assert_eq!(sram.samples()[99], 297);
    }

    #[test]
    fn sram_capture_disabled_by_default() {
        let mut sram = SramController::new();
        sram.capture(7);
        assert_eq!(sram.count(), 0);
    }

    #[test]
    fn sram_wraps_and_reports_full() {
        let mut sram = SramController::new();
        sram.write16(0, 0b11);
        for k in 0..(SramController::CAPACITY + 5) {
            sram.capture(k as u16);
        }
        assert_eq!(sram.count(), SramController::CAPACITY);
    }

    #[test]
    fn sram_byte_access() {
        let mut sram = SramController::new();
        sram.write_byte(10, 0xcd);
        sram.write_byte(11, 0xab);
        assert_eq!(sram.read_byte(10), 0xcd);
        assert_eq!(sram.read_byte(11), 0xab);
        assert_eq!(sram.memory[5], 0xabcd);
    }

    #[test]
    fn watchdog_expires_without_kick() {
        let mut w = Watchdog::new();
        w.write16(1, 100); // reload
        w.write16(0, 1); // enable
        assert!(!w.tick(50));
        assert!(w.tick(60));
        assert!(w.expired());
        assert_eq!(w.expirations(), 1);
    }

    #[test]
    fn watchdog_kick_prevents_expiry() {
        let mut w = Watchdog::new();
        w.write16(1, 100);
        w.write16(0, 1);
        for _ in 0..20 {
            assert!(!w.tick(50));
            w.write16(2, 0); // kick
        }
        assert!(!w.expired());
    }

    #[test]
    fn watchdog_clear_expired_flag() {
        let mut w = Watchdog::new();
        w.write16(1, 10);
        w.write16(0, 1);
        w.tick(20);
        assert!(w.expired());
        w.write16(3, 1);
        assert!(!w.expired());
    }

    #[test]
    fn watchdog_disabled_never_expires() {
        let mut w = Watchdog::new();
        w.write16(1, 1);
        assert!(!w.tick(1_000_000));
    }

    #[test]
    fn watchdog_auto_reset_default_and_ctrl_bit1() {
        let mut w = Watchdog::new();
        assert!(w.auto_reset());
        w.write16(0, 1); // classic enable keeps auto-reset
        assert!(w.auto_reset());
        assert_eq!(w.read16(0), 1);
        w.write16(0, 1 | 2); // bit1 suppresses the CPU reset
        assert!(w.is_enabled());
        assert!(!w.auto_reset());
        assert_eq!(w.read16(0), 3);
        w.write16(0, 1);
        assert!(w.auto_reset());
    }

    #[test]
    fn watchdog_counts_one_expiry_per_trip() {
        let mut w = Watchdog::new();
        w.write16(1, 100);
        w.write16(0, 1);
        // A single long stall trips the dog exactly once; the counter
        // reloads so the next trip needs another full timeout.
        assert!(w.tick(150));
        assert_eq!(w.expirations(), 1);
        assert!(!w.tick(50));
        assert_eq!(w.expirations(), 1);
        assert!(w.tick(60));
        assert_eq!(w.expirations(), 2);
    }

    #[test]
    fn spi_fault_corrupts_and_counts() {
        let mut spi = Spi::new();
        assert_eq!(spi.line_errors(), 0);
        spi.set_fault(1.0, 7);
        // No slave attached: clean bus reads 0xff, corruption flips a bit.
        assert_eq!(spi.probe(), Some(false));
        assert_eq!(spi.line_errors(), 1);
        spi.clear_fault();
        assert_eq!(spi.probe(), Some(true));
        assert_eq!(spi.line_errors(), 1);
    }

    #[test]
    fn eeprom_read_write_cycle() {
        let mut e = SpiEeprom::new(1024);
        e.load(&[0xaa, 0xbb, 0xcc]);
        // READ from address 1.
        e.set_selected(true);
        e.transfer(SpiEeprom::CMD_READ);
        e.transfer(0x00);
        e.transfer(0x01);
        assert_eq!(e.transfer(0), 0xbb);
        assert_eq!(e.transfer(0), 0xcc);
        e.set_selected(false);
        // WRITE without WREN is ignored.
        e.set_selected(true);
        e.transfer(SpiEeprom::CMD_WRITE);
        e.transfer(0x00);
        e.transfer(0x00);
        e.transfer(0x11);
        e.set_selected(false);
        assert_eq!(e.memory()[0], 0xaa);
        // WREN then WRITE works.
        e.set_selected(true);
        e.transfer(SpiEeprom::CMD_WREN);
        e.set_selected(false);
        e.set_selected(true);
        e.transfer(SpiEeprom::CMD_WRITE);
        e.transfer(0x00);
        e.transfer(0x00);
        e.transfer(0x11);
        e.set_selected(false);
        assert_eq!(e.memory()[0], 0x11);
    }

    #[test]
    fn eeprom_rdsr_reflects_wren() {
        let mut e = SpiEeprom::new(64);
        e.set_selected(true);
        e.transfer(SpiEeprom::CMD_RDSR);
        assert_eq!(e.transfer(0), 0, "status on the byte after the opcode");
        e.set_selected(false);
        e.set_selected(true);
        e.transfer(SpiEeprom::CMD_WREN);
        e.set_selected(false);
        e.set_selected(true);
        e.transfer(SpiEeprom::CMD_RDSR);
        assert_eq!(e.transfer(0), 0b10);
    }

    #[test]
    fn spi_master_talks_to_eeprom() {
        let mut spi = Spi::new();
        let mut rom = SpiEeprom::new(256);
        rom.load(&[0x42]);
        spi.attach(Box::new(rom));
        spi.write16(0, 1); // CS
        spi.write16(1, SpiEeprom::CMD_READ as u16);
        spi.write16(1, 0);
        spi.write16(1, 0);
        spi.write16(1, 0);
        assert_eq!(spi.read16(1), 0x42);
        spi.write16(0, 0);
        assert_eq!(spi.transfers(), 4);
    }

    #[test]
    fn spi_without_slave_floats_high() {
        let mut spi = Spi::new();
        spi.write16(0, 1);
        spi.write16(1, 0x55);
        assert_eq!(spi.read16(1), 0xff);
    }

    #[test]
    fn cache_controller_queues_writes() {
        let mut c = CacheController::new();
        c.sfr_write(cache_sfr::ADDR_LO, 0x00);
        c.sfr_write(cache_sfr::ADDR_HI, 0x10);
        c.sfr_write(cache_sfr::DATA, 0xde);
        c.sfr_write(cache_sfr::DATA, 0xad);
        let writes = c.take_writes();
        assert_eq!(writes, vec![(0x1000, 0xde), (0x1001, 0xad)]);
        assert_eq!(c.total_written(), 2);
        assert!(c.take_writes().is_empty());
    }

    #[test]
    fn xdata_maps_to_sram() {
        let mut bus = SystemBus::new();
        bus.xdata_write(100, 0x5a);
        assert_eq!(bus.xdata_read(100), 0x5a);
    }
}
