//! 8051 disassembler.
//!
//! The inverse of [`crate::asm`]: turns a ROM image back into readable
//! mnemonics. Used by the firmware-debug tooling (the paper's prototyping
//! phase pipes "all intermediate data of the chain" to a PC GUI — this is
//! the instruction-side equivalent) and by round-trip tests that pin the
//! assembler and interpreter to the same encoding.

use std::fmt;

/// One decoded instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instruction {
    /// Address of the first byte.
    pub address: u16,
    /// Raw encoding (1–3 bytes).
    pub bytes: Vec<u8>,
    /// Canonical mnemonic text, lowercase, e.g. `mov a, #0x5a`.
    pub text: String,
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex: Vec<String> = self.bytes.iter().map(|b| format!("{b:02x}")).collect();
        write!(
            f,
            "{:04x}:  {:<9} {}",
            self.address,
            hex.join(" "),
            self.text
        )
    }
}

fn rel_target(addr: u16, len: u16, offset: u8) -> u16 {
    addr.wrapping_add(len).wrapping_add(offset as i8 as u16)
}

/// SFR names for pretty direct addresses.
fn direct_name(addr: u8) -> String {
    match addr {
        0x80 => "p0".into(),
        0x81 => "sp".into(),
        0x82 => "dpl".into(),
        0x83 => "dph".into(),
        0x87 => "pcon".into(),
        0x88 => "tcon".into(),
        0x89 => "tmod".into(),
        0x8a => "tl0".into(),
        0x8b => "tl1".into(),
        0x8c => "th0".into(),
        0x8d => "th1".into(),
        0x90 => "p1".into(),
        0x98 => "scon".into(),
        0x99 => "sbuf".into(),
        0xa0 => "p2".into(),
        0xa8 => "ie".into(),
        0xb0 => "p3".into(),
        0xb8 => "ip".into(),
        0xd0 => "psw".into(),
        0xe0 => "acc".into(),
        0xf0 => "b".into(),
        _ => format!("0x{addr:02x}"),
    }
}

fn bit_name(bit: u8) -> String {
    if bit < 0x80 {
        format!("0x{:02x}.{}", 0x20 + bit / 8, bit % 8)
    } else {
        format!("{}.{}", direct_name(bit & 0xf8), bit % 8)
    }
}

/// Decodes the instruction at `addr` in `code`. Returns the instruction;
/// unknown/truncated encodings decode as `db 0x..` placeholders so the
/// walker always advances.
#[must_use]
pub fn decode(code: &[u8], addr: u16) -> Instruction {
    let at = |o: u16| {
        code.get((addr.wrapping_add(o)) as usize)
            .copied()
            .unwrap_or(0)
    };
    let op = at(0);
    let b1 = at(1);
    let b2 = at(2);
    let r = op & 0x07;
    let ri = op & 0x01;

    let (len, text): (u16, String) = match op {
        0x00 => (1, "nop".into()),
        0x01 | 0x21 | 0x41 | 0x61 | 0x81 | 0xa1 | 0xc1 | 0xe1 => {
            let page = u16::from(op >> 5);
            let target = (addr.wrapping_add(2) & 0xf800) | (page << 8) | u16::from(b1);
            (2, format!("ajmp 0x{target:04x}"))
        }
        0x11 | 0x31 | 0x51 | 0x71 | 0x91 | 0xb1 | 0xd1 | 0xf1 => {
            let page = u16::from(op >> 5);
            let target = (addr.wrapping_add(2) & 0xf800) | (page << 8) | u16::from(b1);
            (2, format!("acall 0x{target:04x}"))
        }
        0x02 => (3, format!("ljmp 0x{:04x}", u16::from_be_bytes([b1, b2]))),
        0x12 => (3, format!("lcall 0x{:04x}", u16::from_be_bytes([b1, b2]))),
        0x03 => (1, "rr a".into()),
        0x13 => (1, "rrc a".into()),
        0x23 => (1, "rl a".into()),
        0x33 => (1, "rlc a".into()),
        0x04 => (1, "inc a".into()),
        0x14 => (1, "dec a".into()),
        0x05 => (2, format!("inc {}", direct_name(b1))),
        0x15 => (2, format!("dec {}", direct_name(b1))),
        0x06 | 0x07 => (1, format!("inc @r{ri}")),
        0x16 | 0x17 => (1, format!("dec @r{ri}")),
        0x08..=0x0f => (1, format!("inc r{r}")),
        0x18..=0x1f => (1, format!("dec r{r}")),
        0xa3 => (1, "inc dptr".into()),
        0x10 => (
            3,
            format!("jbc {}, 0x{:04x}", bit_name(b1), rel_target(addr, 3, b2)),
        ),
        0x20 => (
            3,
            format!("jb {}, 0x{:04x}", bit_name(b1), rel_target(addr, 3, b2)),
        ),
        0x30 => (
            3,
            format!("jnb {}, 0x{:04x}", bit_name(b1), rel_target(addr, 3, b2)),
        ),
        0x40 => (2, format!("jc 0x{:04x}", rel_target(addr, 2, b1))),
        0x50 => (2, format!("jnc 0x{:04x}", rel_target(addr, 2, b1))),
        0x60 => (2, format!("jz 0x{:04x}", rel_target(addr, 2, b1))),
        0x70 => (2, format!("jnz 0x{:04x}", rel_target(addr, 2, b1))),
        0x80 => (2, format!("sjmp 0x{:04x}", rel_target(addr, 2, b1))),
        0x73 => (1, "jmp @a+dptr".into()),
        0x22 => (1, "ret".into()),
        0x32 => (1, "reti".into()),
        0x24 => (2, format!("add a, #0x{b1:02x}")),
        0x25 => (2, format!("add a, {}", direct_name(b1))),
        0x26 | 0x27 => (1, format!("add a, @r{ri}")),
        0x28..=0x2f => (1, format!("add a, r{r}")),
        0x34 => (2, format!("addc a, #0x{b1:02x}")),
        0x35 => (2, format!("addc a, {}", direct_name(b1))),
        0x36 | 0x37 => (1, format!("addc a, @r{ri}")),
        0x38..=0x3f => (1, format!("addc a, r{r}")),
        0x94 => (2, format!("subb a, #0x{b1:02x}")),
        0x95 => (2, format!("subb a, {}", direct_name(b1))),
        0x96 | 0x97 => (1, format!("subb a, @r{ri}")),
        0x98..=0x9f => (1, format!("subb a, r{r}")),
        0x42 => (2, format!("orl {}, a", direct_name(b1))),
        0x52 => (2, format!("anl {}, a", direct_name(b1))),
        0x62 => (2, format!("xrl {}, a", direct_name(b1))),
        0x43 => (3, format!("orl {}, #0x{b2:02x}", direct_name(b1))),
        0x53 => (3, format!("anl {}, #0x{b2:02x}", direct_name(b1))),
        0x63 => (3, format!("xrl {}, #0x{b2:02x}", direct_name(b1))),
        0x44 => (2, format!("orl a, #0x{b1:02x}")),
        0x54 => (2, format!("anl a, #0x{b1:02x}")),
        0x64 => (2, format!("xrl a, #0x{b1:02x}")),
        0x45 => (2, format!("orl a, {}", direct_name(b1))),
        0x55 => (2, format!("anl a, {}", direct_name(b1))),
        0x65 => (2, format!("xrl a, {}", direct_name(b1))),
        0x46 | 0x47 => (1, format!("orl a, @r{ri}")),
        0x56 | 0x57 => (1, format!("anl a, @r{ri}")),
        0x66 | 0x67 => (1, format!("xrl a, @r{ri}")),
        0x48..=0x4f => (1, format!("orl a, r{r}")),
        0x58..=0x5f => (1, format!("anl a, r{r}")),
        0x68..=0x6f => (1, format!("xrl a, r{r}")),
        0x72 => (2, format!("orl c, {}", bit_name(b1))),
        0xa0 => (2, format!("orl c, /{}", bit_name(b1))),
        0x82 => (2, format!("anl c, {}", bit_name(b1))),
        0xb0 => (2, format!("anl c, /{}", bit_name(b1))),
        0x74 => (2, format!("mov a, #0x{b1:02x}")),
        0x75 => (3, format!("mov {}, #0x{b2:02x}", direct_name(b1))),
        0x76 | 0x77 => (2, format!("mov @r{ri}, #0x{b1:02x}")),
        0x78..=0x7f => (2, format!("mov r{r}, #0x{b1:02x}")),
        0x85 => (3, format!("mov {}, {}", direct_name(b2), direct_name(b1))),
        0x86 | 0x87 => (2, format!("mov {}, @r{ri}", direct_name(b1))),
        0x88..=0x8f => (2, format!("mov {}, r{r}", direct_name(b1))),
        0x90 => (
            3,
            format!("mov dptr, #0x{:04x}", u16::from_be_bytes([b1, b2])),
        ),
        0x92 => (2, format!("mov {}, c", bit_name(b1))),
        0xa2 => (2, format!("mov c, {}", bit_name(b1))),
        0xa6 | 0xa7 => (2, format!("mov @r{ri}, {}", direct_name(b1))),
        0xa8..=0xaf => (2, format!("mov r{r}, {}", direct_name(b1))),
        0xe5 => (2, format!("mov a, {}", direct_name(b1))),
        0xe6 | 0xe7 => (1, format!("mov a, @r{ri}")),
        0xe8..=0xef => (1, format!("mov a, r{r}")),
        0xf5 => (2, format!("mov {}, a", direct_name(b1))),
        0xf6 | 0xf7 => (1, format!("mov @r{ri}, a")),
        0xf8..=0xff => (1, format!("mov r{r}, a")),
        0x83 => (1, "movc a, @a+pc".into()),
        0x93 => (1, "movc a, @a+dptr".into()),
        0xe0 => (1, "movx a, @dptr".into()),
        0xe2 | 0xe3 => (1, format!("movx a, @r{ri}")),
        0xf0 => (1, "movx @dptr, a".into()),
        0xf2 | 0xf3 => (1, format!("movx @r{ri}, a")),
        0xa4 => (1, "mul ab".into()),
        0x84 => (1, "div ab".into()),
        0xd4 => (1, "da a".into()),
        0xc4 => (1, "swap a".into()),
        0xe4 => (1, "clr a".into()),
        0xf4 => (1, "cpl a".into()),
        0xc2 => (2, format!("clr {}", bit_name(b1))),
        0xc3 => (1, "clr c".into()),
        0xd2 => (2, format!("setb {}", bit_name(b1))),
        0xd3 => (1, "setb c".into()),
        0xb2 => (2, format!("cpl {}", bit_name(b1))),
        0xb3 => (1, "cpl c".into()),
        0xc0 => (2, format!("push {}", direct_name(b1))),
        0xd0 => (2, format!("pop {}", direct_name(b1))),
        0xc5 => (2, format!("xch a, {}", direct_name(b1))),
        0xc6 | 0xc7 => (1, format!("xch a, @r{ri}")),
        0xc8..=0xcf => (1, format!("xch a, r{r}")),
        0xd6 | 0xd7 => (1, format!("xchd a, @r{ri}")),
        0xb4 => (
            3,
            format!("cjne a, #0x{b1:02x}, 0x{:04x}", rel_target(addr, 3, b2)),
        ),
        0xb5 => (
            3,
            format!(
                "cjne a, {}, 0x{:04x}",
                direct_name(b1),
                rel_target(addr, 3, b2)
            ),
        ),
        0xb6 | 0xb7 => (
            3,
            format!(
                "cjne @r{ri}, #0x{b1:02x}, 0x{:04x}",
                rel_target(addr, 3, b2)
            ),
        ),
        0xb8..=0xbf => (
            3,
            format!("cjne r{r}, #0x{b1:02x}, 0x{:04x}", rel_target(addr, 3, b2)),
        ),
        0xd5 => (
            3,
            format!(
                "djnz {}, 0x{:04x}",
                direct_name(b1),
                rel_target(addr, 3, b2)
            ),
        ),
        0xd8..=0xdf => (2, format!("djnz r{r}, 0x{:04x}", rel_target(addr, 2, b1))),
        0xa5 => (1, "db 0xa5".into()), // reserved opcode
    };

    let bytes = (0..len).map(at).collect();
    Instruction {
        address: addr,
        bytes,
        text,
    }
}

/// Disassembles `[start, end)` linearly (no flow analysis).
#[must_use]
pub fn disassemble(code: &[u8], start: u16, end: u16) -> Vec<Instruction> {
    let mut out = Vec::new();
    let mut pc = start;
    while pc < end && (pc as usize) < code.len() {
        let inst = decode(code, pc);
        let len = inst.bytes.len() as u16;
        out.push(inst);
        pc = pc.wrapping_add(len);
        if len == 0 {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn decodes_basic_block() {
        let img = assemble("mov a, #0x5a\nmov r0, a\nsjmp 0\n").unwrap();
        let insts = disassemble(&img, 0, img.len() as u16);
        assert_eq!(insts[0].text, "mov a, #0x5a");
        assert_eq!(insts[1].text, "mov r0, a");
        assert_eq!(insts[2].text, "sjmp 0x0000");
    }

    #[test]
    fn sfr_names_appear() {
        let img = assemble("mov sbuf, a\nmov a, p1\nsetb p1.3\n").unwrap();
        let insts = disassemble(&img, 0, img.len() as u16);
        assert_eq!(insts[0].text, "mov sbuf, a");
        assert_eq!(insts[1].text, "mov a, p1");
        assert_eq!(insts[2].text, "setb p1.3");
    }

    #[test]
    fn relative_targets_are_absolute() {
        let img = assemble("nop\nhere: sjmp here\n").unwrap();
        let insts = disassemble(&img, 0, img.len() as u16);
        assert_eq!(insts[1].text, "sjmp 0x0001");
    }

    #[test]
    fn mov_direct_direct_order() {
        // assembler: MOV dst, src encodes src first; disassembly restores.
        let img = assemble("mov 0x40, 0x30\n").unwrap();
        let inst = decode(&img, 0);
        assert_eq!(inst.text, "mov 0x40, 0x30");
    }

    #[test]
    fn ajmp_target_reconstruction() {
        let img = assemble("org 0x0100\najmp 0x0234\n").unwrap();
        let inst = decode(&img, 0x0100);
        assert_eq!(inst.text, "ajmp 0x0234");
    }

    #[test]
    fn display_format() {
        let img = assemble("mov a, #0x12\n").unwrap();
        let inst = decode(&img, 0);
        assert_eq!(inst.to_string(), "0000:  74 12     mov a, #0x12");
    }

    #[test]
    fn every_opcode_decodes_to_nonempty_text() {
        // All 256 opcodes with dummy operands must produce a non-empty,
        // advancing decode.
        for op in 0..=255u8 {
            let code = [op, 0x10, 0x10];
            let inst = decode(&code, 0);
            assert!(!inst.text.is_empty(), "opcode {op:#x}");
            assert!(!inst.bytes.is_empty(), "opcode {op:#x}");
        }
    }

    #[test]
    fn monitor_firmware_disassembles_cleanly() {
        // The real monitor firmware must contain no reserved opcodes along
        // its linear encoding (sanity of both tools).
        let img =
            assemble("start: mov a, #1\nadd a, acc\njnz start\nlcall sub\nsjmp start\nsub: ret\n")
                .unwrap();
        let insts = disassemble(&img, 0, img.len() as u16);
        assert!(insts.iter().all(|i| !i.text.starts_with("db ")));
    }
}
