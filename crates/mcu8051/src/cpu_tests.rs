//! CPU core tests: every instruction group, flags, interrupts, timers,
//! UART, and cycle accounting. Programs are built with the in-crate
//! assembler so the tests double as assembler/CPU cross-checks.

use crate::asm::assemble;
use crate::cpu::{psw, sfr, Cpu, ExternalBus, NullBus};

fn run(src: &str, steps: usize) -> Cpu {
    let mut cpu = Cpu::new();
    cpu.load_code(&assemble(src).expect("assembly failed"));
    let mut bus = NullBus;
    for _ in 0..steps {
        cpu.step(&mut bus);
    }
    cpu
}

#[test]
fn mov_immediate_and_registers() {
    let cpu = run("mov a, #0x5a\nmov r0, a\nmov r7, #0x11\n", 3);
    assert_eq!(cpu.acc(), 0x5a);
    assert_eq!(cpu.iram(0), 0x5a);
    assert_eq!(cpu.iram(7), 0x11);
}

#[test]
fn register_banks_switch_with_psw() {
    let cpu = run(
        "mov r0, #1\nmov psw, #0x08\nmov r0, #2\n", // bank 1
        3,
    );
    assert_eq!(cpu.iram(0x00), 1);
    assert_eq!(cpu.iram(0x08), 2);
}

#[test]
fn add_sets_carry_and_overflow() {
    let cpu = run("mov a, #0x7f\nadd a, #0x01\n", 2);
    assert_eq!(cpu.acc(), 0x80);
    assert!(cpu.sfr(sfr::PSW) & psw::OV != 0, "OV expected");
    assert!(cpu.sfr(sfr::PSW) & psw::CY == 0, "no carry expected");

    let cpu = run("mov a, #0xff\nadd a, #0x01\n", 2);
    assert_eq!(cpu.acc(), 0x00);
    assert!(cpu.sfr(sfr::PSW) & psw::CY != 0, "carry expected");
}

#[test]
fn addc_uses_carry() {
    let cpu = run("setb c\nmov a, #0x10\naddc a, #0x10\n", 3);
    assert_eq!(cpu.acc(), 0x21);
}

#[test]
fn subb_borrows() {
    let cpu = run("clr c\nmov a, #0x05\nsubb a, #0x06\n", 3);
    assert_eq!(cpu.acc(), 0xff);
    assert!(cpu.sfr(sfr::PSW) & psw::CY != 0, "borrow expected");
}

#[test]
fn auxiliary_carry_for_bcd() {
    let cpu = run("mov a, #0x0f\nadd a, #0x01\n", 2);
    assert!(cpu.sfr(sfr::PSW) & psw::AC != 0, "AC expected");
}

#[test]
fn da_adjusts_bcd_addition() {
    // 29 + 13 = 42 in BCD.
    let cpu = run("mov a, #0x29\nadd a, #0x13\nda a\n", 3);
    assert_eq!(cpu.acc(), 0x42);
}

#[test]
fn mul_and_div() {
    let cpu = run("mov a, #7\nmov b, #9\nmul ab\n", 3);
    assert_eq!(cpu.acc(), 63);
    assert_eq!(cpu.sfr(sfr::B), 0);

    let cpu = run("mov a, #250\nmov b, #7\ndiv ab\n", 3);
    assert_eq!(cpu.acc(), 35);
    assert_eq!(cpu.sfr(sfr::B), 5);

    let cpu = run("mov a, #1\nmov b, #0\ndiv ab\n", 3);
    assert!(cpu.sfr(sfr::PSW) & psw::OV != 0, "div by 0 sets OV");
}

#[test]
fn logic_ops() {
    let cpu = run("mov a, #0b1100\nanl a, #0b1010\n", 2);
    assert_eq!(cpu.acc(), 0b1000);
    let cpu = run("mov a, #0b1100\norl a, #0b1010\n", 2);
    assert_eq!(cpu.acc(), 0b1110);
    let cpu = run("mov a, #0b1100\nxrl a, #0b1010\n", 2);
    assert_eq!(cpu.acc(), 0b0110);
}

#[test]
fn rotates() {
    let cpu = run("mov a, #0x81\nrl a\n", 2);
    assert_eq!(cpu.acc(), 0x03);
    let cpu = run("mov a, #0x81\nrr a\n", 2);
    assert_eq!(cpu.acc(), 0xc0);
    let cpu = run("clr c\nmov a, #0x81\nrlc a\n", 3);
    assert_eq!(cpu.acc(), 0x02);
    let cpu2 = run("clr c\nmov a, #0x81\nrlc a\nrlc a\n", 4);
    assert_eq!(cpu2.acc(), 0x05, "carry re-enters bit 0");
}

#[test]
fn swap_nibbles() {
    let cpu = run("mov a, #0xa5\nswap a\n", 2);
    assert_eq!(cpu.acc(), 0x5a);
}

#[test]
fn stack_push_pop() {
    let cpu = run("mov a, #0x77\npush acc\nmov a, #0\npop 0x30\n", 4);
    assert_eq!(cpu.iram(0x30), 0x77);
    assert_eq!(cpu.sfr(sfr::SP), 0x07);
}

#[test]
fn lcall_ret() {
    let cpu = run(
        "lcall sub\nmov r0, a\nsjmp end\nsub: mov a, #9\nret\nend: nop\n",
        5,
    );
    assert_eq!(cpu.iram(0), 9);
}

#[test]
fn acall_within_page() {
    let cpu = run("acall sub\nsjmp done\nsub: mov a, #3\nret\ndone: nop\n", 5);
    assert_eq!(cpu.acc(), 3);
}

#[test]
fn conditional_jumps() {
    let cpu = run("mov a, #0\njz yes\nmov r0, #1\nyes: mov r1, #2\n", 3);
    assert_eq!(cpu.iram(0), 0, "JZ should skip");
    assert_eq!(cpu.iram(1), 2);

    let cpu = run("mov a, #1\njnz yes\nmov r0, #1\nyes: mov r1, #2\n", 3);
    assert_eq!(cpu.iram(0), 0);
    assert_eq!(cpu.iram(1), 2);
}

#[test]
fn cjne_sets_carry_on_less() {
    let cpu = run("mov a, #3\ncjne a, #5, diff\ndiff: nop\n", 3);
    assert!(cpu.sfr(sfr::PSW) & psw::CY != 0, "3 < 5 sets carry");
    let cpu = run("mov a, #7\ncjne a, #5, diff\ndiff: nop\n", 3);
    assert!(cpu.sfr(sfr::PSW) & psw::CY == 0);
}

#[test]
fn djnz_loops_exact_count() {
    let cpu = run(
        "mov r2, #5\nmov r3, #0\nloop: inc r3\ndjnz r2, loop\n",
        2 + 10,
    );
    assert_eq!(cpu.iram(3), 5);
    assert_eq!(cpu.iram(2), 0);
}

#[test]
fn bit_operations_on_iram() {
    let cpu = run("setb 0x20.3\nmov c, 0x20.3\nmov 0x21.0, c\n", 3);
    assert_eq!(cpu.iram(0x20), 0x08);
    assert_eq!(cpu.iram(0x21), 0x01);
}

#[test]
fn jb_jnb_jbc() {
    let cpu = run(
        "setb 0x20.0\njb 0x20.0, t1\nmov r0, #1\nt1: jbc 0x20.0, t2\nmov r1, #1\nt2: nop\n",
        4,
    );
    assert_eq!(cpu.iram(0), 0);
    assert_eq!(cpu.iram(1), 0);
    assert_eq!(cpu.iram(0x20), 0, "JBC clears the bit");
}

#[test]
fn xch_and_xchd() {
    let cpu = run("mov a, #0x12\nmov 0x30, #0x34\nxch a, 0x30\n", 3);
    assert_eq!(cpu.acc(), 0x34);
    assert_eq!(cpu.iram(0x30), 0x12);

    let cpu = run(
        "mov r0, #0x30\nmov 0x30, #0xab\nmov a, #0xcd\nxchd a, @r0\n",
        4,
    );
    assert_eq!(cpu.acc(), 0xcb);
    assert_eq!(cpu.iram(0x30), 0xad);
}

#[test]
fn indirect_addressing_reaches_upper_ram() {
    // 0x90 via @R0 is IRAM, not SFR P1.
    let cpu = run("mov r0, #0x90\nmov @r0, #0x66\nmov a, @r0\n", 3);
    assert_eq!(cpu.acc(), 0x66);
    assert_eq!(cpu.sfr(sfr::P1), 0xff, "P1 untouched");
}

#[test]
fn movc_reads_code_tables() {
    let cpu = run(
        "mov dptr, #table\nmov a, #2\nmovc a, @a+dptr\nsjmp end\ntable: db 10, 20, 30\nend: nop\n",
        4,
    );
    assert_eq!(cpu.acc(), 30);
}

#[test]
fn movx_goes_to_external_bus() {
    #[derive(Default)]
    struct Mem {
        data: std::collections::HashMap<u16, u8>,
    }
    impl ExternalBus for Mem {
        fn sfr_read(&mut self, _: u8) -> Option<u8> {
            None
        }
        fn sfr_write(&mut self, _: u8, _: u8) -> bool {
            false
        }
        fn xdata_read(&mut self, addr: u16) -> u8 {
            self.data.get(&addr).copied().unwrap_or(0)
        }
        fn xdata_write(&mut self, addr: u16, v: u8) {
            self.data.insert(addr, v);
        }
    }
    let mut cpu = Cpu::new();
    cpu.load_code(
        &assemble("mov dptr, #0x1234\nmov a, #0x99\nmovx @dptr, a\nclr a\nmovx a, @dptr\n")
            .unwrap(),
    );
    let mut bus = Mem::default();
    for _ in 0..5 {
        cpu.step(&mut bus);
    }
    assert_eq!(cpu.acc(), 0x99);
    assert_eq!(bus.data[&0x1234], 0x99);
}

#[test]
fn parity_flag_tracks_acc() {
    let cpu = run("mov a, #0b0000111\n", 1); // 3 ones -> odd parity -> P=1
    assert_eq!(cpu.sfr(sfr::PSW) & psw::P, 0, "raw PSW store unchanged");
    // Parity is computed on PSW *reads*:
    let cpu2 = run("mov a, #0b0000111\nmov 0x30, psw\n", 2);
    assert_eq!(cpu2.iram(0x30) & psw::P, 1);
}

#[test]
fn timer0_mode1_overflow_sets_tf0() {
    let src = "
        mov tmod, #0x01
        mov th0, #0xff
        mov tl0, #0xf0
        setb tr0
        spin: sjmp spin
    ";
    let mut cpu = Cpu::new();
    cpu.load_code(&assemble(src).unwrap());
    let mut bus = NullBus;
    for _ in 0..40 {
        cpu.step(&mut bus);
    }
    assert!(cpu.sfr(sfr::TCON) & 0x20 != 0, "TF0 should be set");
}

#[test]
fn timer_interrupt_vectors() {
    // Timer 0 ISR at 0x0B increments R7 and returns.
    let src = "
        ljmp main
        org 0x0b
        inc r7
        reti
        org 0x40
    main:
        mov tmod, #0x02      ; timer 0 mode 2 auto reload
        mov th0, #0xc0       ; reload 0xC0 -> overflow every 64 cycles
        mov tl0, #0xc0
        mov ie, #0x82        ; EA + ET0
        setb tr0
        spin: sjmp spin
    ";
    let mut cpu = Cpu::new();
    cpu.load_code(&assemble(src).unwrap());
    let mut bus = NullBus;
    cpu.run_cycles(2000, &mut bus);
    assert!(cpu.iram(7) >= 20, "ISR ran {} times", cpu.iram(7));
}

#[test]
fn uart_transmit_sets_ti_and_host_sees_bytes() {
    let src = "
        mov a, #'H'
        mov sbuf, a
        wait: jnb ti, wait
        clr ti
        mov a, #'i'
        mov sbuf, a
        wait2: jnb ti, wait2
        done: sjmp done
    ";
    let mut cpu = Cpu::new();
    cpu.load_code(&assemble(src).unwrap());
    let mut bus = NullBus;
    cpu.run_cycles(1000, &mut bus);
    assert_eq!(cpu.uart_take_tx(), b"Hi");
}

#[test]
fn uart_receive_fires_ri() {
    let src = "
        mov scon, #0x50     ; mode 1, REN
        wait: jnb ri, wait
        mov a, sbuf
        clr ri
        mov r0, a
        done: sjmp done
    ";
    let mut cpu = Cpu::new();
    cpu.load_code(&assemble(src).unwrap());
    cpu.uart_inject_rx(0x7e);
    let mut bus = NullBus;
    cpu.run_cycles(1000, &mut bus);
    assert_eq!(cpu.iram(0), 0x7e);
    assert_eq!(cpu.uart_rx_pending(), 0);
}

#[test]
fn serial_interrupt() {
    let src = "
        ljmp main
        org 0x23
        clr ri
        mov a, sbuf
        mov r6, a
        reti
        org 0x40
    main:
        mov scon, #0x50
        mov ie, #0x90       ; EA + ES
        spin: sjmp spin
    ";
    let mut cpu = Cpu::new();
    cpu.load_code(&assemble(src).unwrap());
    cpu.uart_inject_rx(0x33);
    let mut bus = NullBus;
    cpu.run_cycles(1000, &mut bus);
    assert_eq!(cpu.iram(6), 0x33);
}

#[test]
fn external_interrupt_pin() {
    let src = "
        ljmp main
        org 0x03
        inc r5
        reti
        org 0x40
    main:
        mov ie, #0x81       ; EA + EX0
        spin: sjmp spin
    ";
    let mut cpu = Cpu::new();
    cpu.load_code(&assemble(src).unwrap());
    let mut bus = NullBus;
    cpu.run_cycles(50, &mut bus);
    assert_eq!(cpu.iram(5), 0);
    cpu.set_int_pins(true, false);
    cpu.run_cycles(20, &mut bus);
    cpu.set_int_pins(false, false);
    assert!(cpu.iram(5) >= 1);
}

#[test]
fn interrupt_priority_blocks_low_during_high() {
    // Both timer 0 (low) and external 0 (high) pending; EX0 must win.
    let src = "
        ljmp main
        org 0x03
        mov r4, #0xaa
        reti
        org 0x0b
        mov r3, #0xbb
        reti
        org 0x40
    main:
        mov ip, #0x01       ; EX0 high priority
        mov tmod, #0x02
        mov th0, #0xff
        mov tl0, #0xff
        mov ie, #0x83       ; EA + ET0 + EX0
        setb tr0
        spin: sjmp spin
    ";
    let mut cpu = Cpu::new();
    cpu.load_code(&assemble(src).unwrap());
    cpu.set_int_pins(true, false);
    let mut bus = NullBus;
    // Step a few instructions: first taken interrupt must be EX0.
    let mut first = None;
    for _ in 0..200 {
        cpu.step(&mut bus);
        if first.is_none() {
            if cpu.iram(4) == 0xaa {
                first = Some("ext0");
            } else if cpu.iram(3) == 0xbb {
                first = Some("timer0");
            }
        }
    }
    assert_eq!(first, Some("ext0"));
}

#[test]
fn cycle_counting_basics() {
    // NOP = 1, SJMP = 2, MUL = 4.
    let mut cpu = Cpu::new();
    cpu.load_code(&assemble("nop\nmul ab\nsjmp 0\n").unwrap());
    let mut bus = NullBus;
    assert_eq!(cpu.step(&mut bus), 1);
    assert_eq!(cpu.step(&mut bus), 4);
    assert_eq!(cpu.step(&mut bus), 2);
    assert_eq!(cpu.cycles(), 7);
}

#[test]
fn halt_via_pcon() {
    let mut cpu = Cpu::new();
    cpu.load_code(&assemble("mov pcon, #0x02\nnop\n").unwrap());
    let mut bus = NullBus;
    cpu.step(&mut bus);
    assert!(cpu.is_halted());
    let pc = cpu.pc();
    cpu.step(&mut bus);
    assert_eq!(cpu.pc(), pc, "halted CPU must not advance");
}

#[test]
fn reset_restores_defaults() {
    let mut cpu = Cpu::new();
    cpu.load_code(&assemble("mov a, #1\nmov sp, #0x40\n").unwrap());
    let mut bus = NullBus;
    cpu.step(&mut bus);
    cpu.step(&mut bus);
    cpu.reset();
    assert_eq!(cpu.pc(), 0);
    assert_eq!(cpu.acc(), 0);
    assert_eq!(cpu.sfr(sfr::SP), 0x07);
    assert_eq!(cpu.cycles(), 0);
}

#[test]
fn jmp_a_dptr_dispatch() {
    let src = "
        mov dptr, #table
        mov a, #2
        jmp @a+dptr
        table: sjmp c0
        sjmp c1
        c0: mov r0, #1
        sjmp end
        c1: mov r0, #2
        end: nop
    ";
    let cpu = run(src, 6);
    assert_eq!(cpu.iram(0), 2);
}

#[test]
fn sfr_writes_reach_external_bus() {
    struct Probe {
        seen: Option<(u8, u8)>,
    }
    impl ExternalBus for Probe {
        fn sfr_read(&mut self, addr: u8) -> Option<u8> {
            (addr == 0xc8).then_some(0x42)
        }
        fn sfr_write(&mut self, addr: u8, v: u8) -> bool {
            if addr == 0xc8 {
                self.seen = Some((addr, v));
                true
            } else {
                false
            }
        }
        fn xdata_read(&mut self, _: u16) -> u8 {
            0
        }
        fn xdata_write(&mut self, _: u16, _: u8) {}
    }
    let mut cpu = Cpu::new();
    cpu.load_code(&assemble("mov 0xc8, #0x77\nmov a, 0xc8\n").unwrap());
    let mut bus = Probe { seen: None };
    cpu.step(&mut bus);
    cpu.step(&mut bus);
    assert_eq!(bus.seen, Some((0xc8, 0x77)));
    assert_eq!(cpu.acc(), 0x42);
}
