//! Basic-block predecode and translation cache for the 8051 ISS.
//!
//! The interpreter in [`crate::cpu`] re-fetches and re-decodes every
//! instruction from code memory — up to three bounds-checked byte loads
//! plus a 256-way dispatch per step. Firmware, however, spends nearly all
//! of its time in small loops, so the same few instructions are decoded
//! millions of times. This module decodes each **basic block** once into
//! a cached run of [`MicroOp`]s (opcode, pre-extracted operand bytes,
//! successor PC, cycle count, side-effect class), keyed by entry PC and
//! terminated at unconditional control flow; [`crate::cpu::Cpu::step`]
//! then replays cached blocks instead of fetching — the QEMU-style
//! translation-block idea, scaled down to a predecode cache (micro-ops
//! still execute through the one shared semantic core, so behaviour is
//! bit-identical by construction).
//!
//! # What is cached, and what is not
//!
//! A [`MicroOp`] caches only what is a pure function of code memory: the
//! opcode byte, up to two operand bytes, the instruction length and its
//! machine-cycle cost. All *state* — registers, flags, SFRs, timers, the
//! UART, interrupt sampling — lives in the CPU and is touched only by the
//! shared execution core, once per instruction, exactly as the
//! interpreter does. Interrupts are sampled at instruction boundaries in
//! both paths, so IRQ latency, cycle counts and bus traces cannot
//! diverge. All micro-ops live in one flat arena (`XlateCache::ops`);
//! a block is a contiguous run inside it, and straight-line replay is a
//! single bounds-checked load per instruction.
//!
//! # Invalidation
//!
//! The cache mirrors code memory and nothing else, so it must be dropped
//! whenever code memory can have changed:
//!
//! - [`crate::cpu::Cpu::code_write`] — the JTAG/cache-controller program
//!   download path — invalidates when the written address falls inside
//!   the span covered by any cached block (a whole-cache flush: patches
//!   are rare and the cache rebuilds lazily);
//! - [`crate::cpu::Cpu::load_code`] and `load_state` replace code memory
//!   outright and always flush;
//! - [`crate::cpu::Cpu::reset`] flushes as a safety net (the watchdog
//!   reset path re-enters firmware from the vector table).
//!
//! The cache is **never** serialized: checkpoints capture code memory and
//! the translation cache is a pure function of it, so PR 5 snapshot bytes
//! and warm-start cache keys are unchanged whether the cache is on, off,
//! warm or cold. Restoring a checkpoint flushes and the cache rebuilds on
//! the next executed block.

/// Coarse side-effect class of one instruction (micro-op metadata).
///
/// Used by the block builder to find terminators, by the batched replay
/// loop in [`crate::cpu::Cpu::run_slice`] to find instructions that can
/// wake idle peripherals (only `Direct` and `Xdata` ops can reach IE,
/// TCON, SCON, SBUF, PCON or the external bus), and exported so
/// diagnostics can summarize what a cached block touches. The class is a
/// *may*-analysis: `Direct` means the instruction can reach the external
/// SFR bus (direct or bit addressing at 0x80+), not that it will.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpClass {
    /// Touches only CPU-internal state (registers, ACC, IRAM, flags).
    Local,
    /// Direct or bit addressing — may reach the external SFR bus.
    Direct,
    /// MOVX — reaches the external XDATA bus.
    Xdata,
    /// MOVC — reads code memory (data tables; never written by the CPU).
    CodeRead,
    /// Conditional control flow (falls through when not taken).
    CondFlow,
    /// Unconditional control flow — always terminates a basic block.
    Flow,
}

/// One predecoded instruction: everything [`crate::cpu::Cpu`] would have
/// fetched from code memory, extracted once. Exactly 8 bytes so the
/// replay arena packs 8 per cache line; the cycle count, side-effect
/// class and quiet-safety bit share one packed metadata byte.
#[derive(Debug, Clone, Copy)]
pub struct MicroOp {
    /// Address of the opcode byte.
    pub pc: u16,
    /// Address of the next sequential instruction (`pc` + length, which
    /// is where PC points while this instruction executes).
    pub next_pc: u16,
    /// The opcode.
    pub op: u8,
    /// First operand byte (0 when the instruction has none).
    pub a: u8,
    /// Second operand byte (0 when the instruction has fewer than two).
    pub b: u8,
    /// Packed metadata: bits 0–2 machine cycles, bits 3–5 side-effect
    /// class discriminant, bit 6 the quiet-safety flag.
    meta: u8,
}

/// `meta` bit 6: set when the op cannot wake idle peripherals or enable
/// interrupts (class is neither `Direct` nor `Xdata`) — the batched
/// replay loop may execute it without re-sampling peripheral state.
const META_QUIET: u8 = 0x40;

impl MicroOp {
    fn pack(pc: u16, next_pc: u16, op: u8, a: u8, b: u8, cycles: u8, class: OpClass) -> Self {
        let quiet = !matches!(class, OpClass::Direct | OpClass::Xdata);
        let meta = (cycles & 0x07) | ((class as u8) << 3) | (u8::from(quiet) * META_QUIET);
        Self {
            pc,
            next_pc,
            op,
            a,
            b,
            meta,
        }
    }

    /// Total instruction length in bytes (1–3).
    #[must_use]
    pub fn size_bytes(&self) -> u16 {
        self.next_pc.wrapping_sub(self.pc)
    }

    /// Machine cycles the instruction costs (fixed per opcode on this
    /// core, branch taken or not).
    #[must_use]
    pub fn cycles(&self) -> u8 {
        self.meta & 0x07
    }

    /// Side-effect class (from the opcode's decode metadata).
    #[must_use]
    pub fn class(&self) -> OpClass {
        match (self.meta >> 3) & 0x07 {
            0 => OpClass::Local,
            1 => OpClass::Direct,
            2 => OpClass::Xdata,
            3 => OpClass::CodeRead,
            4 => OpClass::CondFlow,
            _ => OpClass::Flow,
        }
    }

    /// `true` when replay may execute this op without re-sampling
    /// peripheral/interrupt state: the op cannot write an SFR by direct
    /// address or touch the external bus, so it cannot start a UART
    /// transmission, set a timer running, enable interrupts or halt the
    /// core.
    #[must_use]
    pub fn quiet_safe(&self) -> bool {
        self.meta & META_QUIET != 0
    }
}

/// Decode metadata for one opcode: operand byte count, machine cycles,
/// side-effect class. This is the single decode truth both the
/// interpreter's fetch loop (through the [`OPERAND_COUNT`] /
/// [`BASE_CYCLES`] tables) and the block builder share; the execution
/// semantics live in `Cpu::execute_decoded`, which debug-asserts its
/// cycle result against this table on the replay path.
#[must_use]
pub const fn decode_meta(op: u8) -> (u8, u8, OpClass) {
    use OpClass::{CodeRead, CondFlow, Direct, Flow, Local, Xdata};
    match op {
        0x00 => (0, 1, Local),                                                 // NOP
        0x01 | 0x21 | 0x41 | 0x61 | 0x81 | 0xa1 | 0xc1 | 0xe1 => (1, 2, Flow), // AJMP
        0x11 | 0x31 | 0x51 | 0x71 | 0x91 | 0xb1 | 0xd1 | 0xf1 => (1, 2, Flow), // ACALL
        0x02 | 0x12 => (2, 2, Flow),                                           // LJMP / LCALL
        0x03 | 0x13 | 0x23 | 0x33 => (0, 1, Local),                            // RR/RRC/RL/RLC
        0x04 | 0x14 => (0, 1, Local),                                          // INC/DEC A
        0x05 | 0x15 => (1, 1, Direct),                                         // INC/DEC dir
        0x06 | 0x07 | 0x16 | 0x17 => (0, 1, Local),                            // INC/DEC @Ri
        0x08..=0x0f | 0x18..=0x1f => (0, 1, Local),                            // INC/DEC Rn
        0xa3 => (0, 2, Local),                                                 // INC DPTR
        0x10 => (2, 2, CondFlow),                                              // JBC
        0x20 | 0x30 => (2, 2, CondFlow),                                       // JB / JNB
        0x40 | 0x50 | 0x60 | 0x70 => (1, 2, CondFlow),                         // JC/JNC/JZ/JNZ
        0x80 => (1, 2, Flow),                                                  // SJMP
        0x73 => (0, 2, Flow),                                                  // JMP @A+DPTR
        0x22 | 0x32 => (0, 2, Flow),                                           // RET / RETI
        0x24 | 0x34 | 0x94 => (1, 1, Local),                                   // ADD/ADDC/SUBB #
        0x25 | 0x35 | 0x95 => (1, 1, Direct),                                  // ADD/ADDC/SUBB dir
        0x26 | 0x27 | 0x36 | 0x37 | 0x96 | 0x97 => (0, 1, Local),              // ... @Ri
        0x28..=0x2f | 0x38..=0x3f | 0x98..=0x9f => (0, 1, Local),              // ... Rn
        0x42 | 0x52 | 0x62 => (1, 1, Direct),                                  // ORL/ANL/XRL dir,A
        0x43 | 0x53 | 0x63 => (2, 2, Direct),                                  // ORL/ANL/XRL dir,#
        0x44 | 0x54 | 0x64 => (1, 1, Local),                                   // ORL/ANL/XRL A,#
        0x45 | 0x55 | 0x65 => (1, 1, Direct),                                  // ORL/ANL/XRL A,dir
        0x46 | 0x47 | 0x56 | 0x57 | 0x66 | 0x67 => (0, 1, Local),              // ... A,@Ri
        0x48..=0x4f | 0x58..=0x5f | 0x68..=0x6f => (0, 1, Local),              // ... A,Rn
        0x72 | 0xa0 | 0x82 | 0xb0 => (1, 2, Direct),                           // ORL/ANL C,(/)bit
        0x74 => (1, 1, Local),                                                 // MOV A,#
        0x75 => (2, 2, Direct),                                                // MOV dir,#
        0x76 | 0x77 => (1, 1, Local),                                          // MOV @Ri,#
        0x78..=0x7f => (1, 1, Local),                                          // MOV Rn,#
        0x85 => (2, 2, Direct),                                                // MOV dir,dir
        0x86 | 0x87 => (1, 2, Direct),                                         // MOV dir,@Ri
        0x88..=0x8f => (1, 2, Direct),                                         // MOV dir,Rn
        0x90 => (2, 2, Local),                                                 // MOV DPTR,#
        0xa6 | 0xa7 => (1, 2, Direct),                                         // MOV @Ri,dir
        0xa8..=0xaf => (1, 2, Direct),                                         // MOV Rn,dir
        0xe5 => (1, 1, Direct),                                                // MOV A,dir
        0xe6..=0xef => (0, 1, Local),                                          // MOV A,@Ri/Rn
        0xf5 => (1, 1, Direct),                                                // MOV dir,A
        0xf6..=0xff => (0, 1, Local),                                          // MOV @Ri/Rn,A
        0x83 | 0x93 => (0, 2, CodeRead),                                       // MOVC
        0xe0 | 0xe2 | 0xe3 | 0xf0 | 0xf2 | 0xf3 => (0, 2, Xdata),              // MOVX
        0xa4 | 0x84 => (0, 4, Local),                                          // MUL / DIV
        0xd4 | 0xc4 | 0xe4 | 0xf4 => (0, 1, Local),                            // DA/SWAP/CLR/CPL A
        0xc2 | 0xd2 | 0xb2 => (1, 1, Direct),                                  // CLR/SETB/CPL bit
        0xc3 | 0xd3 | 0xb3 => (0, 1, Local),                                   // CLR/SETB/CPL C
        0x92 => (1, 2, Direct),                                                // MOV bit,C
        0xa2 => (1, 1, Direct),                                                // MOV C,bit
        0xc0 | 0xd0 => (1, 2, Direct),                                         // PUSH / POP
        0xc5 => (1, 1, Direct),                                                // XCH A,dir
        0xc6 | 0xc7 | 0xc8..=0xcf | 0xd6 | 0xd7 => (0, 1, Local),              // XCH/XCHD
        0xb4 | 0xb5 => (2, 2, CondFlow),                                       // CJNE A,#/dir
        0xb6..=0xbf => (2, 2, CondFlow),                                       // CJNE @Ri/Rn,#
        0xd5 => (2, 2, CondFlow),                                              // DJNZ dir
        0xd8..=0xdf => (1, 2, CondFlow),                                       // DJNZ Rn
        0xa5 => (0, 1, Local),                                                 // reserved (NOP)
    }
}

const fn operand_table() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut op = 0usize;
    while op < 256 {
        t[op] = decode_meta(op as u8).0;
        op += 1;
    }
    t
}

/// Operand byte count per opcode — the interpreter's one-load decode
/// table (replaces a second 256-way dispatch on the uncached path).
pub static OPERAND_COUNT: [u8; 256] = operand_table();

const fn cycle_table() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut op = 0usize;
    while op < 256 {
        t[op] = decode_meta(op as u8).1;
        op += 1;
    }
    t
}

/// Machine cycles per opcode (fixed on this core, branch taken or not).
pub static BASE_CYCLES: [u8; 256] = cycle_table();

/// Upper bound on micro-ops per block. Long straight-line runs split into
/// several blocks; replay chains through them with one cache lookup each.
const MAX_BLOCK_OPS: usize = 64;

/// Sentinel index: no block / invalid cursor.
pub(crate) const NONE_IDX: u32 = u32::MAX;

/// Bounds of one decoded block: where its micro-ops live in the arena
/// and which code bytes it decoded (for invalidation).
#[derive(Debug, Clone, Copy)]
struct BlockMeta {
    /// First micro-op in [`XlateCache::ops`].
    first_op: u32,
    /// One past the last micro-op.
    end_op: u32,
    /// Code address of the first instruction.
    entry: u16,
    /// Exclusive end of the code bytes this block decoded.
    end: u16,
}

impl BlockMeta {
    /// `true` if a write to `addr` lands inside this block's code span.
    fn covers(self, addr: u16) -> bool {
        self.entry <= addr && addr < self.end
    }
}

/// The translation cache: a flat micro-op arena, per-block bounds, a
/// direct-mapped entry-PC index, the replay cursor, and hit/miss/
/// invalidation telemetry.
///
/// Excluded from checkpoints (see module docs) — a fresh, empty cache is
/// semantically identical to a warm one.
#[derive(Debug, Clone)]
pub(crate) struct XlateCache {
    /// All micro-ops of all blocks, contiguous per block. `pub(crate)`
    /// (like the cursor fields) so `Cpu`'s quiet replay loop can move it
    /// out with `mem::take` and iterate it as a local slice while
    /// `execute_decoded` borrows the CPU — see `Cpu::replay_quiet`.
    pub(crate) ops: Vec<MicroOp>,
    /// Per-block arena ranges and code spans.
    blocks: Vec<BlockMeta>,
    /// Entry PC → index into `blocks` (`NONE_IDX` when none). Sized to
    /// code memory; PCs beyond it fall back to the interpreter fetch.
    map: Vec<u32>,
    /// Replay cursor: next micro-op in the arena (`NONE_IDX` invalid) …
    pub(crate) cur: u32,
    /// … and the exclusive end of the current block's run (≤ ops.len()).
    pub(crate) cur_end: u32,
    /// Arena index of the current block's first micro-op and its entry
    /// PC — a one-compare fast path for re-entering the same block (the
    /// shape of every firmware hot loop) without a map lookup.
    cur_first: u32,
    cur_entry: u16,
    /// Lowest / highest+1 code address covered by any cached block
    /// (invalidation early-out for writes outside every block).
    span_lo: u16,
    span_hi: u16,
    /// Block entries served from cache.
    hits: u64,
    /// Blocks decoded (cache misses).
    misses: u64,
    /// Whole-cache flushes that actually dropped blocks.
    invalidations: u64,
}

impl Default for XlateCache {
    fn default() -> Self {
        Self {
            ops: Vec::new(),
            blocks: Vec::new(),
            map: Vec::new(),
            cur: NONE_IDX,
            cur_end: 0,
            cur_first: NONE_IDX,
            cur_entry: 0,
            span_lo: 0,
            span_hi: 0,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }
}

impl XlateCache {
    /// Returns the micro-op at the replay cursor if its address matches
    /// `pc` (the fall-through / straight-line hot path) without
    /// consuming it. Returns `None` when the cursor is invalid, the
    /// block is exhausted, or control flow diverged — callers then go
    /// through [`XlateCache::position`].
    #[inline]
    pub(crate) fn cursor_peek(&self, pc: u16) -> Option<MicroOp> {
        // `cur >= cur_end` also covers the invalid cursor (NONE_IDX) and
        // keeps the arena index in bounds (cur_end ≤ ops.len()).
        if self.cur >= self.cur_end {
            return None;
        }
        let uop = self.ops[self.cur as usize];
        if uop.pc != pc {
            return None;
        }
        Some(uop)
    }

    /// Peek-and-consume in one call (the single-step replay path).
    #[inline]
    pub(crate) fn cursor_next(&mut self, pc: u16) -> Option<MicroOp> {
        let uop = self.cursor_peek(pc)?;
        self.cur += 1;
        Some(uop)
    }

    /// One-compare same-block re-entry (the backward jump closing every
    /// firmware hot loop): if `pc` is the current block's entry, rewinds
    /// the cursor to its first micro-op without a map lookup.
    #[inline]
    pub(crate) fn reenter(&mut self, pc: u16) -> bool {
        if pc == self.cur_entry && self.cur_first != NONE_IDX {
            self.cur = self.cur_first;
            self.hits += 1;
            return true;
        }
        false
    }

    /// Points the cursor at the block entered at `pc`, decoding it on a
    /// miss. Returns `false` when `pc` is outside code memory — the
    /// caller falls back to the interpreter fetch (running off the end
    /// of the ROM executes zeros; not worth caching).
    pub(crate) fn position(&mut self, pc: u16, code: &[u8]) -> bool {
        if self.reenter(pc) {
            return true;
        }
        if self.map.len() != code.len() {
            // Code grew (program download) since the map was sized.
            self.map.resize(code.len(), NONE_IDX);
        }
        let Some(&slot) = self.map.get(pc as usize) else {
            return false;
        };
        let meta = if slot == NONE_IDX {
            let Some(meta) = self.build_block(code, pc) else {
                return false;
            };
            let idx = u32::try_from(self.blocks.len()).expect("block count fits u32");
            self.blocks.push(meta);
            self.map[pc as usize] = idx;
            self.misses += 1;
            meta
        } else {
            self.hits += 1;
            self.blocks[slot as usize]
        };
        self.cur = meta.first_op;
        self.cur_end = meta.end_op;
        self.cur_first = meta.first_op;
        self.cur_entry = meta.entry;
        true
    }

    /// Looks up (or decodes) the block entered at `pc`, pointing the
    /// cursor past its first micro-op and returning that op. `None` when
    /// `pc` is outside code memory.
    pub(crate) fn lookup(&mut self, pc: u16, code: &[u8]) -> Option<MicroOp> {
        if !self.position(pc, code) {
            return None;
        }
        self.cursor_next(pc)
    }

    /// Decodes one basic block starting at `entry` into the arena.
    /// Returns `None` when `entry` is outside code memory or the first
    /// instruction's bytes would wrap the 64 KiB address space
    /// (degenerate; left to the interpreter).
    fn build_block(&mut self, code: &[u8], entry: u16) -> Option<BlockMeta> {
        if entry as usize >= code.len() {
            return None;
        }
        let first_op = u32::try_from(self.ops.len()).expect("arena fits u32");
        let mut pc = entry;
        loop {
            let op = code[pc as usize];
            let (operands, cycles, class) = decode_meta(op);
            let Some(next) = pc.checked_add(u16::from(1 + operands)) else {
                break; // instruction bytes would wrap the address space
            };
            // Operand bytes past the end of the image read as zero,
            // exactly like the interpreter's fetch.
            let at = |off: u16| code.get((pc + off) as usize).copied().unwrap_or(0);
            self.ops.push(MicroOp::pack(
                pc,
                next,
                op,
                if operands >= 1 { at(1) } else { 0 },
                if operands >= 2 { at(2) } else { 0 },
                cycles,
                class,
            ));
            pc = next;
            let decoded = self.ops.len() - first_op as usize;
            if class == OpClass::Flow || decoded >= MAX_BLOCK_OPS || pc as usize >= code.len() {
                break;
            }
        }
        if self.ops.len() == first_op as usize {
            return None;
        }
        let meta = BlockMeta {
            first_op,
            end_op: u32::try_from(self.ops.len()).expect("arena fits u32"),
            entry,
            end: pc,
        };
        if self.blocks.is_empty() {
            self.span_lo = meta.entry;
            self.span_hi = meta.end;
        } else {
            self.span_lo = self.span_lo.min(meta.entry);
            self.span_hi = self.span_hi.max(meta.end);
        }
        Some(meta)
    }

    /// Reacts to one byte of code memory being overwritten: flushes the
    /// cache when the write lands inside the span any cached block
    /// decoded from. Writes outside every block (the common program-
    /// download case: fresh code regions) cost one range check.
    pub(crate) fn code_written(&mut self, addr: u16) {
        if self.blocks.is_empty() || addr < self.span_lo || addr >= self.span_hi {
            return;
        }
        if self.blocks.iter().any(|b| b.covers(addr)) {
            self.flush();
        }
    }

    /// Drops every cached block (counted when anything was cached).
    pub(crate) fn flush(&mut self) {
        if !self.blocks.is_empty() {
            self.invalidations += 1;
        }
        self.ops.clear();
        self.blocks.clear();
        self.map.clear();
        self.cur = NONE_IDX;
        self.cur_end = 0;
        self.cur_first = NONE_IDX;
        self.cur_entry = 0;
        self.span_lo = 0;
        self.span_hi = 0;
    }

    /// Block entries served from already-decoded blocks.
    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    /// Blocks decoded from code memory.
    pub(crate) fn misses(&self) -> u64 {
        self.misses
    }

    /// Whole-cache flushes that dropped at least one block.
    pub(crate) fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Number of blocks currently cached.
    pub(crate) fn cached_blocks(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_meta_covers_every_opcode() {
        for op in 0u16..=255 {
            let (operands, cycles, _) = decode_meta(op as u8);
            assert!(operands <= 2, "opcode {op:#04x} operands");
            assert!((1..=4).contains(&cycles), "opcode {op:#04x} cycles");
            assert_eq!(OPERAND_COUNT[op as usize], operands);
            assert_eq!(BASE_CYCLES[op as usize], cycles);
        }
    }

    #[test]
    fn micro_op_is_cache_friendly() {
        assert_eq!(std::mem::size_of::<MicroOp>(), 8);
    }

    #[test]
    fn block_terminates_at_unconditional_flow() {
        // mov a,#1; add a,#2; sjmp -4
        let code = [0x74, 0x01, 0x24, 0x02, 0x80, 0xfc];
        let mut cache = XlateCache::default();
        let first = cache.lookup(0, &code).expect("block decodes");
        assert_eq!(first.op, 0x74);
        assert_eq!(first.size_bytes(), 2);
        let meta = cache.blocks[0];
        assert_eq!((meta.entry, meta.end), (0, 6));
        assert_eq!(meta.end_op - meta.first_op, 3);
        assert_eq!(cache.ops[2].class(), OpClass::Flow);
        assert_eq!(cache.ops[1].a, 0x02);
    }

    #[test]
    fn block_runs_through_conditional_flow() {
        // djnz r0,-2 ; nop ; sjmp -4 — the conditional does not end it.
        let code = [0xd8, 0xfe, 0x00, 0x80, 0xfc];
        let mut cache = XlateCache::default();
        let first = cache.lookup(0, &code).expect("block decodes");
        assert_eq!(first.class(), OpClass::CondFlow);
        let meta = cache.blocks[0];
        assert_eq!(meta.end_op - meta.first_op, 3);
    }

    #[test]
    fn block_stops_at_end_of_image() {
        let code = [0x00, 0x00]; // two NOPs, no terminator
        let mut cache = XlateCache::default();
        cache.lookup(0, &code).expect("block decodes");
        let meta = cache.blocks[0];
        assert_eq!(meta.end_op - meta.first_op, 2);
        assert_eq!(meta.end, 2);
    }

    #[test]
    fn cursor_replays_straight_line_and_detects_divergence() {
        let code = [0x74, 0x01, 0x24, 0x02, 0x80, 0xfc];
        let mut cache = XlateCache::default();
        let u0 = cache.lookup(0, &code).expect("entry");
        let u1 = cache.cursor_next(u0.next_pc).expect("fall-through");
        assert_eq!(u1.op, 0x24);
        // Control flow diverged (e.g. interrupt): wrong PC → miss.
        assert!(cache.cursor_next(0x0003).is_none());
    }

    #[test]
    fn lookup_miss_then_hit_then_flush() {
        let code = [0x74, 0x2a, 0x80, 0xfc]; // mov a,#42; sjmp -4
        let mut cache = XlateCache::default();
        let first = cache.lookup(0, &code).expect("first micro-op");
        assert_eq!(first.op, 0x74);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.lookup(0, &code).expect("cached micro-op");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        cache.code_written(3); // inside the block span
        assert_eq!(cache.invalidations(), 1);
        assert_eq!(cache.cached_blocks(), 0);
    }

    #[test]
    fn write_outside_span_does_not_flush() {
        let code = [0x74, 0x2a, 0x80, 0xfc, 0x00, 0x00, 0x00, 0x00];
        let mut cache = XlateCache::default();
        cache.lookup(0, &code).expect("decodes");
        cache.code_written(6); // beyond block end (4)
        assert_eq!(cache.invalidations(), 0);
        assert_eq!(cache.cached_blocks(), 1);
    }
}
