//! Radix-2 FFT, window functions and Welch PSD estimation.
//!
//! This is the *measurement* side of the reproduction: the paper's noise row
//! (rate noise density, °/s/√Hz) and bandwidth row (3 dB point) come from
//! spectrum analysis of the rate output. These run in `f64` — they model the
//! bench instrument, not the chip.

use std::f64::consts::PI;

/// In-place iterative radix-2 decimation-in-time FFT.
///
/// `re`/`im` hold the real and imaginary parts; length must be a power of
/// two.
///
/// # Panics
///
/// Panics if the slices differ in length or the length is not a power of
/// two (zero included).
pub fn fft(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    assert_eq!(n, im.len(), "fft needs equal-length re/im");
    assert!(
        n.is_power_of_two() && n > 0,
        "fft length must be a power of two"
    );
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let a = start + k;
                let b = a + len / 2;
                let tr = re[b] * cr - im[b] * ci;
                let ti = re[b] * ci + im[b] * cr;
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
        }
        len <<= 1;
    }
}

/// Inverse FFT (unscaled by 1/N internally; this function applies the 1/N).
///
/// # Panics
///
/// Same conditions as [`fft`].
pub fn ifft(re: &mut [f64], im: &mut [f64]) {
    for v in im.iter_mut() {
        *v = -*v;
    }
    fft(re, im);
    let n = re.len() as f64;
    for (r, i) in re.iter_mut().zip(im.iter_mut()) {
        *r /= n;
        *i = -*i / n;
    }
}

/// Window functions for spectral estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Window {
    /// Rectangular (no taper).
    Rectangular,
    /// Hann (default for Welch PSD).
    #[default]
    Hann,
    /// Hamming.
    Hamming,
    /// Blackman.
    Blackman,
}

impl Window {
    /// Evaluates the window at index `i` of `n` points.
    #[must_use]
    pub fn value(self, i: usize, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        let x = 2.0 * PI * i as f64 / (n - 1) as f64;
        match self {
            Self::Rectangular => 1.0,
            Self::Hann => 0.5 * (1.0 - x.cos()),
            Self::Hamming => 0.54 - 0.46 * x.cos(),
            Self::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
        }
    }

    /// Generates the full window.
    #[must_use]
    pub fn generate(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.value(i, n)).collect()
    }
}

/// One-sided Welch power-spectral-density estimate.
///
/// Returns `(frequencies_hz, psd)` where `psd[k]` is in units²/Hz. Segments
/// of `segment_len` (power of two) overlap by 50 % and are windowed with
/// `window`; the estimate is normalized so that white noise of variance σ²
/// gives a flat density of `σ² / (fs/2)`.
///
/// # Panics
///
/// Panics if `segment_len` is not a power of two, the signal is shorter
/// than one segment, or `fs` is not positive.
///
/// # Example
///
/// ```
/// use ascp_dsp::fft::{welch_psd, Window};
/// // 1 kHz samples of unit-variance-ish noise.
/// let xs: Vec<f64> = (0..4096).map(|k| if k % 2 == 0 { 1.0 } else { -1.0 }).collect();
/// let (f, psd) = welch_psd(&xs, 1000.0, 256, Window::Hann);
/// assert_eq!(f.len(), psd.len());
/// assert_eq!(f.len(), 129);
/// ```
#[must_use]
pub fn welch_psd(xs: &[f64], fs: f64, segment_len: usize, window: Window) -> (Vec<f64>, Vec<f64>) {
    assert!(fs > 0.0, "sample rate must be positive");
    assert!(
        segment_len.is_power_of_two() && segment_len > 1,
        "segment length must be a power of two > 1"
    );
    assert!(
        xs.len() >= segment_len,
        "signal ({}) shorter than one segment ({segment_len})",
        xs.len()
    );
    let w = window.generate(segment_len);
    let win_power: f64 = w.iter().map(|v| v * v).sum::<f64>() / segment_len as f64;
    let hop = segment_len / 2;
    let n_bins = segment_len / 2 + 1;
    let mut psd = vec![0.0f64; n_bins];
    let mut segments = 0usize;
    let mut start = 0usize;
    while start + segment_len <= xs.len() {
        let seg = &xs[start..start + segment_len];
        let seg_mean = seg.iter().sum::<f64>() / segment_len as f64;
        let mut re: Vec<f64> = seg
            .iter()
            .zip(&w)
            .map(|(x, wi)| (x - seg_mean) * wi)
            .collect();
        let mut im = vec![0.0f64; segment_len];
        fft(&mut re, &mut im);
        for k in 0..n_bins {
            let p = re[k] * re[k] + im[k] * im[k];
            // One-sided scaling: double interior bins.
            let scale = if k == 0 || k == n_bins - 1 { 1.0 } else { 2.0 };
            psd[k] += scale * p / (fs * segment_len as f64 * win_power);
        }
        segments += 1;
        start += hop;
    }
    for p in &mut psd {
        *p /= segments as f64;
    }
    let freqs = (0..n_bins)
        .map(|k| k as f64 * fs / segment_len as f64)
        .collect();
    (freqs, psd)
}

/// Average amplitude spectral density (units/√Hz) over `[f_lo, f_hi]` from a
/// Welch PSD — the way a "rate noise density" datasheet number is read off a
/// spectrum analyzer.
///
/// # Panics
///
/// Panics if the band contains no bins.
#[must_use]
pub fn band_density(freqs: &[f64], psd: &[f64], f_lo: f64, f_hi: f64) -> f64 {
    let vals: Vec<f64> = freqs
        .iter()
        .zip(psd)
        .filter(|(f, _)| **f >= f_lo && **f <= f_hi)
        .map(|(_, p)| *p)
        .collect();
    assert!(!vals.is_empty(), "no PSD bins between {f_lo} and {f_hi} Hz");
    (vals.iter().sum::<f64>() / vals.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut re = vec![0.0; 16];
        let mut im = vec![0.0; 16];
        re[0] = 1.0;
        fft(&mut re, &mut im);
        for k in 0..16 {
            assert!(
                (re[k] - 1.0).abs() < 1e-12 && im[k].abs() < 1e-12,
                "bin {k}"
            );
        }
    }

    #[test]
    fn fft_of_sine_peaks_at_bin() {
        let n = 256;
        let f_bin = 10;
        let mut re: Vec<f64> = (0..n)
            .map(|k| (2.0 * PI * f_bin as f64 * k as f64 / n as f64).sin())
            .collect();
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im);
        let mags: Vec<f64> = re.iter().zip(&im).map(|(r, i)| r.hypot(*i)).collect();
        let peak = mags
            .iter()
            .enumerate()
            .take(n / 2)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        assert_eq!(peak, f_bin);
        assert!((mags[f_bin] - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn ifft_round_trip() {
        let n = 64;
        let orig: Vec<f64> = (0..n).map(|k| (k as f64 * 0.37).sin()).collect();
        let mut re = orig.clone();
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im);
        ifft(&mut re, &mut im);
        for k in 0..n {
            assert!((re[k] - orig[k]).abs() < 1e-10, "sample {k}");
            assert!(im[k].abs() < 1e-10, "imag {k}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut re = vec![0.0; 12];
        let mut im = vec![0.0; 12];
        fft(&mut re, &mut im);
    }

    #[test]
    fn windows_are_bounded_and_symmetric() {
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let v = w.generate(64);
            for (i, &x) in v.iter().enumerate() {
                assert!((-1e-12..=1.0).contains(&x), "{w:?}[{i}] = {x}");
                assert!((x - v[63 - i]).abs() < 1e-12, "{w:?} asymmetric at {i}");
            }
        }
    }

    #[test]
    fn welch_white_noise_density() {
        let mut rng = ascp_sim::noise::Rng64::new(1);
        let fs = 1000.0;
        let sigma = 0.5f64;
        // Uniform noise with matching variance: var = (2a)²/12 = sigma².
        let a = sigma * 3f64.sqrt();
        let xs: Vec<f64> = (0..1 << 16).map(|_| rng.gen_range(-a, a)).collect();
        let (freqs, psd) = welch_psd(&xs, fs, 1024, Window::Hann);
        let d = band_density(&freqs, &psd, 50.0, 400.0);
        let expect = sigma / (fs / 2.0f64).sqrt();
        assert!(
            (d - expect).abs() / expect < 0.1,
            "density {d} vs expected {expect}"
        );
    }

    #[test]
    fn welch_sine_peak_location() {
        let fs = 1000.0;
        let f0 = 100.0;
        let xs: Vec<f64> = (0..8192)
            .map(|k| (2.0 * PI * f0 * k as f64 / fs).sin())
            .collect();
        let (freqs, psd) = welch_psd(&xs, fs, 512, Window::Hann);
        let peak = psd
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| freqs[i])
            .expect("non-empty");
        assert!((peak - f0).abs() < fs / 512.0 + 1e-9, "peak at {peak}");
    }

    #[test]
    fn band_density_rejects_empty_band() {
        let r = std::panic::catch_unwind(|| band_density(&[0.0, 1.0], &[1.0, 1.0], 5.0, 6.0));
        assert!(r.is_err());
    }
}
