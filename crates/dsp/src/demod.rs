//! Synchronous (coherent) demodulator and modulator.
//!
//! The rate information rides on the secondary pickoff as an amplitude
//! modulation of the ~15 kHz carrier, phase-locked to the drive. The
//! demodulator mixes the pickoff with the PLL references and low-pass
//! filters to baseband; the in-phase channel carries the Coriolis (rate)
//! signal and the quadrature channel carries the mechanical quadrature
//! error, which the closed-loop controller nulls.
//!
//! The modulator is the reverse path: it re-modulates the force-rebalance
//! command onto the carrier for the secondary drive DACs.

use crate::fir::{DecimatingFir, DecimatingFirLanes, FirFilter};
use crate::fixed::Q15;
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};

/// I/Q synchronous demodulator with decimating post-filters.
#[derive(Debug, Clone)]
pub struct Demodulator {
    i_filter: DecimatingFir,
    q_filter: DecimatingFir,
    last: Option<IqSample>,
}

/// One baseband output pair from the demodulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IqSample {
    /// In-phase (rate) channel.
    pub i: Q15,
    /// Quadrature (error) channel.
    pub q: Q15,
}

impl Demodulator {
    /// Creates a demodulator whose post-mixer lowpass has the given
    /// `cutoff` (fraction of the input rate), `taps`, and output
    /// `decimation`.
    ///
    /// # Panics
    ///
    /// Panics on invalid filter parameters (see
    /// [`crate::fir::design_lowpass`]) or zero decimation.
    #[must_use]
    pub fn new(cutoff: f64, taps: usize, decimation: u32) -> Self {
        let proto = FirFilter::lowpass(cutoff, taps);
        Self {
            i_filter: DecimatingFir::new(proto.clone(), decimation),
            q_filter: DecimatingFir::new(proto, decimation),
            last: None,
        }
    }

    /// Feeds one carrier-rate sample with the PLL `(sin, cos)` references.
    /// Returns `Some` on decimated output ticks.
    pub fn process(&mut self, x: Q15, sin_ref: Q15, cos_ref: Q15) -> Option<IqSample> {
        // Mix to baseband. The mixer halves the signal (sin²→½); shift left
        // one bit to restore scale, as the RTL would.
        let i_mix = x.mul(sin_ref).shl(1);
        let q_mix = x.mul(cos_ref).shl(1);
        let i = self.i_filter.process(i_mix);
        let q = self.q_filter.process(q_mix);
        match (i, q) {
            (Some(i), Some(q)) => {
                let s = IqSample { i, q };
                self.last = Some(s);
                Some(s)
            }
            (None, None) => None,
            // Both filters share the decimation phase; anything else is a bug.
            _ => unreachable!("demodulator I/Q decimators out of phase"),
        }
    }

    /// Most recent output pair.
    #[must_use]
    pub fn last(&self) -> Option<IqSample> {
        self.last
    }

    /// Output decimation factor.
    #[must_use]
    pub fn decimation(&self) -> u32 {
        self.i_filter.factor()
    }

    /// Clears filter state.
    pub fn reset(&mut self) {
        self.i_filter.reset();
        self.q_filter.reset();
        self.last = None;
    }

    /// Saturated outputs across both channel filters (monotonic; a nonzero
    /// rate means the baseband datapath is clipping).
    #[must_use]
    pub fn saturations(&self) -> u64 {
        self.i_filter.saturations() + self.q_filter.saturations()
    }

    /// Serializes both channel filters and the held output pair.
    pub fn save_state(&self, w: &mut StateWriter) {
        self.i_filter.save_state(w);
        self.q_filter.save_state(w);
        match self.last {
            Some(s) => {
                w.put_bool(true);
                w.put_i32(s.i.raw());
                w.put_i32(s.q.raw());
            }
            None => w.put_bool(false),
        }
    }

    /// Restores state saved by [`Demodulator::save_state`].
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.i_filter.load_state(r)?;
        self.q_filter.load_state(r)?;
        self.last = if r.take_bool()? {
            Some(IqSample {
                i: Q15::from_raw(r.take_i32()?),
                q: Q15::from_raw(r.take_i32()?),
            })
        } else {
            None
        };
        Ok(())
    }
}

/// Lane-parallel I/Q demodulator: per-lane mixing against per-lane PLL
/// references, then both channel filters as [`DecimatingFirLanes`].
///
/// All arithmetic is fixed point and identical to [`Demodulator::process`],
/// so emitted baseband pairs match the scalar demodulators bit for bit.
#[derive(Debug, Clone)]
pub struct DemodLanes {
    i_filter: DecimatingFirLanes,
    q_filter: DecimatingFirLanes,
    last: Vec<Option<IqSample>>,
    i_mix: Vec<i32>,
    q_mix: Vec<i32>,
    i_out: Vec<i32>,
    q_out: Vec<i32>,
}

impl DemodLanes {
    /// Captures N demodulators for lockstep processing.
    ///
    /// Returns `None` if the channel filters are not design- and
    /// phase-uniform across lanes.
    pub fn extract<'a>(demods: impl Iterator<Item = &'a Demodulator>) -> Option<Self> {
        let ds: Vec<&Demodulator> = demods.collect();
        let i_filter = DecimatingFirLanes::extract(ds.iter().map(|d| &d.i_filter))?;
        let q_filter = DecimatingFirLanes::extract(ds.iter().map(|d| &d.q_filter))?;
        let n = ds.len();
        Some(Self {
            i_filter,
            q_filter,
            last: ds.iter().map(|d| d.last).collect(),
            i_mix: vec![0; n],
            q_mix: vec![0; n],
            i_out: vec![0; n],
            q_out: vec![0; n],
        })
    }

    /// Writes filter state and the held output pairs back.
    pub fn restore<'a>(&self, demods: impl Iterator<Item = &'a mut Demodulator>) {
        let mut ds: Vec<&mut Demodulator> = demods.collect();
        self.i_filter
            .restore(ds.iter_mut().map(|d| &mut d.i_filter));
        self.q_filter
            .restore(ds.iter_mut().map(|d| &mut d.q_filter));
        for (l, d) in ds.into_iter().enumerate() {
            d.last = self.last[l];
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.last.len()
    }

    /// Feeds one carrier-rate sample per lane with that lane's `(sin, cos)`
    /// references. Returns `true` on decimated output ticks, with the
    /// baseband pairs in `out`.
    #[inline]
    pub fn process(
        &mut self,
        x: &[Q15],
        sin_ref: &[Q15],
        cos_ref: &[Q15],
        out: &mut [IqSample],
    ) -> bool {
        let n = self.last.len();
        for l in 0..n {
            self.i_mix[l] = x[l].mul(sin_ref[l]).shl(1).raw();
            self.q_mix[l] = x[l].mul(cos_ref[l]).shl(1).raw();
        }
        let emit_i = self.i_filter.process(&self.i_mix, &mut self.i_out);
        let emit_q = self.q_filter.process(&self.q_mix, &mut self.q_out);
        debug_assert_eq!(emit_i, emit_q, "demodulator I/Q decimators out of phase");
        if !emit_i {
            return false;
        }
        for (l, o) in out.iter_mut().enumerate().take(n) {
            let s = IqSample {
                i: Q15::from_raw(self.i_out[l]),
                q: Q15::from_raw(self.q_out[l]),
            };
            self.last[l] = Some(s);
            *o = s;
        }
        true
    }
}

/// Carrier re-modulator for the secondary (force-rebalance) drive.
///
/// Output = `i · sin + q · cos`, saturating: the rate-nulling force goes on
/// the in-phase axis, the quadrature-nulling force on the quadrature axis.
#[derive(Debug, Clone, Copy, Default)]
pub struct Modulator;

impl Modulator {
    /// Creates a modulator.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Produces one carrier-rate drive sample from baseband commands.
    #[must_use]
    pub fn process(&self, cmd: IqSample, sin_ref: Q15, cos_ref: Q15) -> Q15 {
        cmd.i.mul(sin_ref).sat_add(cmd.q.mul(cos_ref))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nco::Nco;

    const FS: f64 = 250_000.0;
    const FC: f64 = 15_000.0;

    fn make_demod() -> Demodulator {
        // 1 kHz cutoff at 250 kHz rate, decimate by 25 → 10 kHz output rate.
        Demodulator::new(1000.0 / FS, 101, 25)
    }

    #[test]
    fn inphase_am_lands_on_i_channel() {
        let mut nco = Nco::new();
        nco.set_frequency(FC, FS);
        let mut d = make_demod();
        let mut last = IqSample::default();
        for _ in 0..60_000 {
            let (s, c) = nco.tick();
            // AM on the in-phase axis with amplitude 0.3.
            let x = Q15::from_f64(0.3 * s.to_f64());
            if let Some(out) = d.process(x, s, c) {
                last = out;
            }
        }
        assert!(
            (last.i.to_f64() - 0.3).abs() < 0.01,
            "I = {}",
            last.i.to_f64()
        );
        assert!(last.q.to_f64().abs() < 0.01, "Q = {}", last.q.to_f64());
    }

    #[test]
    fn quadrature_am_lands_on_q_channel() {
        let mut nco = Nco::new();
        nco.set_frequency(FC, FS);
        let mut d = make_demod();
        let mut last = IqSample::default();
        for _ in 0..60_000 {
            let (s, c) = nco.tick();
            let x = Q15::from_f64(0.2 * c.to_f64());
            if let Some(out) = d.process(x, s, c) {
                last = out;
            }
        }
        assert!(last.i.to_f64().abs() < 0.01, "I = {}", last.i.to_f64());
        assert!(
            (last.q.to_f64() - 0.2).abs() < 0.01,
            "Q = {}",
            last.q.to_f64()
        );
    }

    #[test]
    fn tracks_slow_modulation() {
        // 50 Hz AM (a 50 Hz rate input in disguise) must survive the 1 kHz
        // channel filter.
        let mut nco = Nco::new();
        nco.set_frequency(FC, FS);
        let mut d = make_demod();
        let mut outs = Vec::new();
        let n = (0.5 * FS) as usize;
        for k in 0..n {
            let (s, c) = nco.tick();
            let env = 0.25 * (2.0 * std::f64::consts::PI * 50.0 * k as f64 / FS).sin();
            let x = Q15::from_f64(env * s.to_f64());
            if let Some(out) = d.process(x, s, c) {
                outs.push(out.i.to_f64());
            }
        }
        let tail = &outs[outs.len() / 2..];
        let peak = tail.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!((peak - 0.25).abs() < 0.02, "peak {peak}");
    }

    #[test]
    fn rejects_double_frequency_ripple() {
        // Demodulating a clean carrier must not leak the 2·fc product.
        let mut nco = Nco::new();
        nco.set_frequency(FC, FS);
        let mut d = make_demod();
        let mut outs = Vec::new();
        for _ in 0..120_000 {
            let (s, c) = nco.tick();
            let x = Q15::from_f64(0.4 * s.to_f64());
            if let Some(out) = d.process(x, s, c) {
                outs.push(out.i.to_f64());
            }
        }
        let tail = &outs[outs.len() - 200..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let ripple = tail.iter().fold(0.0f64, |m, v| m.max((v - mean).abs()));
        assert!(ripple < 2e-3, "ripple {ripple}");
    }

    #[test]
    fn modulator_round_trips_through_demodulator() {
        let mut nco = Nco::new();
        nco.set_frequency(FC, FS);
        let m = Modulator::new();
        let mut d = make_demod();
        let cmd = IqSample {
            i: Q15::from_f64(0.15),
            q: Q15::from_f64(-0.1),
        };
        let mut last = IqSample::default();
        for _ in 0..60_000 {
            let (s, c) = nco.tick();
            let x = m.process(cmd, s, c);
            if let Some(out) = d.process(x, s, c) {
                last = out;
            }
        }
        // Modulator does not apply the ×2 restore; demod channel gain is ×1
        // for a modulated pair at half amplitude.
        assert!(
            (last.i.to_f64() - 0.15).abs() < 0.01,
            "I {}",
            last.i.to_f64()
        );
        assert!(
            (last.q.to_f64() + 0.1).abs() < 0.01,
            "Q {}",
            last.q.to_f64()
        );
    }

    #[test]
    fn reset_clears_output() {
        let mut d = make_demod();
        let mut nco = Nco::new();
        nco.set_frequency(FC, FS);
        for _ in 0..1000 {
            let (s, c) = nco.tick();
            d.process(Q15::from_f64(0.3), s, c);
        }
        d.reset();
        assert!(d.last().is_none());
    }

    #[test]
    fn decimation_accessor() {
        assert_eq!(make_demod().decimation(), 25);
    }

    #[test]
    fn demod_lanes_match_scalar_bit_for_bit() {
        // Per-lane NCO frequencies differ slightly (Monte-Carlo dispersion);
        // the batched I/Q path must match each scalar demodulator exactly.
        for n in [1usize, 4, 8] {
            let mut scalars: Vec<Demodulator> = (0..n).map(|_| make_demod()).collect();
            let mut ncos: Vec<Nco> = (0..n)
                .map(|i| {
                    let mut nco = Nco::new();
                    nco.set_frequency(FC * (1.0 + 0.001 * i as f64), FS);
                    nco
                })
                .collect();
            let mut lanes = DemodLanes::extract(scalars.iter()).expect("uniform design");
            let mut reference = scalars.clone();
            let mut x = vec![Q15::ZERO; n];
            let mut s = vec![Q15::ZERO; n];
            let mut c = vec![Q15::ZERO; n];
            let mut out = vec![IqSample::default(); n];
            for k in 0..2000u64 {
                for (l, nco) in ncos.iter_mut().enumerate() {
                    let (sl, cl) = nco.tick();
                    s[l] = sl;
                    c[l] = cl;
                    x[l] = Q15::from_f64(0.3 * sl.to_f64() + 0.001 * (k as f64 * 0.3).sin());
                }
                let emitted = lanes.process(&x, &s, &c, &mut out);
                for (l, d) in reference.iter_mut().enumerate() {
                    let scalar = d.process(x[l], s[l], c[l]);
                    match (emitted, scalar) {
                        (true, Some(sc)) => assert_eq!(sc, out[l], "lane {l} tick {k}"),
                        (false, None) => {}
                        _ => panic!("emission phase diverged at lane {l} tick {k}"),
                    }
                }
            }
            lanes.restore(scalars.iter_mut());
            for ((a, b), nco) in scalars.iter_mut().zip(reference.iter_mut()).zip(&mut ncos) {
                for _ in 0..60 {
                    let (sl, cl) = nco.tick();
                    let x = Q15::from_f64(0.2 * sl.to_f64());
                    assert_eq!(a.process(x, sl, cl), b.process(x, sl, cl));
                }
                assert_eq!(a.saturations(), b.saturations());
                assert_eq!(a.last(), b.last());
            }
        }
    }
}
