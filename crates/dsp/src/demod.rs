//! Synchronous (coherent) demodulator and modulator.
//!
//! The rate information rides on the secondary pickoff as an amplitude
//! modulation of the ~15 kHz carrier, phase-locked to the drive. The
//! demodulator mixes the pickoff with the PLL references and low-pass
//! filters to baseband; the in-phase channel carries the Coriolis (rate)
//! signal and the quadrature channel carries the mechanical quadrature
//! error, which the closed-loop controller nulls.
//!
//! The modulator is the reverse path: it re-modulates the force-rebalance
//! command onto the carrier for the secondary drive DACs.

use crate::fir::{DecimatingFir, FirFilter};
use crate::fixed::Q15;
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};

/// I/Q synchronous demodulator with decimating post-filters.
#[derive(Debug, Clone)]
pub struct Demodulator {
    i_filter: DecimatingFir,
    q_filter: DecimatingFir,
    last: Option<IqSample>,
}

/// One baseband output pair from the demodulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IqSample {
    /// In-phase (rate) channel.
    pub i: Q15,
    /// Quadrature (error) channel.
    pub q: Q15,
}

impl Demodulator {
    /// Creates a demodulator whose post-mixer lowpass has the given
    /// `cutoff` (fraction of the input rate), `taps`, and output
    /// `decimation`.
    ///
    /// # Panics
    ///
    /// Panics on invalid filter parameters (see
    /// [`crate::fir::design_lowpass`]) or zero decimation.
    #[must_use]
    pub fn new(cutoff: f64, taps: usize, decimation: u32) -> Self {
        let proto = FirFilter::lowpass(cutoff, taps);
        Self {
            i_filter: DecimatingFir::new(proto.clone(), decimation),
            q_filter: DecimatingFir::new(proto, decimation),
            last: None,
        }
    }

    /// Feeds one carrier-rate sample with the PLL `(sin, cos)` references.
    /// Returns `Some` on decimated output ticks.
    pub fn process(&mut self, x: Q15, sin_ref: Q15, cos_ref: Q15) -> Option<IqSample> {
        // Mix to baseband. The mixer halves the signal (sin²→½); shift left
        // one bit to restore scale, as the RTL would.
        let i_mix = x.mul(sin_ref).shl(1);
        let q_mix = x.mul(cos_ref).shl(1);
        let i = self.i_filter.process(i_mix);
        let q = self.q_filter.process(q_mix);
        match (i, q) {
            (Some(i), Some(q)) => {
                let s = IqSample { i, q };
                self.last = Some(s);
                Some(s)
            }
            (None, None) => None,
            // Both filters share the decimation phase; anything else is a bug.
            _ => unreachable!("demodulator I/Q decimators out of phase"),
        }
    }

    /// Most recent output pair.
    #[must_use]
    pub fn last(&self) -> Option<IqSample> {
        self.last
    }

    /// Output decimation factor.
    #[must_use]
    pub fn decimation(&self) -> u32 {
        self.i_filter.factor()
    }

    /// Clears filter state.
    pub fn reset(&mut self) {
        self.i_filter.reset();
        self.q_filter.reset();
        self.last = None;
    }

    /// Saturated outputs across both channel filters (monotonic; a nonzero
    /// rate means the baseband datapath is clipping).
    #[must_use]
    pub fn saturations(&self) -> u64 {
        self.i_filter.saturations() + self.q_filter.saturations()
    }

    /// Serializes both channel filters and the held output pair.
    pub fn save_state(&self, w: &mut StateWriter) {
        self.i_filter.save_state(w);
        self.q_filter.save_state(w);
        match self.last {
            Some(s) => {
                w.put_bool(true);
                w.put_i32(s.i.raw());
                w.put_i32(s.q.raw());
            }
            None => w.put_bool(false),
        }
    }

    /// Restores state saved by [`Demodulator::save_state`].
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.i_filter.load_state(r)?;
        self.q_filter.load_state(r)?;
        self.last = if r.take_bool()? {
            Some(IqSample {
                i: Q15::from_raw(r.take_i32()?),
                q: Q15::from_raw(r.take_i32()?),
            })
        } else {
            None
        };
        Ok(())
    }
}

/// Carrier re-modulator for the secondary (force-rebalance) drive.
///
/// Output = `i · sin + q · cos`, saturating: the rate-nulling force goes on
/// the in-phase axis, the quadrature-nulling force on the quadrature axis.
#[derive(Debug, Clone, Copy, Default)]
pub struct Modulator;

impl Modulator {
    /// Creates a modulator.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Produces one carrier-rate drive sample from baseband commands.
    #[must_use]
    pub fn process(&self, cmd: IqSample, sin_ref: Q15, cos_ref: Q15) -> Q15 {
        cmd.i.mul(sin_ref).sat_add(cmd.q.mul(cos_ref))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nco::Nco;

    const FS: f64 = 250_000.0;
    const FC: f64 = 15_000.0;

    fn make_demod() -> Demodulator {
        // 1 kHz cutoff at 250 kHz rate, decimate by 25 → 10 kHz output rate.
        Demodulator::new(1000.0 / FS, 101, 25)
    }

    #[test]
    fn inphase_am_lands_on_i_channel() {
        let mut nco = Nco::new();
        nco.set_frequency(FC, FS);
        let mut d = make_demod();
        let mut last = IqSample::default();
        for _ in 0..60_000 {
            let (s, c) = nco.tick();
            // AM on the in-phase axis with amplitude 0.3.
            let x = Q15::from_f64(0.3 * s.to_f64());
            if let Some(out) = d.process(x, s, c) {
                last = out;
            }
        }
        assert!(
            (last.i.to_f64() - 0.3).abs() < 0.01,
            "I = {}",
            last.i.to_f64()
        );
        assert!(last.q.to_f64().abs() < 0.01, "Q = {}", last.q.to_f64());
    }

    #[test]
    fn quadrature_am_lands_on_q_channel() {
        let mut nco = Nco::new();
        nco.set_frequency(FC, FS);
        let mut d = make_demod();
        let mut last = IqSample::default();
        for _ in 0..60_000 {
            let (s, c) = nco.tick();
            let x = Q15::from_f64(0.2 * c.to_f64());
            if let Some(out) = d.process(x, s, c) {
                last = out;
            }
        }
        assert!(last.i.to_f64().abs() < 0.01, "I = {}", last.i.to_f64());
        assert!(
            (last.q.to_f64() - 0.2).abs() < 0.01,
            "Q = {}",
            last.q.to_f64()
        );
    }

    #[test]
    fn tracks_slow_modulation() {
        // 50 Hz AM (a 50 Hz rate input in disguise) must survive the 1 kHz
        // channel filter.
        let mut nco = Nco::new();
        nco.set_frequency(FC, FS);
        let mut d = make_demod();
        let mut outs = Vec::new();
        let n = (0.5 * FS) as usize;
        for k in 0..n {
            let (s, c) = nco.tick();
            let env = 0.25 * (2.0 * std::f64::consts::PI * 50.0 * k as f64 / FS).sin();
            let x = Q15::from_f64(env * s.to_f64());
            if let Some(out) = d.process(x, s, c) {
                outs.push(out.i.to_f64());
            }
        }
        let tail = &outs[outs.len() / 2..];
        let peak = tail.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!((peak - 0.25).abs() < 0.02, "peak {peak}");
    }

    #[test]
    fn rejects_double_frequency_ripple() {
        // Demodulating a clean carrier must not leak the 2·fc product.
        let mut nco = Nco::new();
        nco.set_frequency(FC, FS);
        let mut d = make_demod();
        let mut outs = Vec::new();
        for _ in 0..120_000 {
            let (s, c) = nco.tick();
            let x = Q15::from_f64(0.4 * s.to_f64());
            if let Some(out) = d.process(x, s, c) {
                outs.push(out.i.to_f64());
            }
        }
        let tail = &outs[outs.len() - 200..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let ripple = tail.iter().fold(0.0f64, |m, v| m.max((v - mean).abs()));
        assert!(ripple < 2e-3, "ripple {ripple}");
    }

    #[test]
    fn modulator_round_trips_through_demodulator() {
        let mut nco = Nco::new();
        nco.set_frequency(FC, FS);
        let m = Modulator::new();
        let mut d = make_demod();
        let cmd = IqSample {
            i: Q15::from_f64(0.15),
            q: Q15::from_f64(-0.1),
        };
        let mut last = IqSample::default();
        for _ in 0..60_000 {
            let (s, c) = nco.tick();
            let x = m.process(cmd, s, c);
            if let Some(out) = d.process(x, s, c) {
                last = out;
            }
        }
        // Modulator does not apply the ×2 restore; demod channel gain is ×1
        // for a modulated pair at half amplitude.
        assert!(
            (last.i.to_f64() - 0.15).abs() < 0.01,
            "I {}",
            last.i.to_f64()
        );
        assert!(
            (last.q.to_f64() + 0.1).abs() < 0.01,
            "Q {}",
            last.q.to_f64()
        );
    }

    #[test]
    fn reset_clears_output() {
        let mut d = make_demod();
        let mut nco = Nco::new();
        nco.set_frequency(FC, FS);
        for _ in 0..1000 {
            let (s, c) = nco.tick();
            d.process(Q15::from_f64(0.3), s, c);
        }
        d.reset();
        assert!(d.last().is_none());
    }

    #[test]
    fn decimation_accessor() {
        assert_eq!(make_demod().decimation(), 25);
    }
}
