//! # ascp-dsp — fixed-point DSP IP portfolio
//!
//! The hardwired digital section of the ASCP platform (reproduction of
//! *Platform Based Design for Automotive Sensor Conditioning*, DATE 2005).
//! The paper's "DSP block" is a chain of dedicated IPs — "FIR/IIR filters,
//! modulator, demodulator, etc." — dimensioned from a MATLAB model and then
//! implemented in RTL. This crate is that IP portfolio, bit-accurate:
//!
//! | paper IP | module |
//! |---|---|
//! | fixed-point datapath | [`fixed`] (Q-format arithmetic with saturation) |
//! | FIR filters | [`fir`] (windowed-sinc design + MAC datapath) |
//! | IIR filters | [`iir`] (RBJ biquads, cascades) |
//! | decimators | [`cic`] (multiplier-free CIC) |
//! | PLL for primary drive | [`pll`] (phase detector + PI + NCO) |
//! | AGC for drive amplitude | [`agc`] |
//! | demodulator / modulator | [`demod`] |
//! | temperature/offset compensation | [`comp`] |
//! | oscillator reference | [`nco`], [`cordic`] |
//! | ΔΣ drive-DAC option | [`sigma_delta`] |
//! | bench-side spectrum analysis | [`fft`] (f64 FFT + Welch PSD) |
//!
//! # Example: demodulating a rate signal
//!
//! ```
//! use ascp_dsp::{demod::Demodulator, nco::Nco, fixed::Q15};
//!
//! let fs = 250_000.0;
//! let mut nco = Nco::new();
//! nco.set_frequency(15_000.0, fs);
//! let mut demod = Demodulator::new(1_000.0 / fs, 63, 25);
//! let mut rate = 0.0;
//! for _ in 0..50_000 {
//!     let (s, c) = nco.tick();
//!     let pickoff = Q15::from_f64(0.2 * s.to_f64()); // 0.2 FS in-phase AM
//!     if let Some(out) = demod.process(pickoff, s, c) {
//!         rate = out.i.to_f64();
//!     }
//! }
//! assert!((rate - 0.2).abs() < 0.01);
//! ```

pub mod agc;
pub mod cic;
pub mod comp;
pub mod cordic;
pub mod demod;
pub mod fft;
pub mod fir;
pub mod fixed;
pub mod iir;
pub mod nco;
pub mod pll;
pub mod sigma_delta;
