//! Numerically controlled oscillator (NCO / DDS).
//!
//! The PLL's "VCO" in the digital platform is an NCO: a 32-bit phase
//! accumulator whose increment is the control word, addressing a quarter-wave
//! sine lookup table. It provides the in-phase reference for the primary
//! drive and the quadrature references used by the demodulators.

use crate::fixed::Q15;
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};

/// Lookup-table size (quarter wave); full wave resolved to 4×1024 points,
/// matching a 12-bit phase truncation typical of small mixed-signal ASICs.
const QUARTER: usize = 1024;

/// Quarter-wave sine table in Q15, generated once per process.
fn sine_table() -> &'static [i32; QUARTER + 1] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[i32; QUARTER + 1]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0i32; QUARTER + 1];
        for (i, e) in t.iter_mut().enumerate() {
            let phase = std::f64::consts::FRAC_PI_2 * i as f64 / QUARTER as f64;
            *e = (phase.sin() * 32767.0).round() as i32;
        }
        t
    })
}

/// 32-bit phase-accumulator NCO with quarter-wave sine ROM.
///
/// The frequency resolution is `fs / 2^32`; at a 250 kHz DSP clock that is
/// ~58 µHz, far below the gyro resonance tolerance.
///
/// # Example
///
/// ```
/// use ascp_dsp::nco::Nco;
/// let mut nco = Nco::new();
/// nco.set_frequency(15_000.0, 250_000.0);
/// let (sin0, cos0) = nco.tick();
/// assert!(sin0.to_f64().abs() < 0.01); // starts at phase 0
/// assert!((cos0.to_f64() - 1.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Nco {
    phase: u32,
    increment: u32,
}

impl Nco {
    /// Creates an NCO at phase 0 with zero increment.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the phase increment directly (the PLL control word).
    pub fn set_increment(&mut self, increment: u32) {
        self.increment = increment;
    }

    /// Current phase increment.
    #[must_use]
    pub fn increment(&self) -> u32 {
        self.increment
    }

    /// Sets the output frequency `f` given sample rate `fs`.
    ///
    /// # Panics
    ///
    /// Panics if `fs` is not positive or `f` is negative or ≥ `fs`/2.
    pub fn set_frequency(&mut self, f: f64, fs: f64) {
        assert!(fs > 0.0, "sample rate must be positive");
        assert!(
            f >= 0.0 && f < fs / 2.0,
            "NCO frequency {f} outside [0, fs/2)"
        );
        self.increment = ((f / fs) * 2f64.powi(32)).round() as u32;
    }

    /// Converts an increment word back to hertz.
    #[must_use]
    pub fn increment_to_hz(increment: u32, fs: f64) -> f64 {
        increment as f64 / 2f64.powi(32) * fs
    }

    /// Output frequency in hertz for sample rate `fs`.
    #[must_use]
    pub fn frequency(&self, fs: f64) -> f64 {
        Self::increment_to_hz(self.increment, fs)
    }

    /// Current accumulator phase (full scale = 2π).
    #[must_use]
    pub fn phase(&self) -> u32 {
        self.phase
    }

    /// Resets phase to zero (increment preserved).
    pub fn reset(&mut self) {
        self.phase = 0;
    }

    /// Advances one sample and returns `(sin, cos)` of the *pre-advance*
    /// phase, so the first output after reset is `(0, 1)`.
    pub fn tick(&mut self) -> (Q15, Q15) {
        let out = Self::lookup(self.phase);
        self.phase = self.phase.wrapping_add(self.increment);
        out
    }

    /// Serializes the phase accumulator and increment.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_u32(self.phase);
        w.put_u32(self.increment);
    }

    /// Restores the phase accumulator and increment.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.phase = r.take_u32()?;
        self.increment = r.take_u32()?;
        Ok(())
    }

    /// Sine/cosine of an arbitrary 32-bit phase word.
    #[must_use]
    pub fn lookup(phase: u32) -> (Q15, Q15) {
        (
            Q15::from_raw(sin_from_phase(phase)),
            Q15::from_raw(sin_from_phase(phase.wrapping_add(1 << 30))),
        )
    }
}

/// Quarter-wave symmetric sine from a 32-bit phase word, Q15 raw value.
fn sin_from_phase(phase: u32) -> i32 {
    // Top 2 bits select the quadrant; next bits index the quarter table.
    let quadrant = phase >> 30;
    let idx = ((phase >> 20) & 0x3ff) as usize; // 10-bit index into QUARTER
    let t = sine_table();
    match quadrant {
        0 => t[idx],
        1 => t[QUARTER - idx],
        2 => -t[idx],
        _ => -t[QUARTER - idx],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrant_symmetry() {
        // sin at 90°, 180°, 270°.
        assert_eq!(sin_from_phase(1 << 30), 32767);
        assert_eq!(sin_from_phase(2 << 30), 0);
        assert_eq!(sin_from_phase(3u32 << 30), -32767);
    }

    #[test]
    fn frequency_round_trip() {
        let mut nco = Nco::new();
        nco.set_frequency(15_000.0, 250_000.0);
        assert!((nco.frequency(250_000.0) - 15_000.0).abs() < 0.001);
    }

    #[test]
    fn output_is_sinusoidal() {
        let fs = 250_000.0;
        let f = 15_000.0;
        let mut nco = Nco::new();
        nco.set_frequency(f, fs);
        let mut max_err = 0.0f64;
        for k in 0..5000 {
            let (s, c) = nco.tick();
            let expect = 2.0 * std::f64::consts::PI * f * k as f64 / fs;
            let es = (s.to_f64() - expect.sin()).abs();
            let ec = (c.to_f64() - expect.cos()).abs();
            max_err = max_err.max(es).max(ec);
        }
        // 10-bit table + phase truncation: ~2^-10 worst-case error.
        assert!(max_err < 4.0e-3, "max error {max_err}");
    }

    #[test]
    fn sin_cos_orthogonality() {
        let mut nco = Nco::new();
        nco.set_frequency(12_345.0, 250_000.0);
        let mut dot = 0.0f64;
        let n = 100_000;
        for _ in 0..n {
            let (s, c) = nco.tick();
            dot += s.to_f64() * c.to_f64();
        }
        assert!((dot / n as f64).abs() < 1e-3);
    }

    #[test]
    fn zero_increment_freezes_phase() {
        let mut nco = Nco::new();
        let a = nco.tick();
        let b = nco.tick();
        assert_eq!(a, b);
        assert_eq!(nco.phase(), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_nyquist_frequency() {
        let mut nco = Nco::new();
        nco.set_frequency(125_000.0, 250_000.0);
    }

    #[test]
    fn reset_preserves_increment() {
        let mut nco = Nco::new();
        nco.set_frequency(1000.0, 250_000.0);
        nco.tick();
        nco.reset();
        assert_eq!(nco.phase(), 0);
        assert!(nco.increment() > 0);
    }

    #[test]
    fn increment_to_hz_inverse() {
        let fs = 250_000.0;
        for f in [0.0, 100.0, 15_000.0, 100_000.0] {
            let mut nco = Nco::new();
            nco.set_frequency(f, fs);
            assert!((Nco::increment_to_hz(nco.increment(), fs) - f).abs() < 1e-3);
        }
    }
}
