//! Digital PLL for primary-mode drive.
//!
//! The gyro's vibrating ring must be driven exactly at its (temperature
//! dependent) resonance, ~15 kHz. The paper's platform does this with a PLL
//! whose waveforms are the subject of Fig. 5 (MATLAB) and Fig. 6 (measured):
//! *phase error*, *VCO control* and — together with the AGC — *amplitude
//! control/error*.
//!
//! Structure (all fixed point):
//!
//! ```text
//!  pickoff ──► phase detector ──► PI loop filter ──► NCO ──► drive reference
//!                 (I·sin)            (Kp, Ki)        (32-bit accumulator)
//! ```
//!
//! The phase detector multiplies the band-limited pickoff signal by the NCO
//! cosine; at lock the pickoff is in phase with the NCO sine, the product's
//! DC term is proportional to the phase error, and the double-frequency term
//! is removed by the loop filter's low-pass behaviour plus an explicit
//! averaging stage.

use crate::fixed::Q15;
use crate::nco::Nco;
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};

/// PLL configuration (gains are applied to the Q15 phase-detector output).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PllConfig {
    /// DSP sample rate in Hz.
    pub sample_rate: f64,
    /// NCO start frequency (Hz) — the centre of the capture range.
    pub center_freq: f64,
    /// Proportional gain (Hz of NCO shift per unit phase-detector output).
    pub kp: f64,
    /// Integral gain (Hz per unit output per second).
    pub ki: f64,
    /// Phase-detector averaging length (samples, power of two preferred).
    pub pd_average: u32,
    /// Lock detector: |averaged phase error| must stay below this for
    /// `lock_count` consecutive averaging windows.
    pub lock_threshold: f64,
    /// Consecutive in-threshold windows required to declare lock.
    pub lock_count: u32,
    /// Lock detector amplitude qualification: the averaged in-phase
    /// amplitude must stay at or above this (±1.0 full-scale units) for a
    /// window to count toward lock. Guards against the false-lock deadlock
    /// where a dead pickoff reads as zero phase error while the integrator
    /// sits on its rail, which would suppress the re-acquisition leak.
    pub lock_min_amplitude: f64,
}

impl Default for PllConfig {
    /// Gyro-drive defaults: 250 kHz sample rate, 15 kHz centre, loop
    /// bandwidth of a few hundred hertz (lock in tens of milliseconds).
    fn default() -> Self {
        Self {
            sample_rate: 250_000.0,
            center_freq: 15_000.0,
            kp: 800.0,
            ki: 60_000.0,
            pd_average: 16,
            lock_threshold: 0.02,
            lock_count: 64,
            lock_min_amplitude: 0.01,
        }
    }
}

impl PllConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field if the sample rate or
    /// centre frequency is non-positive, the centre is above Nyquist, gains
    /// are negative, or the averaging length is zero.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.sample_rate > 0.0) {
            return Err(format!(
                "sample_rate must be positive: {}",
                self.sample_rate
            ));
        }
        if !(self.center_freq > 0.0 && self.center_freq < self.sample_rate / 2.0) {
            return Err(format!(
                "center_freq {} outside (0, fs/2)",
                self.center_freq
            ));
        }
        if self.kp < 0.0 || self.ki < 0.0 {
            return Err("gains must be non-negative".to_owned());
        }
        if self.pd_average == 0 {
            return Err("pd_average must be non-zero".to_owned());
        }
        if !(0.0..1.0).contains(&self.lock_min_amplitude) {
            return Err(format!(
                "lock_min_amplitude {} outside [0, 1)",
                self.lock_min_amplitude
            ));
        }
        Ok(())
    }
}

/// Digital phase-locked loop (phase detector + PI filter + NCO).
#[derive(Debug, Clone)]
pub struct Pll {
    config: PllConfig,
    nco: Nco,
    /// Running sum for the phase-detector average (Q15 raw units).
    pd_acc: i64,
    /// Running sum for the in-phase amplitude average (Q15 raw units).
    amp_acc: i64,
    pd_count: u32,
    /// Last completed phase-detector average, in ±1.0 float units.
    phase_error: f64,
    /// Last completed in-phase amplitude average, in ±1.0 float units.
    amplitude: f64,
    /// Integrator state in Hz.
    integrator: f64,
    /// Current NCO frequency offset from centre, Hz.
    freq_offset: f64,
    locked_windows: u32,
    unlocked_windows: u32,
    locked: bool,
    lock_transitions: u64,
}

impl Pll {
    /// Builds a PLL from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.validate()` fails (use [`PllConfig::validate`] to
    /// check fallibly first).
    #[must_use]
    pub fn new(config: PllConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid PLL config: {e}");
        }
        let mut nco = Nco::new();
        nco.set_frequency(config.center_freq, config.sample_rate);
        Self {
            config,
            nco,
            pd_acc: 0,
            amp_acc: 0,
            pd_count: 0,
            phase_error: 0.0,
            amplitude: 0.0,
            integrator: 0.0,
            freq_offset: 0.0,
            locked_windows: 0,
            unlocked_windows: 0,
            locked: false,
            lock_transitions: 0,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &PllConfig {
        &self.config
    }

    /// Processes one pickoff sample; returns the `(sin, cos)` drive
    /// references for this sample.
    pub fn process(&mut self, pickoff: Q15) -> (Q15, Q15) {
        let (s, c) = self.nco.tick();

        // Phase detector: pickoff × cos. At lock (pickoff ∝ sin) the DC
        // component vanishes. The in-phase product pickoff × sin measures
        // signal amplitude (≈ A/2 at lock) and qualifies the lock detector.
        let pd = pickoff.mul(c);
        let iq = pickoff.mul(s);
        self.pd_acc += pd.raw() as i64;
        self.amp_acc += iq.raw() as i64;
        self.pd_count += 1;

        if self.pd_count == self.config.pd_average {
            let avg = self.pd_acc as f64 / self.config.pd_average as f64 / 32768.0;
            let avg_amp = self.amp_acc as f64 / self.config.pd_average as f64 / 32768.0;
            self.phase_error = avg;
            self.amplitude = avg_amp;
            self.pd_acc = 0;
            self.amp_acc = 0;
            self.pd_count = 0;

            // PI controller updates once per averaging window.
            let dt = self.config.pd_average as f64 / self.config.sample_rate;
            self.integrator += self.config.ki * avg * dt;
            // Anti-windup: bound the integrator to a ±10% pull range.
            let max_pull = self.config.center_freq * 0.1;
            self.integrator = self.integrator.clamp(-max_pull, max_pull);
            self.freq_offset = (self.config.kp * avg + self.integrator).clamp(-max_pull, max_pull);
            self.nco.set_frequency(
                self.config.center_freq + self.freq_offset,
                self.config.sample_rate,
            );

            // Lock detector: small phase error on a live signal. Without
            // the amplitude term a dead pickoff (zero signal, zero phase
            // error) would read as locked and suppress the rail leak below.
            if avg.abs() < self.config.lock_threshold
                && avg_amp.abs() >= self.config.lock_min_amplitude
            {
                self.locked_windows = self.locked_windows.saturating_add(1);
                self.unlocked_windows = 0;
            } else {
                self.locked_windows = 0;
                self.unlocked_windows = self.unlocked_windows.saturating_add(1);
            }
            let locked_now = self.locked_windows >= self.config.lock_count;
            if locked_now != self.locked {
                self.lock_transitions += 1;
            }
            self.locked = locked_now;
            // Re-acquisition aid, two stranded-NCO cases. (1) Overload on a
            // live input winds the integrator onto its rail, outside the
            // capture range: leak it off the rail and the beat-note pull-in
            // recaptures. (2) A dead pickoff (high-Q resonator driven off
            // resonance responds only within f0/Q) gives no pull-in at all:
            // keep leaking all the way back toward the centre until the
            // resonator answers. Never leak on a live in-range signal — a
            // proportional leak there forces a large static phase error on
            // off-centre tones and blocks lock entirely.
            let railed = self.integrator.abs() > 0.8 * max_pull;
            let dead = avg_amp.abs() < self.config.lock_min_amplitude;
            if self.unlocked_windows > 4 * self.config.lock_count && (railed || dead) {
                self.integrator *= 0.995;
            }
        }

        (s, c)
    }

    /// Last averaged phase-detector output (≈ phase error / π for small
    /// errors, scaled by signal amplitude).
    #[must_use]
    pub fn phase_error(&self) -> f64 {
        self.phase_error
    }

    /// Last completed in-phase amplitude average (±1.0 full-scale; ≈ A/2
    /// when locked to a sine of amplitude A).
    #[must_use]
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Current NCO frequency in Hz (the "VCO control" trace of Fig. 5).
    #[must_use]
    pub fn frequency(&self) -> f64 {
        self.config.center_freq + self.freq_offset
    }

    /// Loop-filter output as a normalized control value (offset / max pull).
    #[must_use]
    pub fn vco_control(&self) -> f64 {
        self.freq_offset / (self.config.center_freq * 0.1)
    }

    /// `true` once the lock detector has latched.
    #[must_use]
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// Number of lock-state changes (lock acquisitions + losses) since
    /// construction. [`Pll::reset`] does not count as a transition.
    #[must_use]
    pub fn lock_transitions(&self) -> u64 {
        self.lock_transitions
    }

    /// Current NCO phase word (for demodulator phase alignment).
    #[must_use]
    pub fn phase(&self) -> u32 {
        self.nco.phase()
    }

    /// Fault injection: kicks the loop onto its integrator rail, the state
    /// a mechanical shock or overload leaves behind. The NCO runs away to
    /// the edge of the pull range, lock is lost, and only the
    /// re-acquisition leak (see [`Pll::process`]) can sweep the loop back
    /// onto the carrier — so recovery takes the realistic few hundred
    /// milliseconds rather than being instant.
    pub fn kick(&mut self) {
        let max_pull = self.config.center_freq * 0.1;
        self.integrator = max_pull;
        self.freq_offset = max_pull;
        self.nco.set_frequency(
            self.config.center_freq + self.freq_offset,
            self.config.sample_rate,
        );
        self.locked_windows = 0;
        if self.locked {
            self.lock_transitions += 1;
        }
        self.locked = false;
    }

    /// Resets all loop state back to the centre frequency.
    pub fn reset(&mut self) {
        self.nco.reset();
        self.nco
            .set_frequency(self.config.center_freq, self.config.sample_rate);
        self.pd_acc = 0;
        self.amp_acc = 0;
        self.pd_count = 0;
        self.phase_error = 0.0;
        self.amplitude = 0.0;
        self.integrator = 0.0;
        self.freq_offset = 0.0;
        self.locked_windows = 0;
        self.unlocked_windows = 0;
        self.locked = false;
    }

    /// Serializes all loop state (NCO phase word, detector accumulators,
    /// loop filter, lock detector). The configuration is not saved.
    pub fn save_state(&self, w: &mut StateWriter) {
        self.nco.save_state(w);
        w.put_i64(self.pd_acc);
        w.put_i64(self.amp_acc);
        w.put_u32(self.pd_count);
        w.put_f64(self.phase_error);
        w.put_f64(self.amplitude);
        w.put_f64(self.integrator);
        w.put_f64(self.freq_offset);
        w.put_u32(self.locked_windows);
        w.put_u32(self.unlocked_windows);
        w.put_bool(self.locked);
        w.put_u64(self.lock_transitions);
    }

    /// Restores loop state saved by [`Pll::save_state`] into a PLL built
    /// from the same configuration (bit-exact continuation).
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.nco.load_state(r)?;
        self.pd_acc = r.take_i64()?;
        self.amp_acc = r.take_i64()?;
        self.pd_count = r.take_u32()?;
        self.phase_error = r.take_f64()?;
        self.amplitude = r.take_f64()?;
        self.integrator = r.take_f64()?;
        self.freq_offset = r.take_f64()?;
        self.locked_windows = r.take_u32()?;
        self.unlocked_windows = r.take_u32()?;
        self.locked = r.take_bool()?;
        self.lock_transitions = r.take_u64()?;
        Ok(())
    }
}

/// PI controller on a scalar measurement — shared by the AGC and the
/// closed-loop force-rebalance controller.
#[derive(Debug, Clone)]
pub struct PiController {
    /// Proportional gain.
    kp: f64,
    /// Integral gain (per second).
    ki: f64,
    /// Update interval in seconds.
    dt: f64,
    integrator: f64,
    out_min: f64,
    out_max: f64,
}

impl PiController {
    /// Creates a PI controller with output clamped to `[out_min, out_max]`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive or the output range is empty.
    #[must_use]
    pub fn new(kp: f64, ki: f64, dt: f64, out_min: f64, out_max: f64) -> Self {
        assert!(dt > 0.0, "controller dt must be positive");
        assert!(out_min < out_max, "output range must be non-empty");
        Self {
            kp,
            ki,
            dt,
            integrator: 0.0,
            out_min,
            out_max,
        }
    }

    /// Advances one step with measurement error `e` (setpoint − measured);
    /// returns the new control output.
    pub fn update(&mut self, e: f64) -> f64 {
        self.integrator += self.ki * e * self.dt;
        self.integrator = self.integrator.clamp(self.out_min, self.out_max);
        (self.kp * e + self.integrator).clamp(self.out_min, self.out_max)
    }

    /// Integrator state (for tracing).
    #[must_use]
    pub fn integrator(&self) -> f64 {
        self.integrator
    }

    /// Resets the integrator.
    pub fn reset(&mut self) {
        self.integrator = 0.0;
    }

    /// Serializes the integrator (gains and limits are configuration).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_f64(self.integrator);
    }

    /// Restores the integrator saved by [`PiController::save_state`].
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.integrator = r.take_f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the PLL with a pure sine at `f_in` and reports
    /// (locked, final frequency).
    fn run_lock(f_in: f64, seconds: f64) -> (bool, f64) {
        let config = PllConfig::default();
        let fs = config.sample_rate;
        let mut pll = Pll::new(config);
        let n = (seconds * fs) as usize;
        let w = 2.0 * std::f64::consts::PI * f_in;
        let mut phase = 0.0f64;
        for _ in 0..n {
            let x = Q15::from_f64(0.5 * phase.sin());
            pll.process(x);
            phase += w / fs;
        }
        (pll.is_locked(), pll.frequency())
    }

    #[test]
    fn locks_to_centre_frequency() {
        let (locked, f) = run_lock(15_000.0, 0.3);
        assert!(locked, "PLL failed to lock at centre");
        assert!((f - 15_000.0).abs() < 5.0, "frequency {f}");
    }

    #[test]
    fn locks_above_centre() {
        let (locked, f) = run_lock(15_400.0, 0.5);
        assert!(locked, "PLL failed to lock at +400 Hz");
        assert!((f - 15_400.0).abs() < 10.0, "frequency {f}");
    }

    #[test]
    fn locks_below_centre() {
        let (locked, f) = run_lock(14_600.0, 0.5);
        assert!(locked, "PLL failed to lock at −400 Hz");
        assert!((f - 14_600.0).abs() < 10.0, "frequency {f}");
    }

    #[test]
    fn does_not_lock_to_silence() {
        let config = PllConfig::default();
        let fs = config.sample_rate;
        let mut pll = Pll::new(config);
        // Zero input keeps phase error at 0 — a naive detector would call
        // this "locked". The lock criterion tolerates it (phase error stays
        // small), so verify frequency stays at centre instead.
        for _ in 0..(0.2 * fs) as usize {
            pll.process(Q15::ZERO);
        }
        assert!((pll.frequency() - 15_000.0).abs() < 1.0);
    }

    #[test]
    fn phase_error_decays_at_lock() {
        let config = PllConfig::default();
        let fs = config.sample_rate;
        let mut pll = Pll::new(config);
        let w = 2.0 * std::f64::consts::PI * 15_200.0;
        let mut phase = 0.0f64;
        let mut tail_err = 0.0f64;
        let n = (0.5 * fs) as usize;
        for k in 0..n {
            pll.process(Q15::from_f64(0.5 * phase.sin()));
            phase += w / fs;
            if k > n - 1000 {
                tail_err = tail_err.max(pll.phase_error().abs());
            }
        }
        assert!(tail_err < 0.02, "residual phase error {tail_err}");
    }

    #[test]
    fn reset_returns_to_centre() {
        let (_, _) = run_lock(15_300.0, 0.2);
        let mut pll = Pll::new(PllConfig::default());
        let w = 2.0 * std::f64::consts::PI * 15_300.0;
        let mut phase = 0.0f64;
        for _ in 0..20_000 {
            pll.process(Q15::from_f64(0.5 * phase.sin()));
            phase += w / 250_000.0;
        }
        pll.reset();
        assert!((pll.frequency() - 15_000.0).abs() < 1e-6);
        assert!(!pll.is_locked());
        assert_eq!(pll.phase_error(), 0.0);
    }

    #[test]
    fn lock_transitions_count_state_changes() {
        let config = PllConfig::default();
        let fs = config.sample_rate;
        let mut pll = Pll::new(config);
        assert_eq!(pll.lock_transitions(), 0);
        let w = 2.0 * std::f64::consts::PI * 15_000.0;
        let mut phase = 0.0f64;
        for _ in 0..(0.3 * fs) as usize {
            pll.process(Q15::from_f64(0.5 * phase.sin()));
            phase += w / fs;
        }
        assert!(pll.is_locked());
        assert_eq!(pll.lock_transitions(), 1);
        // Kill the input: the detector eventually reads large errors only if
        // noise is present; silence keeps phase error small, so instead slam
        // in an off-frequency tone to force unlock.
        let w2 = 2.0 * std::f64::consts::PI * 18_000.0;
        for _ in 0..(0.3 * fs) as usize {
            pll.process(Q15::from_f64(0.5 * phase.sin()));
            phase += w2 / fs;
        }
        assert!(pll.lock_transitions() >= 2, "{}", pll.lock_transitions());
    }

    #[test]
    fn config_validation() {
        let mut c = PllConfig::default();
        assert!(c.validate().is_ok());
        c.center_freq = 0.0;
        assert!(c.validate().is_err());
        c = PllConfig::default();
        c.kp = -1.0;
        assert!(c.validate().is_err());
        c = PllConfig::default();
        c.pd_average = 0;
        assert!(c.validate().is_err());
        c = PllConfig::default();
        c.center_freq = 200_000.0; // above Nyquist of 125 kHz
        assert!(c.validate().is_err());
    }

    #[test]
    fn pi_controller_tracks_setpoint() {
        let mut pi = PiController::new(0.5, 50.0, 1e-3, 0.0, 2.0);
        // Plant: y = u (unity). Drive error = 1 - y toward zero.
        let mut y = 0.0;
        for _ in 0..10_000 {
            let u = pi.update(1.0 - y);
            y = u;
        }
        assert!((y - 1.0).abs() < 1e-3, "settled at {y}");
    }

    #[test]
    fn pi_controller_clamps_output() {
        let mut pi = PiController::new(10.0, 1000.0, 1e-3, -0.5, 0.5);
        for _ in 0..1000 {
            let u = pi.update(10.0);
            assert!((-0.5..=0.5).contains(&u));
        }
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn pi_rejects_zero_dt() {
        let _ = PiController::new(1.0, 1.0, 0.0, 0.0, 1.0);
    }
}
