//! First-order ΔΣ (sigma-delta) modulator.
//!
//! An alternative drive-DAC architecture from the platform's IP portfolio:
//! instead of an n-bit resistor-string DAC, a 1-bit oversampled bitstream
//! whose quantization noise is shaped out of band and removed by a simple
//! analog RC — attractive in mixed-signal flows because the "DAC" is one
//! flip-flop and the matching burden moves to the digital side. Offered as
//! a platform knob next to [`ascp_afe::dac`]-style converters.
//!
//! [`ascp_afe::dac`]: ../../ascp_afe/dac/index.html

use crate::fixed::Q15;

/// First-order error-feedback ΔΣ modulator producing a ±1 bitstream.
#[derive(Debug, Clone, Default)]
pub struct SigmaDelta {
    /// Accumulated quantization error (Q15 raw domain, wider).
    integrator: i64,
}

impl SigmaDelta {
    /// Creates a modulator with zero state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Modulates one input sample (|x| ≤ 1 recommended) into one output
    /// bit: `true` = +full-scale, `false` = −full-scale.
    pub fn modulate(&mut self, x: Q15) -> bool {
        self.integrator += i64::from(x.raw());
        let bit = self.integrator >= 0;
        // Feedback of the quantized value (±1.0 in Q15 raw units).
        self.integrator -= if bit { 32768 } else { -32768 };
        bit
    }

    /// Current integrator state (diagnostics).
    #[must_use]
    pub fn integrator(&self) -> i64 {
        self.integrator
    }

    /// Resets state.
    pub fn reset(&mut self) {
        self.integrator = 0;
    }
}

/// Simple reconstruction model: one-pole RC on the ±1 bitstream.
#[derive(Debug, Clone)]
pub struct BitstreamFilter {
    alpha: f64,
    state: f64,
}

impl BitstreamFilter {
    /// Creates a reconstruction pole at `corner_hz` for bitstream rate `fs`.
    ///
    /// # Panics
    ///
    /// Panics if either rate is not positive.
    #[must_use]
    pub fn new(corner_hz: f64, fs: f64) -> Self {
        assert!(corner_hz > 0.0 && fs > 0.0, "rates must be positive");
        Self {
            alpha: 1.0 - (-2.0 * std::f64::consts::PI * corner_hz / fs).exp(),
            state: 0.0,
        }
    }

    /// Filters one bit.
    pub fn process(&mut self, bit: bool) -> f64 {
        let v = if bit { 1.0 } else { -1.0 };
        self.state += self.alpha * (v - self.state);
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_duty_cycle_matches_input() {
        for &v in &[-0.75, -0.2, 0.0, 0.3, 0.9] {
            let mut sd = SigmaDelta::new();
            let x = Q15::from_f64(v);
            let n = 100_000;
            let ones = (0..n).filter(|_| sd.modulate(x)).count();
            let mean = 2.0 * ones as f64 / n as f64 - 1.0;
            assert!((mean - v).abs() < 2e-3, "input {v}: mean {mean}");
        }
    }

    #[test]
    fn reconstructed_sine_tracks_input() {
        let fs = 1.0e6;
        let f0 = 1.0e3;
        let mut sd = SigmaDelta::new();
        let mut rc = BitstreamFilter::new(10.0e3, fs);
        // Reference: the clean input through an identical pole, so the
        // comparison isolates ΔΣ noise from the filter's own lag.
        let mut rc_ref = BitstreamFilter::new(10.0e3, fs);
        let w = 2.0 * std::f64::consts::PI * f0;
        let mut err_acc = 0.0;
        let mut count = 0;
        for k in 0..(0.05 * fs) as usize {
            let t = k as f64 / fs;
            let x = 0.5 * (w * t).sin();
            let y = rc.process(sd.modulate(Q15::from_f64(x)));
            // Drive the reference pole with the exact analog value.
            rc_ref.state += rc_ref.alpha * (x - rc_ref.state);
            if k > 10_000 {
                let e = y - rc_ref.state;
                err_acc += e * e;
                count += 1;
            }
        }
        let rms_err = (err_acc / f64::from(count)).sqrt();
        // First-order shaping (+20 dB/dec) against a one-pole filter
        // (−20 dB/dec) leaves a flat residual: a few percent RMS is the
        // physics of this cheapest reconstruction, not a defect.
        assert!(rms_err < 0.06, "reconstruction error {rms_err}");
    }

    #[test]
    fn noise_is_shaped_out_of_band() {
        // In-band noise floor must improve with oversampling ratio: compare
        // the error PSD of the bitstream at low vs high frequency.
        use crate::fft::{welch_psd, Window};
        let fs = 1.0e6;
        let mut sd = SigmaDelta::new();
        let x = Q15::from_f64(0.37);
        let err: Vec<f64> = (0..1 << 16)
            .map(|_| {
                let bit = sd.modulate(x);
                (if bit { 1.0 } else { -1.0 }) - 0.37
            })
            .collect();
        let (freqs, psd) = welch_psd(&err, fs, 4096, Window::Hann);
        let low = crate::fft::band_density(&freqs, &psd, 500.0, 5.0e3);
        let high = crate::fft::band_density(&freqs, &psd, 2.0e5, 4.0e5);
        assert!(
            high > 5.0 * low,
            "no noise shaping: low {low} vs high {high}"
        );
    }

    #[test]
    fn integrator_is_bounded_for_sane_inputs() {
        let mut sd = SigmaDelta::new();
        for k in 0..100_000 {
            let x = Q15::from_f64(0.95 * ((k as f64) * 0.01).sin());
            sd.modulate(x);
            assert!(
                sd.integrator().abs() <= 2 * 32768,
                "integrator escaped at {k}"
            );
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut sd = SigmaDelta::new();
        sd.modulate(Q15::from_f64(0.7));
        sd.reset();
        assert_eq!(sd.integrator(), 0);
    }
}
