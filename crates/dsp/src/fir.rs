//! Fixed-point FIR filters and windowed-sinc design.
//!
//! The paper's DSP block contains "FIR/IIR filters" dimensioned from the
//! MATLAB model. [`FirFilter`] is the RTL-equivalent datapath: Q15 samples,
//! Q30 coefficients, 64-bit accumulator, one output per input sample.
//! [`design_lowpass`] is the MATLAB-side design step (float windowed-sinc),
//! whose result is quantized into the datapath — exactly the paper's
//! system-model → RTL hand-off.

use crate::fixed::{Q15, Q30};
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};

/// Designs a linear-phase lowpass FIR by the windowed-sinc method
/// (Hamming window).
///
/// `cutoff` is the −6 dB point as a fraction of the sample rate
/// (0 < cutoff < 0.5); `taps` is the filter length.
///
/// # Panics
///
/// Panics if `cutoff` is outside `(0, 0.5)` or `taps` is zero.
///
/// # Example
///
/// ```
/// use ascp_dsp::fir::design_lowpass;
/// let h = design_lowpass(0.1, 31);
/// let dc: f64 = h.iter().sum();
/// assert!((dc - 1.0).abs() < 1e-12); // unity DC gain
/// ```
#[must_use]
pub fn design_lowpass(cutoff: f64, taps: usize) -> Vec<f64> {
    assert!(
        cutoff > 0.0 && cutoff < 0.5,
        "cutoff must be in (0, 0.5) of the sample rate, got {cutoff}"
    );
    assert!(taps > 0, "FIR length must be non-zero");
    let m = (taps - 1) as f64;
    let mut h: Vec<f64> = (0..taps)
        .map(|n| {
            let x = n as f64 - m / 2.0;
            let sinc = if x == 0.0 {
                2.0 * cutoff
            } else {
                (2.0 * std::f64::consts::PI * cutoff * x).sin() / (std::f64::consts::PI * x)
            };
            let w = 0.54 - 0.46 * (2.0 * std::f64::consts::PI * n as f64 / m.max(1.0)).cos();
            sinc * w
        })
        .collect();
    // Normalize to exactly unity DC gain.
    let sum: f64 = h.iter().sum();
    for c in &mut h {
        *c /= sum;
    }
    h
}

/// Fixed-point transversal FIR filter.
///
/// Samples are [`Q15`], coefficients [`Q30`], and the convolution runs in a
/// 64-bit accumulator before a single rounded shift back to Q15 — the
/// structure of a hardware MAC datapath.
#[derive(Debug, Clone)]
pub struct FirFilter {
    coeffs: Vec<Q30>,
    delay: Vec<Q15>,
    pos: usize,
    /// Outputs clamped at the accumulator rails (monotonic; a nonzero rate
    /// means the datapath is clipping, not just carrying a large signal).
    saturations: u64,
}

impl FirFilter {
    /// Creates a filter from float coefficients, quantizing each to Q30.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty or any coefficient is outside
    /// Q30 range (|c| ≥ 2).
    #[must_use]
    pub fn from_coeffs(coeffs: &[f64]) -> Self {
        assert!(!coeffs.is_empty(), "FIR needs at least one coefficient");
        for &c in coeffs {
            assert!(
                c.abs() < 2.0,
                "coefficient {c} outside Q30 range; rescale the design"
            );
        }
        Self {
            coeffs: coeffs.iter().map(|&c| Q30::from_f64(c)).collect(),
            delay: vec![Q15::ZERO; coeffs.len()],
            pos: 0,
            saturations: 0,
        }
    }

    /// Designs and builds a lowpass filter in one step (see
    /// [`design_lowpass`]).
    #[must_use]
    pub fn lowpass(cutoff: f64, taps: usize) -> Self {
        Self::from_coeffs(&design_lowpass(cutoff, taps))
    }

    /// Number of taps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// `true` if the filter has no taps (never true for constructed filters).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Clears the delay line.
    pub fn reset(&mut self) {
        self.delay.fill(Q15::ZERO);
        self.pos = 0;
    }

    /// Pushes one sample into the delay line without computing an output.
    ///
    /// Used by [`DecimatingFir`] on the input ticks whose output would be
    /// discarded: the convolution depends only on the delay-line contents
    /// at the instant it runs, so skipping the MAC between decimated
    /// output ticks leaves the emitted sample stream bit-identical while
    /// cutting the per-input cost from O(taps) to O(1).
    #[inline]
    pub fn push(&mut self, x: Q15) {
        self.delay[self.pos] = x;
        self.pos = (self.pos + 1) % self.coeffs.len();
    }

    /// Processes one sample.
    pub fn process(&mut self, x: Q15) -> Q15 {
        self.delay[self.pos] = x;
        // 64-bit MAC over the circular delay line.
        let n = self.coeffs.len();
        let mut acc: i64 = 0;
        let mut idx = self.pos;
        for c in &self.coeffs {
            acc += self.delay[idx].raw() as i64 * c.raw() as i64;
            idx = if idx == 0 { n - 1 } else { idx - 1 };
        }
        self.pos = (self.pos + 1) % n;
        // Product is Q15*Q30 = Q45; shift back to Q15 with rounding.
        let shifted = (acc + (1i64 << 29)) >> 30;
        if !(i64::from(i32::MIN)..=i64::from(i32::MAX)).contains(&shifted) {
            self.saturations += 1;
        }
        Q15::from_raw(saturate(shifted))
    }

    /// Group delay in samples (linear phase assumed: (N−1)/2).
    #[must_use]
    pub fn group_delay(&self) -> f64 {
        (self.coeffs.len() as f64 - 1.0) / 2.0
    }

    /// Outputs that hit the saturation clamp since construction.
    #[must_use]
    pub fn saturations(&self) -> u64 {
        self.saturations
    }

    /// Serializes the delay line, write position and clip counter. The
    /// coefficients are design-time configuration and are not saved.
    pub fn save_state(&self, w: &mut StateWriter) {
        let raw: Vec<i32> = self.delay.iter().map(|q| q.raw()).collect();
        w.put_i32_slice(&raw);
        w.put_u64(self.pos as u64);
        w.put_u64(self.saturations);
    }

    /// Restores state saved by [`FirFilter::save_state`] into a filter of
    /// the same length.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] if the saved delay-line length or write
    /// position does not match this filter, plus the underlying decode
    /// errors.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let raw = r.take_i32_vec()?;
        if raw.len() != self.delay.len() {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "FIR delay line of {} taps in snapshot, filter has {}",
                    raw.len(),
                    self.delay.len()
                ),
            });
        }
        let pos = r.take_u64()? as usize;
        if pos >= raw.len() {
            return Err(SnapshotError::Corrupt {
                context: format!("FIR write position {pos} out of range {}", raw.len()),
            });
        }
        self.delay = raw.into_iter().map(Q15::from_raw).collect();
        self.pos = pos;
        self.saturations = r.take_u64()?;
        Ok(())
    }
}

fn saturate(v: i64) -> i32 {
    v.clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

/// FIR filter followed by sample-rate decimation by `factor` (polyphase
/// behaviourally: computes every output at the decimated rate).
///
/// Used at the output of the synchronous demodulator to move from the
/// 250 kHz modulation rate down to the ~1 kHz rate channel.
#[derive(Debug, Clone)]
pub struct DecimatingFir {
    fir: FirFilter,
    factor: u32,
    counter: u32,
}

impl DecimatingFir {
    /// Wraps `fir` with decimation by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    #[must_use]
    pub fn new(fir: FirFilter, factor: u32) -> Self {
        assert!(factor > 0, "decimation factor must be non-zero");
        Self {
            fir,
            factor,
            counter: 0,
        }
    }

    /// Decimation factor.
    #[must_use]
    pub fn factor(&self) -> u32 {
        self.factor
    }

    /// Feeds one input sample; returns `Some(y)` on the decimated ticks.
    ///
    /// The full convolution runs only on the emitting ticks; the other
    /// `factor − 1` inputs of each frame take the O(1) delay-line
    /// [`FirFilter::push`] path. The emitted samples are bit-identical to
    /// filtering every input, because each output depends only on the
    /// delay-line contents at its own instant. (Saturation counting
    /// follows the computed outputs, i.e. only samples that are actually
    /// emitted.)
    pub fn process(&mut self, x: Q15) -> Option<Q15> {
        self.counter += 1;
        if self.counter == self.factor {
            self.counter = 0;
            Some(self.fir.process(x))
        } else {
            self.fir.push(x);
            None
        }
    }

    /// Clears filter state and phase.
    pub fn reset(&mut self) {
        self.fir.reset();
        self.counter = 0;
    }

    /// Saturated outputs of the inner filter (see [`FirFilter::saturations`]).
    #[must_use]
    pub fn saturations(&self) -> u64 {
        self.fir.saturations()
    }

    /// Serializes the inner filter and the decimation phase counter.
    pub fn save_state(&self, w: &mut StateWriter) {
        self.fir.save_state(w);
        w.put_u32(self.counter);
    }

    /// Restores state saved by [`DecimatingFir::save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] if the saved phase exceeds the
    /// decimation factor, plus the inner filter's errors.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.fir.load_state(r)?;
        let counter = r.take_u32()?;
        if counter >= self.factor {
            return Err(SnapshotError::Corrupt {
                context: format!("decimation phase {counter} out of range {}", self.factor),
            });
        }
        self.counter = counter;
        Ok(())
    }
}

/// Lane-parallel decimating FIR: N identical-design filters in lockstep
/// over a `[tap][lane]`-contiguous delay matrix.
///
/// The write position and decimation phase are shared (lockstep lanes feed
/// one sample per tick each), so the per-tick work is one contiguous row
/// write, and on emitting ticks a tap-major MAC whose inner loop runs
/// across lanes — `i32×i32→i64` multiply-adds over contiguous memory. All
/// arithmetic is integer and identical to [`FirFilter::process`], so the
/// emitted codes match the scalar filters bit for bit.
///
/// Extraction requires uniform coefficients, write position, decimation
/// factor, and phase across lanes; per-lane saturation counters are kept
/// and written back.
#[derive(Debug, Clone)]
pub struct DecimatingFirLanes {
    coeffs: Vec<Q30>,
    /// Raw Q15 delay samples, `[tap][lane]` so the MAC inner loop is unit
    /// stride across lanes.
    delay: Vec<i32>,
    taps: usize,
    n: usize,
    pos: usize,
    factor: u32,
    counter: u32,
    saturations: Vec<u64>,
    acc: Vec<i64>,
}

impl DecimatingFirLanes {
    /// Captures N decimating filters for lockstep processing.
    ///
    /// Returns `None` if the filter designs or phases differ across lanes
    /// (or the iterator is empty).
    pub fn extract<'a>(firs: impl Iterator<Item = &'a DecimatingFir>) -> Option<Self> {
        let fs: Vec<&DecimatingFir> = firs.collect();
        let first = *fs.first()?;
        let taps = first.fir.coeffs.len();
        if fs.iter().any(|f| {
            f.fir.coeffs != first.fir.coeffs
                || f.fir.pos != first.fir.pos
                || f.factor != first.factor
                || f.counter != first.counter
        }) {
            return None;
        }
        let n = fs.len();
        let mut delay = vec![0i32; taps * n];
        for (l, f) in fs.iter().enumerate() {
            for (t, q) in f.fir.delay.iter().enumerate() {
                delay[t * n + l] = q.raw();
            }
        }
        Some(Self {
            coeffs: first.fir.coeffs.clone(),
            delay,
            taps,
            n,
            pos: first.fir.pos,
            factor: first.factor,
            counter: first.counter,
            saturations: fs.iter().map(|f| f.fir.saturations).collect(),
            acc: vec![0i64; n],
        })
    }

    /// Writes delay lines, phase, and saturation counters back.
    pub fn restore<'a>(&self, firs: impl Iterator<Item = &'a mut DecimatingFir>) {
        for (l, f) in firs.enumerate() {
            for (t, q) in f.fir.delay.iter_mut().enumerate() {
                *q = Q15::from_raw(self.delay[t * self.n + l]);
            }
            f.fir.pos = self.pos;
            f.fir.saturations = self.saturations[l];
            f.counter = self.counter;
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.n
    }

    /// Feeds one raw Q15 sample per lane. Returns `true` on decimated
    /// output ticks, with the emitted raw Q15 codes in `out`.
    #[inline]
    pub fn process(&mut self, x: &[i32], out: &mut [i32]) -> bool {
        let n = self.n;
        self.delay[self.pos * n..self.pos * n + n].copy_from_slice(&x[..n]);
        self.counter += 1;
        if self.counter != self.factor {
            self.pos = (self.pos + 1) % self.taps;
            return false;
        }
        self.counter = 0;
        self.acc.fill(0);
        let mut idx = self.pos;
        for c in &self.coeffs {
            let cr = c.raw() as i64;
            let row = &self.delay[idx * n..idx * n + n];
            for (a, &r) in self.acc.iter_mut().zip(row) {
                *a += i64::from(r) * cr;
            }
            idx = if idx == 0 { self.taps - 1 } else { idx - 1 };
        }
        self.pos = (self.pos + 1) % self.taps;
        for (l, o) in out.iter_mut().enumerate().take(n) {
            let shifted = (self.acc[l] + (1i64 << 29)) >> 30;
            if !(i64::from(i32::MIN)..=i64::from(i32::MAX)).contains(&shifted) {
                self.saturations[l] += 1;
            }
            *o = saturate(shifted);
        }
        true
    }
}

/// Measures the filter's magnitude response at `freq` (fraction of the
/// sample rate) by driving a sine through a clone of it. Float-side test
/// helper mirroring a network-analyzer sweep.
#[must_use]
pub fn measure_gain(filter: &FirFilter, freq: f64) -> f64 {
    let mut f = filter.clone();
    let n = 8192usize;
    let w = 2.0 * std::f64::consts::PI * freq;
    let mut sum_sq = 0.0f64;
    let mut count = 0usize;
    for k in 0..n {
        let x = Q15::from_f64(0.5 * (w * k as f64).sin());
        let y = f.process(x).to_f64();
        if k > 4 * filter.len() {
            sum_sq += y * y;
            count += 1;
        }
    }
    let out_rms = (sum_sq / count as f64).sqrt();
    out_rms / (0.5 / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_is_symmetric_linear_phase() {
        let h = design_lowpass(0.2, 21);
        for i in 0..h.len() / 2 {
            assert!((h[i] - h[h.len() - 1 - i]).abs() < 1e-12, "tap {i}");
        }
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn design_rejects_bad_cutoff() {
        let _ = design_lowpass(0.6, 11);
    }

    #[test]
    fn impulse_response_matches_coefficients() {
        let h = design_lowpass(0.25, 9);
        let mut f = FirFilter::from_coeffs(&h);
        let mut out = Vec::new();
        for k in 0..9 {
            let x = if k == 0 { Q15::ONE } else { Q15::ZERO };
            out.push(f.process(x).to_f64());
        }
        for (i, (&hi, oi)) in h.iter().zip(&out).enumerate() {
            assert!((hi - oi).abs() < 1e-4, "tap {i}: {hi} vs {oi}");
        }
    }

    #[test]
    fn passband_and_stopband() {
        let f = FirFilter::lowpass(0.05, 63);
        let g_pass = measure_gain(&f, 0.01);
        let g_stop = measure_gain(&f, 0.25);
        assert!(g_pass > 0.95, "passband gain {g_pass}");
        assert!(g_stop < 0.01, "stopband gain {g_stop}");
    }

    #[test]
    fn dc_gain_unity() {
        let mut f = FirFilter::lowpass(0.1, 31);
        let mut y = Q15::ZERO;
        for _ in 0..200 {
            y = f.process(Q15::from_f64(0.5));
        }
        assert!((y.to_f64() - 0.5).abs() < 1e-3);
    }

    #[test]
    fn reset_clears_state() {
        let mut f = FirFilter::lowpass(0.1, 15);
        for _ in 0..20 {
            f.process(Q15::ONE);
        }
        f.reset();
        let y = f.process(Q15::ZERO);
        assert_eq!(y, Q15::ZERO);
    }

    #[test]
    fn decimator_emits_every_nth() {
        let mut d = DecimatingFir::new(FirFilter::lowpass(0.1, 15), 4);
        let outputs = (0..16)
            .filter_map(|_| d.process(Q15::from_f64(0.1)))
            .count();
        assert_eq!(outputs, 4);
    }

    #[test]
    fn decimator_matches_filtering_every_sample() {
        // The lazy (push-only between emissions) decimator must produce a
        // bit-identical output stream to running the full FIR on every
        // input and keeping every Nth output.
        let proto = FirFilter::lowpass(0.02, 101);
        let mut lazy = DecimatingFir::new(proto.clone(), 7);
        let mut dense = proto;
        let mut k: u32 = 0;
        for n in 0..1000u32 {
            let x = Q15::from_f64(0.4 * f64::from(n % 50) / 50.0 - 0.2);
            let y_dense = dense.process(x);
            k += 1;
            let keep = if k == 7 {
                k = 0;
                Some(y_dense)
            } else {
                None
            };
            assert_eq!(lazy.process(x), keep, "sample {n}");
        }
    }

    #[test]
    fn decimator_dc_gain() {
        let mut d = DecimatingFir::new(FirFilter::lowpass(0.05, 63), 8);
        let mut last = Q15::ZERO;
        for _ in 0..2000 {
            if let Some(y) = d.process(Q15::from_f64(0.25)) {
                last = y;
            }
        }
        assert!((last.to_f64() - 0.25).abs() < 1e-3);
    }

    #[test]
    fn group_delay_formula() {
        let f = FirFilter::lowpass(0.1, 31);
        assert_eq!(f.group_delay(), 15.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_coeffs_panics() {
        let _ = FirFilter::from_coeffs(&[]);
    }

    #[test]
    fn saturation_counter_counts_clamps() {
        // Gain ~1.9 on full-scale raw MAX inputs overflows the i32 output.
        let mut f = FirFilter::from_coeffs(&[1.9]);
        assert_eq!(f.saturations(), 0);
        for _ in 0..3 {
            let y = f.process(Q15::MAX);
            assert_eq!(y, Q15::MAX, "clamped at the rail");
        }
        assert_eq!(f.saturations(), 3);
        f.process(Q15::from_f64(0.1));
        assert_eq!(f.saturations(), 3, "in-range output does not count");
    }
}
