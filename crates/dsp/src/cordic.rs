//! CORDIC (COordinate Rotation DIgital Computer) engine.
//!
//! Hardware sensor-conditioning chips compute magnitude and phase without a
//! multiplier-hungry rectangular-to-polar conversion by using CORDIC
//! iterations. The AGC uses the vectoring mode to extract the drive-mode
//! envelope from the I/Q pair in one shot; the phase detector can use the
//! same engine for wide-range phase measurement.
//!
//! Fixed 20 iterations over 32-bit state: ~1e-6 angular resolution, well
//! beyond the 12-bit analog front end.

use crate::fixed::Q15;

/// Number of CORDIC iterations (also the number of arctan table entries).
const ITERS: u32 = 20;

/// CORDIC gain K = Π cos(atan 2^-i) ≈ 0.6072529; outputs of the raw
/// iterations are scaled by 1/K.
const CORDIC_GAIN: f64 = 1.646_760_258_121_065_6;

/// atan(2^-i) table in radians, Q30-scaled into i64 for precision.
fn atan_table() -> &'static [i64; ITERS as usize] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[i64; ITERS as usize]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0i64; ITERS as usize];
        for (i, e) in t.iter_mut().enumerate() {
            *e = ((2f64.powi(-(i as i32))).atan() * (1i64 << 30) as f64).round() as i64;
        }
        t
    })
}

/// Result of a vectoring-mode CORDIC: polar form of an I/Q pair.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Polar {
    /// Magnitude √(i² + q²) in the same Q15 scale as the inputs.
    pub magnitude: Q15,
    /// Angle atan2(q, i) in radians as f64 (full ±π range).
    pub angle: f64,
}

/// Rectangular (I/Q) to polar conversion in vectoring mode.
///
/// # Example
///
/// ```
/// use ascp_dsp::cordic::to_polar;
/// use ascp_dsp::fixed::Q15;
/// let p = to_polar(Q15::from_f64(0.3), Q15::from_f64(0.4));
/// assert!((p.magnitude.to_f64() - 0.5).abs() < 1e-3);
/// assert!((p.angle - (0.4f64).atan2(0.3)).abs() < 1e-3);
/// ```
#[must_use]
pub fn to_polar(i: Q15, q: Q15) -> Polar {
    let mut x = i.raw() as i64;
    let mut y = q.raw() as i64;
    let mut z: i64 = 0; // accumulated angle, Q30 radians

    // Pre-rotate into the right half-plane (CORDIC converges for |angle|<~99°).
    if x < 0 {
        let pi_q30 = (std::f64::consts::PI * (1i64 << 30) as f64).round() as i64;
        if y >= 0 {
            let (nx, ny) = (y, -x);
            x = nx;
            y = ny;
            z = pi_q30 / 2;
        } else {
            let (nx, ny) = (-y, x);
            x = nx;
            y = ny;
            z = -pi_q30 / 2;
        }
    }

    let table = atan_table();
    for k in 0..ITERS {
        let (dx, dy) = (x >> k, y >> k);
        if y >= 0 {
            x += dy;
            y -= dx;
            z += table[k as usize];
        } else {
            x -= dy;
            y += dx;
            z -= table[k as usize];
        }
    }

    // Undo CORDIC gain with a fixed-point multiply by 1/K (Q30).
    let inv_gain = ((1.0 / CORDIC_GAIN) * (1i64 << 30) as f64).round() as i64;
    let mag = (x * inv_gain) >> 30;
    Polar {
        magnitude: Q15::from_raw(mag.clamp(i32::MIN as i64, i32::MAX as i64) as i32),
        angle: z as f64 / (1i64 << 30) as f64,
    }
}

/// Rotation-mode CORDIC: rotates `(i, q)` by `angle` radians.
///
/// Angle magnitude must be ≤ π; larger angles should be wrapped by the
/// caller.
///
/// # Panics
///
/// Panics if `angle` is not finite.
#[must_use]
pub fn rotate(i: Q15, q: Q15, angle: f64) -> (Q15, Q15) {
    assert!(angle.is_finite(), "rotation angle must be finite");
    let mut angle = angle.rem_euclid(2.0 * std::f64::consts::PI);
    if angle > std::f64::consts::PI {
        angle -= 2.0 * std::f64::consts::PI;
    }

    let mut x = i.raw() as i64;
    let mut y = q.raw() as i64;
    // Pre-rotate by ±90° to bring the residual into convergence range.
    let mut z = (angle * (1i64 << 30) as f64).round() as i64;
    let half_pi = (std::f64::consts::FRAC_PI_2 * (1i64 << 30) as f64).round() as i64;
    if z > half_pi {
        let (nx, ny) = (-y, x);
        x = nx;
        y = ny;
        z -= half_pi; // pre-rotated +90°, residual = angle − π/2
    } else if z < -half_pi {
        let (nx, ny) = (y, -x);
        x = nx;
        y = ny;
        z += half_pi; // pre-rotated −90°, residual = angle + π/2
    }

    let table = atan_table();
    for k in 0..ITERS {
        let (dx, dy) = (x >> k, y >> k);
        if z >= 0 {
            x -= dy;
            y += dx;
            z -= table[k as usize];
        } else {
            x += dy;
            y -= dx;
            z += table[k as usize];
        }
    }

    let inv_gain = ((1.0 / CORDIC_GAIN) * (1i64 << 30) as f64).round() as i64;
    let xr = (x * inv_gain) >> 30;
    let yr = (y * inv_gain) >> 30;
    (
        Q15::from_raw(xr.clamp(i32::MIN as i64, i32::MAX as i64) as i32),
        Q15::from_raw(yr.clamp(i32::MIN as i64, i32::MAX as i64) as i32),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnitude_of_unit_vectors() {
        for deg in (0..360).step_by(15) {
            let a = (deg as f64).to_radians();
            let p = to_polar(Q15::from_f64(0.7 * a.cos()), Q15::from_f64(0.7 * a.sin()));
            assert!(
                (p.magnitude.to_f64() - 0.7).abs() < 2e-3,
                "deg {deg}: {}",
                p.magnitude.to_f64()
            );
        }
    }

    #[test]
    fn angle_matches_atan2_all_quadrants() {
        for deg in (-179..180).step_by(7) {
            let a = (deg as f64).to_radians();
            let p = to_polar(Q15::from_f64(0.5 * a.cos()), Q15::from_f64(0.5 * a.sin()));
            let expect = (0.5 * a.sin()).atan2(0.5 * a.cos());
            assert!(
                (p.angle - expect).abs() < 5e-4,
                "deg {deg}: got {} expected {expect}",
                p.angle
            );
        }
    }

    #[test]
    fn zero_vector() {
        let p = to_polar(Q15::ZERO, Q15::ZERO);
        assert_eq!(p.magnitude, Q15::ZERO);
    }

    #[test]
    fn rotation_matches_trig() {
        for deg in (-170..171).step_by(23) {
            let a = (deg as f64).to_radians();
            let (x, y) = rotate(Q15::from_f64(0.6), Q15::from_f64(0.0), a);
            assert!(
                (x.to_f64() - 0.6 * a.cos()).abs() < 2e-3,
                "deg {deg} x {} vs {}",
                x.to_f64(),
                0.6 * a.cos()
            );
            assert!(
                (y.to_f64() - 0.6 * a.sin()).abs() < 2e-3,
                "deg {deg} y {} vs {}",
                y.to_f64(),
                0.6 * a.sin()
            );
        }
    }

    #[test]
    fn rotation_preserves_magnitude() {
        let (x, y) = rotate(Q15::from_f64(0.3), Q15::from_f64(0.4), 1.234);
        let m = (x.to_f64().powi(2) + y.to_f64().powi(2)).sqrt();
        assert!((m - 0.5).abs() < 2e-3, "magnitude {m}");
    }

    #[test]
    fn rotate_then_vector_round_trip() {
        let angle = 0.81;
        let (x, y) = rotate(Q15::from_f64(0.5), Q15::ZERO, angle);
        let p = to_polar(x, y);
        assert!((p.angle - angle).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rotate_rejects_nan() {
        let _ = rotate(Q15::ZERO, Q15::ZERO, f64::NAN);
    }
}
