//! Fixed-point IIR biquad sections and RBJ designs.
//!
//! IIR biquads implement the narrow tracking filters and DC-blocking stages
//! of the conditioning chain where FIR lengths would be impractical at
//! 250 kHz. Design (float, bilinear-transform RBJ cookbook) is separated
//! from the datapath (Q30 coefficients, direct form I with 64-bit
//! accumulator), matching the MATLAB → RTL flow.

use crate::fixed::{Q15, Q30};
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};

/// Normalized biquad coefficients (a0 = 1):
/// `y[n] = b0 x[n] + b1 x[n−1] + b2 x[n−2] − a1 y[n−1] − a2 y[n−2]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BiquadCoeffs {
    /// Feed-forward taps.
    pub b: [f64; 3],
    /// Feedback taps (a1, a2).
    pub a: [f64; 2],
}

impl BiquadCoeffs {
    /// RBJ lowpass with cutoff `fc` (fraction of sample rate) and quality
    /// factor `q`.
    ///
    /// # Panics
    ///
    /// Panics if `fc` is outside `(0, 0.5)` or `q` is not positive.
    #[must_use]
    pub fn lowpass(fc: f64, q: f64) -> Self {
        let (w0, alpha, cw) = rbj_params(fc, q);
        let a0 = 1.0 + alpha;
        Self {
            b: [
                (1.0 - cw) / 2.0 / a0,
                (1.0 - cw) / a0,
                (1.0 - cw) / 2.0 / a0,
            ],
            a: [-2.0 * cw / a0, (1.0 - alpha) / a0],
        }
        .validated(w0)
    }

    /// RBJ highpass (used as a DC blocker before demodulation).
    ///
    /// # Panics
    ///
    /// Same conditions as [`BiquadCoeffs::lowpass`].
    #[must_use]
    pub fn highpass(fc: f64, q: f64) -> Self {
        let (w0, alpha, cw) = rbj_params(fc, q);
        let a0 = 1.0 + alpha;
        Self {
            b: [
                (1.0 + cw) / 2.0 / a0,
                -(1.0 + cw) / a0,
                (1.0 + cw) / 2.0 / a0,
            ],
            a: [-2.0 * cw / a0, (1.0 - alpha) / a0],
        }
        .validated(w0)
    }

    /// RBJ bandpass (constant 0 dB peak gain) centred at `fc`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`BiquadCoeffs::lowpass`].
    #[must_use]
    pub fn bandpass(fc: f64, q: f64) -> Self {
        let (w0, alpha, cw) = rbj_params(fc, q);
        let a0 = 1.0 + alpha;
        Self {
            b: [alpha / a0, 0.0, -alpha / a0],
            a: [-2.0 * cw / a0, (1.0 - alpha) / a0],
        }
        .validated(w0)
    }

    fn validated(self, _w0: f64) -> Self {
        for c in self.b.iter().chain(self.a.iter()) {
            assert!(
                c.abs() < 2.0,
                "biquad coefficient {c} outside Q30 range; lower Q or raise fc"
            );
        }
        self
    }

    /// `true` if both poles are inside the unit circle (stability).
    #[must_use]
    pub fn is_stable(&self) -> bool {
        // Jury criterion for a 2nd-order monic denominator.
        let (a1, a2) = (self.a[0], self.a[1]);
        a2 < 1.0 && (a1 + a2) > -1.0 && (a2 - a1) > -1.0
    }

    /// Magnitude response at frequency `f` (fraction of sample rate).
    #[must_use]
    pub fn gain_at(&self, f: f64) -> f64 {
        let w = 2.0 * std::f64::consts::PI * f;
        let num = complex_poly(&[self.b[0], self.b[1], self.b[2]], w);
        let den = complex_poly(&[1.0, self.a[0], self.a[1]], w);
        (num.0.hypot(num.1)) / (den.0.hypot(den.1))
    }
}

fn rbj_params(fc: f64, q: f64) -> (f64, f64, f64) {
    assert!(
        fc > 0.0 && fc < 0.5,
        "cutoff must be in (0, 0.5) of the sample rate, got {fc}"
    );
    assert!(q > 0.0, "quality factor must be positive, got {q}");
    let w0 = 2.0 * std::f64::consts::PI * fc;
    (w0, w0.sin() / (2.0 * q), w0.cos())
}

fn complex_poly(c: &[f64; 3], w: f64) -> (f64, f64) {
    // c0 + c1 e^{-jw} + c2 e^{-2jw}
    let re = c[0] + c[1] * w.cos() + c[2] * (2.0 * w).cos();
    let im = -c[1] * w.sin() - c[2] * (2.0 * w).sin();
    (re, im)
}

/// Fixed-point direct-form-I biquad.
///
/// Output history is kept at Q30 resolution (a 15-bit guard below the Q15
/// sample grid): narrow-band sections have `1 + a1 + a2` of order 1e-3, so
/// rounding the feedback state at Q15 would leave a signal-dependent
/// staircase of hundreds of LSBs — the classic DF1 limit-cycle problem that
/// real RTL solves exactly this way (wider state registers).
#[derive(Debug, Clone)]
pub struct Biquad {
    b: [Q30; 3],
    a: [Q30; 2],
    x: [Q15; 2],
    /// Output history in Q30 raw units.
    y: [i64; 2],
    /// Outputs clamped at the Q15 rails (monotonic clip counter).
    saturations: u64,
}

impl Biquad {
    /// Quantizes float coefficients into the Q30 datapath.
    #[must_use]
    pub fn new(coeffs: BiquadCoeffs) -> Self {
        Self {
            b: coeffs.b.map(Q30::from_f64),
            a: coeffs.a.map(Q30::from_f64),
            x: [Q15::ZERO; 2],
            y: [0; 2],
            saturations: 0,
        }
    }

    /// Clears the delay elements (the clip counter is monotonic and
    /// survives resets).
    pub fn reset(&mut self) {
        self.x = [Q15::ZERO; 2];
        self.y = [0; 2];
    }

    /// Outputs that hit the saturation clamp since construction.
    #[must_use]
    pub fn saturations(&self) -> u64 {
        self.saturations
    }

    /// Processes one sample.
    pub fn process(&mut self, x: Q15) -> Q15 {
        // Feed-forward products are Q15·Q30 = Q45; feedback products are
        // Q30·Q30 = Q60, shifted to Q45 before summing.
        let ff: i64 = x.raw() as i64 * self.b[0].raw() as i64
            + self.x[0].raw() as i64 * self.b[1].raw() as i64
            + self.x[1].raw() as i64 * self.b[2].raw() as i64;
        let fb: i64 = ((self.y[0].saturating_mul(self.a[0].raw() as i64)) >> 15)
            + ((self.y[1].saturating_mul(self.a[1].raw() as i64)) >> 15);
        let acc = ff - fb;
        // New state at Q30 (acc is Q45).
        let y30 = (acc + (1i64 << 14)) >> 15;
        self.x[1] = self.x[0];
        self.x[0] = x;
        self.y[1] = self.y[0];
        self.y[0] = y30;
        // Output at Q15, rounded, saturated.
        let y15 = (y30 + (1i64 << 14)) >> 15;
        if !(i64::from(i32::MIN)..=i64::from(i32::MAX)).contains(&y15) {
            self.saturations += 1;
        }
        Q15::from_raw(y15.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }

    /// Serializes the delay elements and clip counter (coefficients are
    /// configuration and are not saved).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_i32(self.x[0].raw());
        w.put_i32(self.x[1].raw());
        w.put_i64(self.y[0]);
        w.put_i64(self.y[1]);
        w.put_u64(self.saturations);
    }

    /// Restores state saved by [`Biquad::save_state`].
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.x[0] = Q15::from_raw(r.take_i32()?);
        self.x[1] = Q15::from_raw(r.take_i32()?);
        self.y[0] = r.take_i64()?;
        self.y[1] = r.take_i64()?;
        self.saturations = r.take_u64()?;
        Ok(())
    }
}

/// Cascade of biquad sections (higher-order filters).
#[derive(Debug, Clone, Default)]
pub struct BiquadCascade {
    sections: Vec<Biquad>,
}

impl BiquadCascade {
    /// Builds a cascade from per-section coefficients.
    #[must_use]
    pub fn new(sections: &[BiquadCoeffs]) -> Self {
        Self {
            sections: sections.iter().copied().map(Biquad::new).collect(),
        }
    }

    /// Number of sections.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// `true` if there are no sections (the cascade is then a wire).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Clears all sections.
    pub fn reset(&mut self) {
        for s in &mut self.sections {
            s.reset();
        }
    }

    /// Processes one sample through every section in order.
    pub fn process(&mut self, x: Q15) -> Q15 {
        self.sections.iter_mut().fold(x, |v, s| s.process(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_sine(bq: &mut Biquad, f: f64, amp: f64, n: usize) -> f64 {
        let w = 2.0 * std::f64::consts::PI * f;
        let mut sum_sq = 0.0;
        let mut count = 0;
        for k in 0..n {
            let y = bq
                .process(Q15::from_f64(amp * (w * k as f64).sin()))
                .to_f64();
            if k > n / 2 {
                sum_sq += y * y;
                count += 1;
            }
        }
        (sum_sq / count as f64).sqrt() / (amp / std::f64::consts::SQRT_2)
    }

    #[test]
    fn lowpass_gain_shape() {
        let c = BiquadCoeffs::lowpass(0.05, std::f64::consts::FRAC_1_SQRT_2);
        assert!((c.gain_at(0.001) - 1.0).abs() < 0.01);
        assert!((c.gain_at(0.05) - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.02);
        assert!(c.gain_at(0.25) < 0.05);
    }

    #[test]
    fn highpass_blocks_dc() {
        let mut bq = Biquad::new(BiquadCoeffs::highpass(0.01, 0.707));
        let mut y = Q15::ZERO;
        for _ in 0..5000 {
            y = bq.process(Q15::from_f64(0.5));
        }
        // DF1 output quantization leaves a small limit cycle for very
        // narrow filters; 1 % of the input step is the acceptance used for
        // the platform's DC blocker.
        assert!(y.to_f64().abs() < 1e-2, "DC leaked: {}", y.to_f64());
    }

    #[test]
    fn bandpass_peaks_at_center() {
        let c = BiquadCoeffs::bandpass(0.1, 5.0);
        assert!((c.gain_at(0.1) - 1.0).abs() < 0.01);
        assert!(c.gain_at(0.02) < 0.25);
        assert!(c.gain_at(0.3) < 0.25);
    }

    #[test]
    fn designs_are_stable() {
        for &(fc, q) in &[(0.01, 0.5), (0.1, 0.707), (0.2, 3.0), (0.45, 1.0)] {
            assert!(BiquadCoeffs::lowpass(fc, q).is_stable(), "lp {fc} {q}");
            assert!(BiquadCoeffs::highpass(fc, q).is_stable(), "hp {fc} {q}");
            assert!(BiquadCoeffs::bandpass(fc, q).is_stable(), "bp {fc} {q}");
        }
    }

    #[test]
    fn unstable_coeffs_detected() {
        let c = BiquadCoeffs {
            b: [1.0, 0.0, 0.0],
            a: [0.0, 1.5],
        };
        assert!(!c.is_stable());
    }

    #[test]
    fn fixed_point_matches_float_gain() {
        let coeffs = BiquadCoeffs::lowpass(0.05, 0.707);
        let mut bq = Biquad::new(coeffs);
        let measured = run_sine(&mut bq, 0.01, 0.4, 8000);
        let designed = coeffs.gain_at(0.01);
        assert!(
            (measured - designed).abs() < 0.02,
            "measured {measured} vs designed {designed}"
        );
    }

    #[test]
    fn cascade_multiplies_attenuation() {
        let c = BiquadCoeffs::lowpass(0.05, 0.707);
        let mut single = BiquadCascade::new(&[c]);
        let mut double = BiquadCascade::new(&[c, c]);
        let f = 0.2;
        let w = 2.0 * std::f64::consts::PI * f;
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        for k in 0..4000 {
            let x = Q15::from_f64(0.4 * (w * k as f64).sin());
            let y1 = single.process(x).to_f64();
            let y2 = double.process(x).to_f64();
            if k > 2000 {
                s1 += y1 * y1;
                s2 += y2 * y2;
            }
        }
        assert!(s2 < s1 / 4.0, "cascade not steeper: {s1} vs {s2}");
    }

    #[test]
    fn reset_clears_cascade() {
        let mut c = BiquadCascade::new(&[BiquadCoeffs::lowpass(0.1, 0.707)]);
        for _ in 0..10 {
            c.process(Q15::ONE);
        }
        c.reset();
        // First output after reset of a DF1 lowpass with zero state is b0*x.
        let y = c.process(Q15::ZERO);
        assert_eq!(y, Q15::ZERO);
    }

    #[test]
    #[should_panic(expected = "quality factor")]
    fn rejects_non_positive_q() {
        let _ = BiquadCoeffs::lowpass(0.1, 0.0);
    }
}
