//! Automatic gain control for the primary drive amplitude.
//!
//! The Coriolis signal is proportional to both the rotation rate and the
//! drive-mode velocity amplitude, so scale-factor stability requires the
//! ring's vibration amplitude to be held constant. The paper's Fig. 5 shows
//! the AGC traces ("amplitude control", "amplitude error") locking together
//! with the PLL.
//!
//! Structure: quadrature envelope detector (I/Q demodulation against the PLL
//! reference + CORDIC magnitude) followed by a PI controller that sets the
//! drive DAC amplitude.

use crate::cordic::to_polar;
use crate::fixed::Q15;
use crate::pll::PiController;
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};

/// AGC configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgcConfig {
    /// DSP sample rate (Hz).
    pub sample_rate: f64,
    /// Target envelope amplitude (fraction of ADC full scale).
    pub setpoint: f64,
    /// Envelope averaging window in samples.
    pub average: u32,
    /// Proportional gain (drive units per amplitude-error unit).
    pub kp: f64,
    /// Integral gain (drive units per amplitude-error unit per second).
    pub ki: f64,
    /// Maximum drive amplitude (DAC full scale = 1.0).
    pub max_drive: f64,
}

impl Default for AgcConfig {
    fn default() -> Self {
        Self {
            sample_rate: 250_000.0,
            setpoint: 0.5,
            average: 64,
            kp: 0.2,
            ki: 300.0,
            max_drive: 1.0,
        }
    }
}

impl AgcConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field when the sample rate,
    /// setpoint, averaging length or drive limit is out of range.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.sample_rate > 0.0) {
            return Err("sample_rate must be positive".to_owned());
        }
        if !(self.setpoint > 0.0 && self.setpoint < 1.0) {
            return Err(format!("setpoint {} outside (0, 1)", self.setpoint));
        }
        if self.average == 0 {
            return Err("average must be non-zero".to_owned());
        }
        if !(self.max_drive > 0.0) {
            return Err("max_drive must be positive".to_owned());
        }
        Ok(())
    }
}

/// Automatic gain control loop.
#[derive(Debug, Clone)]
pub struct Agc {
    config: AgcConfig,
    i_acc: i64,
    q_acc: i64,
    count: u32,
    envelope: f64,
    error: f64,
    drive: f64,
    pi: PiController,
    samples: u64,
    settled_at_sample: Option<u64>,
}

impl Agc {
    /// Builds an AGC from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.validate()` fails.
    #[must_use]
    pub fn new(config: AgcConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid AGC config: {e}");
        }
        let dt = config.average as f64 / config.sample_rate;
        let pi = PiController::new(config.kp, config.ki, dt, 0.0, config.max_drive);
        Self {
            config,
            i_acc: 0,
            q_acc: 0,
            count: 0,
            envelope: 0.0,
            error: config.setpoint,
            drive: 0.0,
            pi,
            samples: 0,
            settled_at_sample: None,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &AgcConfig {
        &self.config
    }

    /// Processes one pickoff sample with the PLL's `(sin, cos)` references;
    /// returns the current drive amplitude command (0..max_drive).
    pub fn process(&mut self, pickoff: Q15, sin_ref: Q15, cos_ref: Q15) -> f64 {
        // Quadrature mixdown: at lock, I carries the envelope.
        self.i_acc += pickoff.mul(sin_ref).raw() as i64;
        self.q_acc += pickoff.mul(cos_ref).raw() as i64;
        self.count += 1;
        self.samples += 1;
        if self.count == self.config.average {
            let scale = 1.0 / (self.config.average as f64);
            let i = Q15::from_f64(self.i_acc as f64 * scale / 32768.0 * 2.0);
            let q = Q15::from_f64(self.q_acc as f64 * scale / 32768.0 * 2.0);
            // Mixing halves the amplitude (sin² average = ½); the ×2 above
            // restores the envelope scale. CORDIC gives the magnitude
            // independent of residual phase error.
            let polar = to_polar(i, q);
            self.envelope = polar.magnitude.to_f64();
            self.error = self.config.setpoint - self.envelope;
            self.drive = self.pi.update(self.error);
            // Settling milestone: the first window whose error is inside a
            // 5 %-of-setpoint band. Latched until reset.
            if self.settled_at_sample.is_none() && self.error.abs() <= 0.05 * self.config.setpoint {
                self.settled_at_sample = Some(self.samples);
            }
            self.i_acc = 0;
            self.q_acc = 0;
            self.count = 0;
        }
        self.drive
    }

    /// Latest detected envelope (fraction of full scale).
    #[must_use]
    pub fn envelope(&self) -> f64 {
        self.envelope
    }

    /// Latest amplitude error (setpoint − envelope): the Fig. 5 trace.
    #[must_use]
    pub fn error(&self) -> f64 {
        self.error
    }

    /// Current drive command: the Fig. 5 "amplitude control" trace.
    #[must_use]
    pub fn drive(&self) -> f64 {
        self.drive
    }

    /// `true` once the envelope is within `tol` of the setpoint.
    #[must_use]
    pub fn is_settled(&self, tol: f64) -> bool {
        self.error.abs() <= tol
    }

    /// Time (seconds since construction/reset) when the amplitude error
    /// first entered the ±5 %-of-setpoint band, or `None` before that.
    #[must_use]
    pub fn settle_time_s(&self) -> Option<f64> {
        self.settled_at_sample
            .map(|n| n as f64 / self.config.sample_rate)
    }

    /// Resets detector and controller state.
    pub fn reset(&mut self) {
        self.i_acc = 0;
        self.q_acc = 0;
        self.count = 0;
        self.envelope = 0.0;
        self.error = self.config.setpoint;
        self.drive = 0.0;
        self.pi.reset();
        self.samples = 0;
        self.settled_at_sample = None;
    }

    /// Serializes detector accumulators, envelope/drive state and the PI
    /// integrator. The configuration is not saved.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_i64(self.i_acc);
        w.put_i64(self.q_acc);
        w.put_u32(self.count);
        w.put_f64(self.envelope);
        w.put_f64(self.error);
        w.put_f64(self.drive);
        self.pi.save_state(w);
        w.put_u64(self.samples);
        w.put_opt_u64(self.settled_at_sample);
    }

    /// Restores state saved by [`Agc::save_state`] into an AGC built from
    /// the same configuration (bit-exact continuation).
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.i_acc = r.take_i64()?;
        self.q_acc = r.take_i64()?;
        self.count = r.take_u32()?;
        self.envelope = r.take_f64()?;
        self.error = r.take_f64()?;
        self.drive = r.take_f64()?;
        self.pi.load_state(r)?;
        self.samples = r.take_u64()?;
        self.settled_at_sample = r.take_opt_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nco::Nco;

    /// Simple first-order "resonator" gain plant: envelope = gain × drive.
    fn run_agc(plant_gain: f64, seconds: f64) -> (f64, f64) {
        let config = AgcConfig::default();
        let fs = config.sample_rate;
        let mut agc = Agc::new(config);
        let mut nco = Nco::new();
        nco.set_frequency(15_000.0, fs);
        let mut drive = 0.0f64;
        let n = (seconds * fs) as usize;
        for _ in 0..n {
            let (s, c) = nco.tick();
            // Plant: pickoff amplitude = plant_gain * drive, in phase.
            let pickoff = Q15::from_f64((plant_gain * drive) * s.to_f64());
            drive = agc.process(pickoff, s, c);
        }
        (agc.envelope(), agc.drive())
    }

    #[test]
    fn envelope_reaches_setpoint() {
        let (env, _) = run_agc(1.0, 0.4);
        // Detector averages a non-integer number of carrier periods, so a
        // small steady ripple (~2 %) remains on the envelope reading.
        assert!((env - 0.5).abs() < 0.03, "envelope {env}");
    }

    #[test]
    fn drive_compensates_plant_gain() {
        let (env1, drive1) = run_agc(1.0, 0.2);
        let (env2, drive2) = run_agc(2.0, 0.2);
        assert!((env1 - env2).abs() < 0.02, "envelopes {env1} vs {env2}");
        assert!(
            (drive1 / drive2 - 2.0).abs() < 0.1,
            "drives {drive1} vs {drive2}"
        );
    }

    #[test]
    fn drive_saturates_at_max() {
        // Plant too weak to ever reach the setpoint.
        let (_, drive) = run_agc(0.1, 0.3);
        assert!((drive - 1.0).abs() < 1e-9, "drive {drive}");
    }

    #[test]
    fn envelope_detection_is_phase_insensitive() {
        let config = AgcConfig::default();
        let fs = config.sample_rate;
        let mut agc = Agc::new(config);
        let mut nco = Nco::new();
        nco.set_frequency(15_000.0, fs);
        // Pickoff shifted 30° from the reference; envelope must still read
        // the true amplitude thanks to the CORDIC magnitude.
        let offset = 30f64.to_radians();
        let mut phase = offset;
        for _ in 0..50_000 {
            let (s, c) = nco.tick();
            let pickoff = Q15::from_f64(0.4 * phase.sin());
            agc.process(pickoff, s, c);
            phase += 2.0 * std::f64::consts::PI * 15_000.0 / fs;
        }
        // envelope should be near 0.4 despite the offset phase
        assert!(
            (agc.envelope() - 0.4).abs() < 0.05,
            "env {}",
            agc.envelope()
        );
    }

    #[test]
    fn settled_predicate() {
        let config = AgcConfig::default();
        let agc = Agc::new(config);
        assert!(!agc.is_settled(0.01));
    }

    #[test]
    fn reset_zeroes_drive() {
        let config = AgcConfig::default();
        let mut agc = Agc::new(config);
        let mut nco = Nco::new();
        nco.set_frequency(15_000.0, config.sample_rate);
        for _ in 0..1000 {
            let (s, c) = nco.tick();
            agc.process(Q15::from_f64(0.1), s, c);
        }
        agc.reset();
        assert_eq!(agc.drive(), 0.0);
        assert_eq!(agc.envelope(), 0.0);
    }

    #[test]
    fn settle_time_latches_once() {
        let config = AgcConfig::default();
        let fs = config.sample_rate;
        let mut agc = Agc::new(config);
        assert_eq!(agc.settle_time_s(), None);
        let mut nco = Nco::new();
        nco.set_frequency(15_000.0, fs);
        let mut drive = 0.0f64;
        for _ in 0..(0.4 * fs) as usize {
            let (s, c) = nco.tick();
            let pickoff = Q15::from_f64(drive * s.to_f64());
            drive = agc.process(pickoff, s, c);
        }
        let settle = agc.settle_time_s().expect("AGC settled");
        assert!(settle > 0.0 && settle < 0.4, "settle {settle}");
        // Latched: running longer must not move it.
        for _ in 0..10_000 {
            let (s, c) = nco.tick();
            let pickoff = Q15::from_f64(drive * s.to_f64());
            drive = agc.process(pickoff, s, c);
        }
        assert_eq!(agc.settle_time_s(), Some(settle));
        agc.reset();
        assert_eq!(agc.settle_time_s(), None);
    }

    #[test]
    fn config_validation() {
        let mut c = AgcConfig::default();
        assert!(c.validate().is_ok());
        c.setpoint = 1.5;
        assert!(c.validate().is_err());
        c = AgcConfig::default();
        c.average = 0;
        assert!(c.validate().is_err());
        c = AgcConfig::default();
        c.max_drive = 0.0;
        assert!(c.validate().is_err());
    }
}
