//! Two's-complement fixed-point arithmetic.
//!
//! The paper's hardwired DSP section is RTL: every filter, demodulator and
//! loop controller is a fixed-point datapath. [`Fx`] is the bit-accurate
//! stand-in — a 32-bit signed word with a const-generic number of fractional
//! bits, saturating arithmetic (as sensor-conditioning datapaths do: a wrap
//! on an airbag-adjacent signal path is a safety bug), and explicit
//! requantization for word-length-exploration experiments.
//!
//! Common formats get aliases: [`Q15`] (1.15-style in a 32-bit word, the
//! ADC/DAC sample format) and [`Q30`] (high-resolution loop-filter
//! accumulators).
//!
//! # Example
//!
//! ```
//! use ascp_dsp::fixed::Q15;
//! let a = Q15::from_f64(0.5);
//! let b = Q15::from_f64(0.25);
//! assert!((a.mul(b).to_f64() - 0.125).abs() < 1e-4);
//! ```

use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// Fixed-point value: a 32-bit two's-complement word with `FRAC` fractional
/// bits. Addition and subtraction saturate at the 32-bit range; see
/// [`Fx::mul`] for the multiplication contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fx<const FRAC: u32>(i32);

/// 32-bit word with 15 fractional bits (ADC/DAC sample format; values in
/// roughly ±65536 with 2⁻¹⁵ resolution).
pub type Q15 = Fx<15>;
/// 32-bit word with 30 fractional bits (loop-filter integrators; ±2 range).
pub type Q30 = Fx<30>;
/// 32-bit word with 20 fractional bits (filter coefficients with headroom).
pub type Q20 = Fx<20>;

// `mul`/`shl`/`shr` are the DSP-datapath names (explicit, saturating,
// rounding variants) — deliberately distinct from the wrapping `std::ops`
// operators, which this type does not implement.
#[allow(clippy::should_implement_trait)]
impl<const FRAC: u32> Fx<FRAC> {
    /// The representable maximum.
    pub const MAX: Self = Self(i32::MAX);
    /// The representable minimum.
    pub const MIN: Self = Self(i32::MIN);
    /// Zero.
    pub const ZERO: Self = Self(0);
    /// One, if representable (`FRAC < 31`).
    pub const ONE: Self = Self(1i32 << FRAC);

    /// Number of fractional bits.
    #[must_use]
    pub const fn frac_bits() -> u32 {
        FRAC
    }

    /// Constructs from the raw integer word (no scaling).
    #[must_use]
    pub const fn from_raw(raw: i32) -> Self {
        Self(raw)
    }

    /// The raw integer word.
    #[must_use]
    pub const fn raw(self) -> i32 {
        self.0
    }

    /// Converts from `f64`, rounding to nearest and saturating at the word
    /// range. Non-finite inputs saturate toward the matching extreme
    /// (`NaN` maps to zero).
    #[must_use]
    pub fn from_f64(v: f64) -> Self {
        if v.is_nan() {
            return Self::ZERO;
        }
        let scaled = v * (1i64 << FRAC) as f64;
        if scaled >= i32::MAX as f64 {
            Self::MAX
        } else if scaled <= i32::MIN as f64 {
            Self::MIN
        } else {
            Self(scaled.round() as i32)
        }
    }

    /// Converts to `f64` exactly (every 32-bit word is representable).
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / (1i64 << FRAC) as f64
    }

    /// Saturating addition.
    #[must_use]
    pub fn sat_add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn sat_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Fixed-point multiply: 32×32→64-bit product, rounded shift back by
    /// `FRAC`, saturated to 32 bits — the standard DSP multiplier contract.
    /// `FRAC == 0` (pure integers) has no fractional shift and no rounding
    /// term; the guard avoids the `1 << (0 - 1)` underflow that would wrap
    /// the shift amount.
    #[must_use]
    pub fn mul(self, rhs: Self) -> Self {
        let p = self.0 as i64 * rhs.0 as i64;
        let round = if FRAC == 0 { 0 } else { 1i64 << (FRAC - 1) };
        Self(saturate_i64((p + round) >> FRAC))
    }

    /// Multiplies by a value in a different Q format, producing `Self`'s
    /// format (coefficient × sample with coefficient in higher precision).
    /// As with [`Fx::mul`], `F2 == 0` skips the rounding term.
    #[must_use]
    pub fn mul_q<const F2: u32>(self, rhs: Fx<F2>) -> Self {
        let p = self.0 as i64 * rhs.0 as i64;
        let round = if F2 == 0 { 0 } else { 1i64 << (F2 - 1) };
        Self(saturate_i64((p + round) >> F2))
    }

    /// Arithmetic shift right (divide by 2ⁿ, truncating toward −∞).
    #[must_use]
    pub fn shr(self, n: u32) -> Self {
        Self(self.0 >> n)
    }

    /// Saturating shift left (multiply by 2ⁿ).
    #[must_use]
    pub fn shl(self, n: u32) -> Self {
        let v = (self.0 as i64) << n;
        Self(saturate_i64(v))
    }

    /// Absolute value (saturates `MIN` to `MAX`).
    #[must_use]
    pub fn abs(self) -> Self {
        if self.0 == i32::MIN {
            Self::MAX
        } else {
            Self(self.0.abs())
        }
    }

    /// Negation (saturates `MIN` to `MAX`).
    #[must_use]
    pub fn sat_neg(self) -> Self {
        if self.0 == i32::MIN {
            Self::MAX
        } else {
            Self(-self.0)
        }
    }

    /// Clamps into `[lo, hi]`.
    #[must_use]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        Self(self.0.clamp(lo.0, hi.0))
    }

    /// `true` when the word sits at either 32-bit rail — the signature a
    /// saturating operation leaves behind. Plausibility checks use this to
    /// distinguish "large signal" from "clipped datapath".
    #[must_use]
    pub const fn is_rail(self) -> bool {
        self.0 == i32::MAX || self.0 == i32::MIN
    }

    /// Requantizes to an effective word length of `bits` total bits
    /// (1 sign + `bits − 1` magnitude), truncating the dropped LSBs and
    /// saturating into the narrower range. This emulates a narrower RTL
    /// datapath for word-length design-space exploration.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 32.
    #[must_use]
    pub fn quantize_to(self, bits: u32) -> Self {
        assert!((1..=32).contains(&bits), "word length must be 1..=32 bits");
        if bits == 32 {
            return self;
        }
        let drop = 32 - bits;
        // Truncate the LSBs, then saturate into the narrower range expressed
        // back at full scale (so magnitudes stay comparable across widths).
        let max = (1i32 << (bits - 1)) - 1;
        let min = -(1i32 << (bits - 1));
        let t = (self.0 >> drop).clamp(min, max);
        Self(t << drop)
    }

    /// Converts to another Q format, shifting and saturating as required.
    #[must_use]
    pub fn convert<const F2: u32>(self) -> Fx<F2> {
        if F2 >= FRAC {
            let v = (self.0 as i64) << (F2 - FRAC);
            Fx::<F2>(saturate_i64(v))
        } else {
            let shift = FRAC - F2;
            let rounded = ((self.0 as i64) + (1i64 << (shift - 1))) >> shift;
            Fx::<F2>(saturate_i64(rounded))
        }
    }
}

fn saturate_i64(v: i64) -> i32 {
    if v > i32::MAX as i64 {
        i32::MAX
    } else if v < i32::MIN as i64 {
        i32::MIN
    } else {
        v as i32
    }
}

impl<const FRAC: u32> Add for Fx<FRAC> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        self.sat_add(rhs)
    }
}

impl<const FRAC: u32> AddAssign for Fx<FRAC> {
    fn add_assign(&mut self, rhs: Self) {
        *self = self.sat_add(rhs);
    }
}

impl<const FRAC: u32> Sub for Fx<FRAC> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        self.sat_sub(rhs)
    }
}

impl<const FRAC: u32> SubAssign for Fx<FRAC> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = self.sat_sub(rhs);
    }
}

impl<const FRAC: u32> Neg for Fx<FRAC> {
    type Output = Self;
    fn neg(self) -> Self {
        self.sat_neg()
    }
}

impl<const FRAC: u32> fmt::Display for Fx<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl<const FRAC: u32> fmt::LowerHex for Fx<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl<const FRAC: u32> fmt::UpperHex for Fx<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl<const FRAC: u32> fmt::Binary for Fx<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl<const FRAC: u32> From<Fx<FRAC>> for f64 {
    fn from(v: Fx<FRAC>) -> f64 {
        v.to_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_small_values() {
        for &v in &[0.0, 0.5, -0.5, 0.12345, -0.99997] {
            let q = Q15::from_f64(v);
            assert!((q.to_f64() - v).abs() < 2.0 / 32768.0, "value {v}");
        }
    }

    #[test]
    fn from_f64_saturates() {
        assert_eq!(Q30::from_f64(10.0), Q30::MAX);
        assert_eq!(Q30::from_f64(-10.0), Q30::MIN);
        assert_eq!(Q30::from_f64(f64::INFINITY), Q30::MAX);
        assert_eq!(Q30::from_f64(f64::NEG_INFINITY), Q30::MIN);
        assert_eq!(Q30::from_f64(f64::NAN), Q30::ZERO);
    }

    #[test]
    fn one_constant() {
        assert_eq!(Q15::ONE.to_f64(), 1.0);
        assert_eq!(Q15::ONE.raw(), 1 << 15);
    }

    #[test]
    fn add_saturates() {
        let big = Fx::<0>::from_raw(i32::MAX);
        assert_eq!(big + Fx::<0>::from_raw(1), Fx::<0>::MAX);
        let small = Fx::<0>::from_raw(i32::MIN);
        assert_eq!(small - Fx::<0>::from_raw(1), Fx::<0>::MIN);
    }

    #[test]
    fn mul_basic_and_rounding() {
        let a = Q15::from_f64(0.5);
        let b = Q15::from_f64(-0.5);
        assert!((a.mul(b).to_f64() + 0.25).abs() < 1e-4);
        // Rounding: smallest positive value squared rounds to nearest.
        let eps = Q15::from_raw(1);
        assert_eq!(eps.mul(eps).raw(), 0); // 2^-30 -> rounds to 0 at Q15
    }

    #[test]
    fn integer_format_mul_is_exact() {
        // FRAC = 0: no fractional shift, no rounding bias. This used to
        // compute `1 << (0 - 1)` and corrupt the shift in release builds.
        let a = Fx::<0>::from_raw(1000);
        let b = Fx::<0>::from_raw(-37);
        assert_eq!(a.mul(b).raw(), -37_000);
        let c = Q15::from_f64(0.5);
        assert_eq!(c.mul_q(Fx::<0>::from_raw(3)).raw(), c.raw() * 3);
    }

    #[test]
    fn integer_format_mul_saturates() {
        let big = Fx::<0>::from_raw(1 << 20);
        assert_eq!(big.mul(big), Fx::<0>::MAX);
        assert_eq!(big.mul(Fx::<0>::from_raw(-(1 << 20))), Fx::<0>::MIN);
    }

    #[test]
    fn rail_detection() {
        assert!(Q15::MAX.is_rail());
        assert!(Q15::MIN.is_rail());
        assert!(!Q15::from_f64(0.999).is_rail());
        assert!(!Q15::ZERO.is_rail());
    }

    #[test]
    fn mul_q_cross_format() {
        let sample = Q15::from_f64(0.5);
        let coeff = Q30::from_f64(0.25);
        let y = sample.mul_q(coeff);
        assert!((y.to_f64() - 0.125).abs() < 1e-4);
    }

    #[test]
    fn neg_and_abs_handle_min() {
        assert_eq!(Q15::MIN.sat_neg(), Q15::MAX);
        assert_eq!(Q15::MIN.abs(), Q15::MAX);
        assert_eq!((-Q15::from_f64(0.5)).to_f64(), -0.5);
    }

    #[test]
    fn shifts() {
        let v = Q15::from_f64(0.5);
        assert_eq!(v.shr(1).to_f64(), 0.25);
        assert_eq!(v.shl(1).to_f64(), 1.0);
        assert_eq!(Q15::MAX.shl(4), Q15::MAX);
    }

    #[test]
    fn quantize_reduces_resolution() {
        let v = Q15::from_f64(0.123456789);
        let q12 = v.quantize_to(12);
        // 12-bit word at full scale: step is 2^20 raw counts.
        assert_eq!(q12.raw() % (1 << 20), 0);
        assert!((q12.to_f64() - v.to_f64()).abs() < (1 << 20) as f64 / (1 << 15) as f64);
        assert_eq!(v.quantize_to(32), v);
    }

    #[test]
    #[should_panic(expected = "word length")]
    fn quantize_rejects_zero_bits() {
        let _ = Q15::from_f64(0.1).quantize_to(0);
    }

    #[test]
    fn convert_between_formats() {
        let v = Q15::from_f64(0.75);
        let w: Q30 = v.convert();
        assert!((w.to_f64() - 0.75).abs() < 1e-9);
        let back: Q15 = w.convert();
        assert_eq!(back, v);
        // Down-conversion saturates out-of-range values.
        let big = Q15::from_f64(100.0);
        let s: Q30 = big.convert();
        assert_eq!(s, Q30::MAX);
    }

    #[test]
    fn hex_binary_formatting() {
        let v = Q15::from_raw(0x7fff);
        assert_eq!(format!("{v:x}"), "7fff");
        assert_eq!(format!("{v:X}"), "7FFF");
        assert_eq!(format!("{:b}", Q15::from_raw(5)), "101");
    }

    #[test]
    fn display_shows_float() {
        assert_eq!(Q15::from_f64(0.5).to_string(), "0.5");
    }
}
