//! Temperature / offset compensation.
//!
//! The conditioning chain ends with "temperature/offset compensation"
//! (paper §4.1): the raw demodulated rate has a temperature-dependent null
//! offset and scale factor. The platform measures die temperature, looks up
//! polynomial correction coefficients (burned into ROM/EEPROM at final
//! test), and applies `y = (x − offset(T)) · gain(T)` in fixed point.

use crate::fixed::{Q15, Q30};
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};

/// Polynomial in the normalized temperature `u = (T − T0) / Tscale`,
/// evaluated by Horner's rule in Q30.
///
/// Normalization keeps `u` in roughly ±1 over the automotive range so the
/// fixed-point powers do not lose precision.
#[derive(Debug, Clone, PartialEq)]
pub struct TempPolynomial {
    coeffs: Vec<Q30>,
    t0: f64,
    tscale: f64,
}

impl TempPolynomial {
    /// Creates a polynomial with float coefficients `c[0] + c[1]·u + …`,
    /// reference temperature `t0` (°C) and scale `tscale` (°C per unit u).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty, `tscale` is not positive, or any
    /// coefficient falls outside the Q30 range (|c| ≥ 2).
    #[must_use]
    pub fn new(coeffs: &[f64], t0: f64, tscale: f64) -> Self {
        assert!(!coeffs.is_empty(), "polynomial needs at least one term");
        assert!(tscale > 0.0, "temperature scale must be positive");
        for &c in coeffs {
            assert!(c.abs() < 2.0, "coefficient {c} outside Q30 range");
        }
        Self {
            coeffs: coeffs.iter().map(|&c| Q30::from_f64(c)).collect(),
            t0,
            tscale,
        }
    }

    /// A constant (temperature-independent) polynomial.
    #[must_use]
    pub fn constant(value: f64) -> Self {
        Self::new(&[value], 25.0, 100.0)
    }

    /// Polynomial order (degree = terms − 1).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Evaluates at temperature `t` (°C) in fixed point, returning Q30.
    #[must_use]
    pub fn eval(&self, t: f64) -> Q30 {
        let u = Q30::from_f64(((t - self.t0) / self.tscale).clamp(-1.99, 1.99));
        // Horner: (((c_n u) + c_{n-1}) u + ...) + c_0
        let mut acc = *self.coeffs.last().expect("non-empty");
        for c in self.coeffs.iter().rev().skip(1) {
            acc = acc.mul(u).sat_add(*c);
        }
        acc
    }

    /// Serializes the coefficients and temperature normalization.
    pub fn save_state(&self, w: &mut StateWriter) {
        let raw: Vec<i32> = self.coeffs.iter().map(|c| c.raw()).collect();
        w.put_i32_slice(&raw);
        w.put_f64(self.t0);
        w.put_f64(self.tscale);
    }

    /// Restores state saved by [`TempPolynomial::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] for an empty coefficient list or
    /// a non-positive temperature scale.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let raw = r.take_i32_vec()?;
        if raw.is_empty() {
            return Err(SnapshotError::Corrupt {
                context: "temperature polynomial with no coefficients".into(),
            });
        }
        let t0 = r.take_f64()?;
        let tscale = r.take_f64()?;
        if !(t0.is_finite() && tscale.is_finite() && tscale > 0.0) {
            return Err(SnapshotError::Corrupt {
                context: format!("polynomial normalization t0={t0} tscale={tscale} not physical"),
            });
        }
        self.coeffs = raw.into_iter().map(Q30::from_raw).collect();
        self.t0 = t0;
        self.tscale = tscale;
        Ok(())
    }

    /// Float-side evaluation (design/verification reference).
    #[must_use]
    pub fn eval_f64(&self, t: f64) -> f64 {
        let u = ((t - self.t0) / self.tscale).clamp(-1.99, 1.99);
        self.coeffs
            .iter()
            .rev()
            .fold(0.0, |acc, c| acc * u + c.to_f64())
    }
}

/// Offset-and-gain compensation stage: `y = (x − offset(T)) · gain(T)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Compensator {
    offset: TempPolynomial,
    gain: TempPolynomial,
    /// Cached coefficients for the current temperature.
    cur_offset: Q15,
    cur_gain: Q30,
}

impl Compensator {
    /// Creates a compensator from offset and gain polynomials, initialized
    /// at 25 °C.
    #[must_use]
    pub fn new(offset: TempPolynomial, gain: TempPolynomial) -> Self {
        let mut c = Self {
            cur_offset: Q15::ZERO,
            cur_gain: Q30::ONE,
            offset,
            gain,
        };
        c.set_temperature(25.0);
        c
    }

    /// Identity compensator (no correction).
    #[must_use]
    pub fn identity() -> Self {
        Self::new(TempPolynomial::constant(0.0), TempPolynomial::constant(1.0))
    }

    /// Updates the cached correction for a new die temperature. In hardware
    /// this happens at the (slow) temperature-sensor rate, not per sample.
    pub fn set_temperature(&mut self, t: f64) {
        self.cur_offset = self.offset.eval(t).convert();
        self.cur_gain = self.gain.eval(t);
    }

    /// Applies the correction to one sample.
    #[must_use]
    pub fn apply(&self, x: Q15) -> Q15 {
        x.sat_sub(self.cur_offset).mul_q(self.cur_gain)
    }

    /// Current offset correction (Q15).
    #[must_use]
    pub fn offset(&self) -> Q15 {
        self.cur_offset
    }

    /// Current gain correction (Q30).
    #[must_use]
    pub fn gain(&self) -> Q30 {
        self.cur_gain
    }

    /// Serializes both polynomials (calibration can install fitted
    /// coefficients at run time, so they are state, not configuration)
    /// and the temperature-derived correction cache.
    pub fn save_state(&self, w: &mut StateWriter) {
        self.offset.save_state(w);
        self.gain.save_state(w);
        w.put_i32(self.cur_offset.raw());
        w.put_i32(self.cur_gain.raw());
    }

    /// Restores state saved by [`Compensator::save_state`].
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.offset.load_state(r)?;
        self.gain.load_state(r)?;
        self.cur_offset = Q15::from_raw(r.take_i32()?);
        self.cur_gain = Q30::from_raw(r.take_i32()?);
        Ok(())
    }
}

/// Fits compensation polynomials from calibration measurements:
/// `(temperature, measured_null, measured_gain_error)` triples, as gathered
/// at final test over a climate-chamber sweep.
///
/// Returns `(offset_poly, gain_poly)` of the requested `degree` using
/// least-squares in the normalized temperature variable.
///
/// # Panics
///
/// Panics if fewer than `degree + 1` measurements are supplied.
#[must_use]
pub fn fit_compensation(
    measurements: &[(f64, f64, f64)],
    degree: usize,
    t0: f64,
    tscale: f64,
) -> (TempPolynomial, TempPolynomial) {
    assert!(
        measurements.len() > degree,
        "need more than {degree} measurements for a degree-{degree} fit"
    );
    let us: Vec<f64> = measurements
        .iter()
        .map(|(t, _, _)| (t - t0) / tscale)
        .collect();
    let nulls: Vec<f64> = measurements.iter().map(|&(_, n, _)| n).collect();
    let gains: Vec<f64> = measurements.iter().map(|&(_, _, g)| g).collect();
    let off = polyfit(&us, &nulls, degree);
    let gain = polyfit(&us, &gains, degree);
    (
        TempPolynomial::new(&off, t0, tscale),
        TempPolynomial::new(&gain, t0, tscale),
    )
}

/// Least-squares polynomial fit via normal equations with Gaussian
/// elimination (degrees here are ≤ 3, so conditioning is fine).
fn polyfit(x: &[f64], y: &[f64], degree: usize) -> Vec<f64> {
    let n = degree + 1;
    let mut ata = vec![vec![0.0f64; n]; n];
    let mut atb = vec![0.0f64; n];
    for (&xi, &yi) in x.iter().zip(y) {
        let mut powers = vec![1.0f64; n];
        for k in 1..n {
            powers[k] = powers[k - 1] * xi;
        }
        for i in 0..n {
            atb[i] += powers[i] * yi;
            for j in 0..n {
                ata[i][j] += powers[i] * powers[j];
            }
        }
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&a, &b| {
                ata[a][col]
                    .abs()
                    .partial_cmp(&ata[b][col].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        ata.swap(col, pivot);
        atb.swap(col, pivot);
        let p = ata[col][col];
        assert!(p.abs() > 1e-12, "singular normal equations in polyfit");
        for row in (col + 1)..n {
            let f = ata[row][col] / p;
            // Indexed on purpose: `ata[row]` and `ata[col]` alias the same
            // matrix, which rules out a borrowed iterator over either row.
            #[allow(clippy::needless_range_loop)]
            for k in col..n {
                ata[row][k] -= f * ata[col][k];
            }
            atb[row] -= f * atb[col];
        }
    }
    let mut c = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut s = atb[row];
        for k in (row + 1)..n {
            s -= ata[row][k] * c[k];
        }
        c[row] = s / ata[row][row];
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_polynomial() {
        let p = TempPolynomial::constant(0.5);
        assert!((p.eval(-40.0).to_f64() - 0.5).abs() < 1e-6);
        assert!((p.eval(125.0).to_f64() - 0.5).abs() < 1e-6);
        assert_eq!(p.degree(), 0);
    }

    #[test]
    fn linear_polynomial_tracks_temperature() {
        // 0.1 per 100 °C slope around 25 °C.
        let p = TempPolynomial::new(&[0.0, 0.1], 25.0, 100.0);
        assert!((p.eval(125.0).to_f64() - 0.1).abs() < 1e-6);
        assert!((p.eval(-75.0).to_f64() + 0.1).abs() < 1e-6);
    }

    #[test]
    fn fixed_matches_float_eval() {
        let p = TempPolynomial::new(&[0.02, -0.05, 0.01], 25.0, 100.0);
        for t in [-40.0, 0.0, 25.0, 85.0, 125.0] {
            let fx = p.eval(t).to_f64();
            let fl = p.eval_f64(t);
            assert!((fx - fl).abs() < 1e-6, "T={t}: {fx} vs {fl}");
        }
    }

    #[test]
    fn identity_compensator_is_transparent() {
        let c = Compensator::identity();
        for v in [-0.9, -0.1, 0.0, 0.4, 0.9] {
            let x = Q15::from_f64(v);
            assert!((c.apply(x).to_f64() - v).abs() < 1e-4, "value {v}");
        }
    }

    #[test]
    fn offset_removal() {
        let mut c = Compensator::new(
            TempPolynomial::new(&[0.1, 0.05], 25.0, 100.0),
            TempPolynomial::constant(1.0),
        );
        c.set_temperature(25.0);
        let y = c.apply(Q15::from_f64(0.1));
        assert!(y.to_f64().abs() < 1e-4, "null not removed: {}", y.to_f64());
        c.set_temperature(125.0);
        let y = c.apply(Q15::from_f64(0.15));
        assert!(
            y.to_f64().abs() < 1e-4,
            "hot null not removed: {}",
            y.to_f64()
        );
    }

    #[test]
    fn gain_correction_scales() {
        let c = Compensator::new(
            TempPolynomial::constant(0.0),
            TempPolynomial::constant(1.25),
        );
        let y = c.apply(Q15::from_f64(0.4));
        assert!((y.to_f64() - 0.5).abs() < 1e-4);
    }

    #[test]
    fn polyfit_recovers_quadratic() {
        let xs: Vec<f64> = (-10..=10).map(|k| k as f64 / 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.3 - 0.2 * x + 0.05 * x * x).collect();
        let c = polyfit(&xs, &ys, 2);
        assert!((c[0] - 0.3).abs() < 1e-9);
        assert!((c[1] + 0.2).abs() < 1e-9);
        assert!((c[2] - 0.05).abs() < 1e-9);
    }

    #[test]
    fn fit_compensation_flattens_null_over_temperature() {
        // Synthetic device: null drifts quadratically with temperature.
        let device_null = |t: f64| 0.01 + 2e-4 * (t - 25.0) / 10.0;
        let meas: Vec<(f64, f64, f64)> = (-4..=8)
            .map(|k| {
                let t = k as f64 * 10.0 + 5.0;
                (t, device_null(t), 1.0)
            })
            .collect();
        let (off, gain) = fit_compensation(&meas, 1, 25.0, 100.0);
        let mut comp = Compensator::new(off, gain);
        for t in [-35.0, 5.0, 45.0, 85.0] {
            comp.set_temperature(t);
            let y = comp.apply(Q15::from_f64(device_null(t)));
            assert!(
                y.to_f64().abs() < 1e-3,
                "residual null at {t}: {}",
                y.to_f64()
            );
        }
    }

    #[test]
    #[should_panic(expected = "more than")]
    fn fit_needs_enough_points() {
        let _ = fit_compensation(&[(25.0, 0.0, 1.0)], 1, 25.0, 100.0);
    }
}
