//! CIC (cascaded integrator–comb) decimator.
//!
//! CIC filters decimate high-rate, low-resolution streams (e.g. an
//! oversampled ADC path) with no multipliers — only adders and registers —
//! which is why they are the first stage of the platform's rate channel when
//! the ADC runs far above the signal band.

use crate::fixed::Q15;
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};

/// N-stage CIC decimator with unity DC gain restored at the output.
///
/// Internal state is 64-bit: for N stages and decimation R the raw DC gain
/// is R^N, which must fit the accumulator; `new` checks this.
#[derive(Debug, Clone)]
pub struct CicDecimator {
    stages: u32,
    factor: u32,
    integrators: Vec<i64>,
    combs: Vec<i64>,
    counter: u32,
    /// Right-shift restoring unity gain when R^N is a power of two, plus a
    /// float correction otherwise.
    gain: f64,
}

impl CicDecimator {
    /// Creates an `stages`-stage CIC decimating by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `stages` or `factor` is zero, or if the worst-case growth
    /// `factor^stages · 2¹⁵` would overflow the 64-bit state.
    #[must_use]
    pub fn new(stages: u32, factor: u32) -> Self {
        assert!(stages > 0, "CIC needs at least one stage");
        assert!(factor > 1, "CIC decimation factor must be at least 2");
        let growth_bits = (factor as f64).log2() * stages as f64 + 16.0;
        assert!(
            growth_bits < 62.0,
            "CIC growth {growth_bits} bits would overflow; reduce stages or factor"
        );
        Self {
            stages,
            factor,
            integrators: vec![0; stages as usize],
            combs: vec![0; stages as usize],
            counter: 0,
            gain: 1.0 / (factor as f64).powi(stages as i32),
        }
    }

    /// Number of integrator/comb stages.
    #[must_use]
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Decimation factor.
    #[must_use]
    pub fn factor(&self) -> u32 {
        self.factor
    }

    /// Feeds one input sample; returns `Some(output)` every `factor`
    /// samples.
    pub fn process(&mut self, x: Q15) -> Option<Q15> {
        // Integrator cascade at the input rate.
        let mut v = x.raw() as i64;
        for acc in &mut self.integrators {
            *acc = acc.wrapping_add(v);
            v = *acc;
        }
        self.counter += 1;
        if self.counter < self.factor {
            return None;
        }
        self.counter = 0;
        // Comb cascade at the output rate (differentiators).
        let mut y = v;
        for prev in &mut self.combs {
            let d = y.wrapping_sub(*prev);
            *prev = y;
            y = d;
        }
        let scaled = (y as f64 * self.gain).round();
        Some(Q15::from_raw(
            scaled.clamp(i32::MIN as f64, i32::MAX as f64) as i32,
        ))
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        self.integrators.fill(0);
        self.combs.fill(0);
        self.counter = 0;
    }

    /// Serializes the integrator/comb registers and decimation phase
    /// (stage count, factor, and gain are configuration).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_i64_slice(&self.integrators);
        w.put_i64_slice(&self.combs);
        w.put_u32(self.counter);
    }

    /// Restores state saved by [`CicDecimator::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] if the register counts do not
    /// match this decimator's stage count or the phase counter is out of
    /// range; propagates other [`SnapshotError`]s on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let integrators = r.take_i64_vec()?;
        let combs = r.take_i64_vec()?;
        if integrators.len() != self.integrators.len() || combs.len() != self.combs.len() {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "CIC snapshot has {}/{} registers, decimator has {} stages",
                    integrators.len(),
                    combs.len(),
                    self.stages
                ),
            });
        }
        let counter = r.take_u32()?;
        if counter >= self.factor {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "CIC phase counter {counter} out of range for factor {}",
                    self.factor
                ),
            });
        }
        self.integrators = integrators;
        self.combs = combs;
        self.counter = counter;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_gain_is_unity() {
        let mut cic = CicDecimator::new(3, 16);
        let mut last = Q15::ZERO;
        for _ in 0..16 * 50 {
            if let Some(y) = cic.process(Q15::from_f64(0.25)) {
                last = y;
            }
        }
        assert!((last.to_f64() - 0.25).abs() < 1e-3, "DC {}", last.to_f64());
    }

    #[test]
    fn output_rate_is_decimated() {
        let mut cic = CicDecimator::new(2, 8);
        let outs = (0..80).filter_map(|_| cic.process(Q15::ONE)).count();
        assert_eq!(outs, 10);
    }

    #[test]
    fn attenuates_high_frequency() {
        let mut cic = CicDecimator::new(3, 16);
        // Input at 0.45 of the input rate — far above the output Nyquist.
        let w = 2.0 * std::f64::consts::PI * 0.45;
        let mut outs = Vec::new();
        for k in 0..16 * 400 {
            let x = Q15::from_f64(0.5 * (w * k as f64).sin());
            if let Some(y) = cic.process(x) {
                outs.push(y.to_f64());
            }
        }
        let tail = &outs[outs.len() / 2..];
        let rms = (tail.iter().map(|v| v * v).sum::<f64>() / tail.len() as f64).sqrt();
        assert!(rms < 0.01, "stopband rms {rms}");
    }

    #[test]
    fn passes_low_frequency() {
        let mut cic = CicDecimator::new(3, 16);
        // Input at 1/1000 of the input rate — deep in the passband.
        let w = 2.0 * std::f64::consts::PI * 0.001;
        let mut outs = Vec::new();
        for k in 0..16 * 2000 {
            let x = Q15::from_f64(0.5 * (w * k as f64).sin());
            if let Some(y) = cic.process(x) {
                outs.push(y.to_f64());
            }
        }
        let tail = &outs[outs.len() / 2..];
        let peak = tail.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!((peak - 0.5).abs() < 0.02, "passband peak {peak}");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut cic = CicDecimator::new(2, 4);
        for _ in 0..10 {
            cic.process(Q15::ONE);
        }
        cic.reset();
        let mut first = None;
        for _ in 0..4 {
            if let Some(y) = cic.process(Q15::ZERO) {
                first = Some(y);
            }
        }
        assert_eq!(first, Some(Q15::ZERO));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn rejects_excessive_growth() {
        let _ = CicDecimator::new(8, 10_000);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_factor_one() {
        let _ = CicDecimator::new(2, 1);
    }
}
