//! Property-based tests of the fixed-point datapath — the arithmetic laws
//! the RTL stand-in must satisfy for any operand, not just the values unit
//! tests pick.

use ascp_dsp::fixed::{Fx, Q15, Q30};
use proptest::prelude::*;

fn any_q15() -> impl Strategy<Value = Q15> {
    any::<i32>().prop_map(Q15::from_raw)
}

proptest! {
    #[test]
    fn add_is_commutative(a in any_q15(), b in any_q15()) {
        prop_assert_eq!(a.sat_add(b), b.sat_add(a));
    }

    #[test]
    fn add_never_wraps(a in any_q15(), b in any_q15()) {
        let sum = a.sat_add(b).to_f64();
        let exact = a.to_f64() + b.to_f64();
        // Saturating add: result equals the exact sum clamped to the range.
        let clamped = exact.clamp(Q15::MIN.to_f64(), Q15::MAX.to_f64());
        prop_assert!((sum - clamped).abs() < 1e-9, "{sum} vs {clamped}");
    }

    #[test]
    fn mul_matches_float_within_lsb(a in -1.0f64..1.0, b in -1.0f64..1.0) {
        let qa = Q15::from_f64(a);
        let qb = Q15::from_f64(b);
        let q = qa.mul(qb).to_f64();
        let exact = qa.to_f64() * qb.to_f64();
        prop_assert!((q - exact).abs() <= 1.0 / 32768.0, "{q} vs {exact}");
    }

    #[test]
    fn mul_commutative(a in any_q15(), b in any_q15()) {
        prop_assert_eq!(a.mul(b), b.mul(a));
    }

    #[test]
    fn round_trip_error_bounded(v in -60000.0f64..60000.0) {
        let q = Q15::from_f64(v);
        prop_assert!((q.to_f64() - v).abs() <= 0.5 / 32768.0 + 1e-12);
    }

    #[test]
    fn neg_is_involutive_except_min(a in any_q15()) {
        prop_assume!(a != Q15::MIN);
        prop_assert_eq!(a.sat_neg().sat_neg(), a);
    }

    #[test]
    fn abs_is_non_negative(a in any_q15()) {
        prop_assert!(a.abs().raw() >= 0);
    }

    #[test]
    fn quantize_is_idempotent(a in any_q15(), bits in 2u32..=32) {
        let once = a.quantize_to(bits);
        prop_assert_eq!(once.quantize_to(bits), once);
    }

    #[test]
    fn quantize_error_bounded(a in any_q15(), bits in 2u32..=31) {
        let q = a.quantize_to(bits);
        // Saturation at the narrower range can clip large values; away from
        // the clip the error is below one step of the reduced resolution.
        let step = 1i64 << (32 - bits);
        let max_mag = (1i64 << (bits - 1)) << (32 - bits);
        if (i64::from(a.raw())).abs() < max_mag - step {
            prop_assert!((i64::from(a.raw()) - i64::from(q.raw())).abs() <= step);
        }
    }

    #[test]
    fn convert_up_then_down_is_identity(a in -30000i32..30000) {
        let v = Q15::from_raw(a);
        let up: Q30 = v.convert();
        // Q15 -> Q30 overflows for |v| >= 2, so stay small.
        prop_assume!(v.to_f64().abs() < 1.9);
        let back: Q15 = up.convert();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn shl_shr_inverse_without_overflow(a in -10000i32..10000, n in 0u32..8) {
        let v = Fx::<15>::from_raw(a);
        prop_assert_eq!(v.shl(n).shr(n), v);
    }

    #[test]
    fn mul_q_matches_mul_for_same_format(a in any_q15(), b in any_q15()) {
        prop_assert_eq!(a.mul_q::<15>(Fx::<15>::from_raw(b.raw())), a.mul(b));
    }
}

mod fir_props {
    use ascp_dsp::fir::{design_lowpass, FirFilter};
    use ascp_dsp::fixed::Q15;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn designed_lowpass_is_bounded_and_stable(
            cutoff in 0.01f64..0.45,
            taps in 3usize..127,
        ) {
            let h = design_lowpass(cutoff, taps);
            // Unity DC gain by construction.
            let dc: f64 = h.iter().sum();
            prop_assert!((dc - 1.0).abs() < 1e-9);
            // FIR output bounded by the L1 norm of the coefficients.
            let l1: f64 = h.iter().map(|c| c.abs()).sum();
            let mut f = FirFilter::from_coeffs(&h);
            let mut peak = 0.0f64;
            for k in 0..4 * taps {
                let x = if k % 2 == 0 { Q15::from_f64(0.9) } else { Q15::from_f64(-0.9) };
                peak = peak.max(f.process(x).to_f64().abs());
            }
            prop_assert!(peak <= 0.9 * l1 + 1e-3, "peak {peak} vs L1 {l1}");
        }
    }
}

mod cordic_props {
    use ascp_dsp::cordic::{rotate, to_polar};
    use ascp_dsp::fixed::Q15;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn polar_magnitude_matches_hypot(i in -0.7f64..0.7, q in -0.7f64..0.7) {
            let p = to_polar(Q15::from_f64(i), Q15::from_f64(q));
            let expect = i.hypot(q);
            prop_assert!((p.magnitude.to_f64() - expect).abs() < 3e-3,
                "mag {} vs {expect}", p.magnitude.to_f64());
        }

        #[test]
        fn rotation_preserves_magnitude(
            i in -0.6f64..0.6,
            q in -0.6f64..0.6,
            angle in -3.1f64..3.1,
        ) {
            let (x, y) = rotate(Q15::from_f64(i), Q15::from_f64(q), angle);
            let before = i.hypot(q);
            let after = x.to_f64().hypot(y.to_f64());
            prop_assert!((after - before).abs() < 4e-3, "{before} -> {after}");
        }
    }
}
