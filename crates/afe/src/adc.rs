//! SAR analog-to-digital converter model.
//!
//! The paper's AFE performs "signal acquisition by means of SAR ADCs,
//! amplifiers and basic filters" (§4.2). This model captures the behaviour
//! the conditioning chain actually sees: quantization at a programmable
//! resolution (a platform knob — "number of ADC bits", §3), integral
//! nonlinearity (smooth bow), differential nonlinearity (per-code, seeded),
//! input-referred noise, offset/gain error, and hard clipping at the rails.

use ascp_dsp::fixed::Q15;
use ascp_sim::noise::{WhiteLanes, WhiteNoise};
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};
use ascp_sim::units::Volts;

/// SAR ADC configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdcConfig {
    /// Resolution in bits (8..=16) — digitally programmable on the platform.
    pub bits: u32,
    /// Differential full-scale input: codes span ±`vref`.
    pub vref: Volts,
    /// Input-referred RMS noise (volts).
    pub noise_rms: f64,
    /// Peak integral nonlinearity in LSB (bow shape).
    pub inl_lsb: f64,
    /// RMS differential nonlinearity in LSB.
    pub dnl_lsb: f64,
    /// Offset error in volts.
    pub offset: Volts,
    /// Gain error (1.0 = ideal).
    pub gain: f64,
    /// Seed for noise and DNL pattern.
    pub seed: u64,
}

impl Default for AdcConfig {
    /// A competent automotive 12-bit SAR: 0.5 LSB INL, 0.3 LSB DNL, small
    /// thermal noise.
    fn default() -> Self {
        Self {
            bits: 12,
            vref: Volts(2.5),
            noise_rms: 150.0e-6,
            inl_lsb: 0.5,
            dnl_lsb: 0.3,
            offset: Volts(0.0),
            gain: 1.0,
            seed: 0xadc0,
        }
    }
}

impl AdcConfig {
    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if !(8..=16).contains(&self.bits) {
            return Err(format!("ADC bits {} outside 8..=16", self.bits));
        }
        if !(self.vref.0 > 0.0) {
            return Err("vref must be positive".into());
        }
        if self.noise_rms < 0.0 || self.inl_lsb < 0.0 || self.dnl_lsb < 0.0 {
            return Err("noise/INL/DNL must be non-negative".into());
        }
        if !(self.gain > 0.0) {
            return Err("gain must be positive".into());
        }
        Ok(())
    }
}

/// An injectable converter fault (see `ascp_sim::fault`): the physical
/// failure modes a SAR exhibits in the field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdcFault {
    /// One bit of the offset-binary output code stuck at a level
    /// (metallization short on the capacitor DAC).
    StuckBit {
        /// Bit index, 0 = LSB.
        bit: u32,
        /// Stuck level.
        value: bool,
    },
    /// Output frozen at one two's-complement code (sample/hold failure).
    StuckCode {
        /// Frozen code.
        code: i32,
    },
    /// Input overdrive: the signal reaching the comparator is scaled by
    /// `gain` (> 1 clips at the rails).
    Overload {
        /// Overdrive factor.
        gain: f64,
    },
}

/// SAR ADC instance.
#[derive(Debug, Clone)]
pub struct SarAdc {
    config: AdcConfig,
    noise: WhiteNoise,
    /// Per-code DNL offsets in LSB, generated once from the seed (the
    /// capacitor-mismatch pattern of a physical part).
    dnl: Vec<f64>,
    conversions: u64,
    clips: u64,
    /// Active injected fault, if any.
    fault: Option<AdcFault>,
    /// Reference scale factor (1.0 nominal). A drooped reference shrinks
    /// the full scale, so codes grow by `1/ref_scale` — the ratiometric
    /// signature a supervisor can catch.
    ref_scale: f64,
}

impl SarAdc {
    /// Builds an ADC.
    ///
    /// # Panics
    ///
    /// Panics if `config.validate()` fails.
    #[must_use]
    pub fn new(config: AdcConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid ADC config: {e}");
        }
        let codes = 1usize << config.bits;
        let mut dnl_gen = WhiteNoise::new(config.dnl_lsb, config.seed ^ 0xd41);
        let dnl = (0..codes).map(|_| dnl_gen.sample()).collect();
        Self {
            config,
            noise: WhiteNoise::new(config.noise_rms, config.seed),
            dnl,
            conversions: 0,
            clips: 0,
            fault: None,
            ref_scale: 1.0,
        }
    }

    /// Installs (or with `None` clears) an injected fault.
    pub fn set_fault(&mut self, fault: Option<AdcFault>) {
        self.fault = fault;
    }

    /// The active injected fault.
    #[must_use]
    pub fn fault(&self) -> Option<AdcFault> {
        self.fault
    }

    /// Scales the conversion reference (1.0 nominal; 0.9 models a −10%
    /// droop of the shared bandgap).
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is positive and finite.
    pub fn set_ref_scale(&mut self, scale: f64) {
        assert!(scale.is_finite() && scale > 0.0, "ref scale {scale}");
        self.ref_scale = scale;
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &AdcConfig {
        &self.config
    }

    /// One LSB in volts.
    #[must_use]
    pub fn lsb(&self) -> f64 {
        2.0 * self.config.vref.0 / (1u64 << self.config.bits) as f64
    }

    /// Total conversions performed (read back by the monitor CPU).
    #[must_use]
    pub fn conversions(&self) -> u64 {
        self.conversions
    }

    /// Conversions that hit a rail (signal overload; telemetry reads this).
    #[must_use]
    pub fn clips(&self) -> u64 {
        self.clips
    }

    /// Converts a differential input voltage to a signed code in
    /// `−2^(bits−1) ..= 2^(bits−1)−1`.
    pub fn convert(&mut self, input: Volts) -> i32 {
        self.conversions += 1;
        let c = &self.config;
        let half = (1i64 << (c.bits - 1)) as f64;
        // Offset, gain error, thermal noise.
        let mut v = (input.0 + c.offset.0) * c.gain + self.noise.sample();
        if let Some(AdcFault::Overload { gain }) = self.fault {
            v *= gain;
        }
        // A drooped reference shrinks the comparison full scale.
        let vref = c.vref.0 * self.ref_scale;
        // INL bow: peak at mid-scale, zero at the ends.
        let u = (v / vref).clamp(-1.0, 1.0);
        v += c.inl_lsb * (1.0 - u * u) * self.lsb();
        let ideal = (v / vref) * half;
        let mut code = ideal.round();
        // DNL: perturb the decision by the code's mismatch.
        let idx = (code + half) as isize;
        if idx >= 0 && (idx as usize) < self.dnl.len() {
            code = (ideal + self.dnl[idx as usize]).round();
        }
        if code < -half || code > half - 1.0 {
            self.clips += 1;
        }
        let mut out = code.clamp(-half, half - 1.0) as i32;
        match self.fault {
            Some(AdcFault::StuckCode { code }) => {
                out = code.clamp(-(half as i32), half as i32 - 1);
            }
            Some(AdcFault::StuckBit { bit, value }) if bit < c.bits => {
                // Apply to the offset-binary code the SAR actually emits.
                let mut raw = (out + half as i32) as u32;
                if value {
                    raw |= 1 << bit;
                } else {
                    raw &= !(1 << bit);
                }
                out = raw as i32 - half as i32;
            }
            _ => {}
        }
        out
    }

    /// Converts and maps into Q15 (left-justified into the 16-bit sample
    /// format regardless of resolution, as the RTL bus does).
    pub fn convert_q15(&mut self, input: Volts) -> Q15 {
        let code = self.convert(input);
        Q15::from_raw(code << (15 - (self.config.bits - 1)))
    }

    /// The inverse ideal mapping (for verification): code → volts.
    #[must_use]
    pub fn code_to_volts(&self, code: i32) -> Volts {
        let half = (1i64 << (self.config.bits - 1)) as f64;
        Volts(code as f64 / half * self.config.vref.0)
    }

    /// Serializes the converter state: noise generator, the seeded DNL
    /// pattern (saved raw so a restored part keeps its mismatch even if the
    /// generation recipe changes), counters, injected fault, and reference
    /// scale.
    pub fn save_state(&self, w: &mut StateWriter) {
        self.noise.save_state(w);
        w.put_f64_slice(&self.dnl);
        w.put_u64(self.conversions);
        w.put_u64(self.clips);
        match self.fault {
            None => w.put_u8(0),
            Some(AdcFault::StuckBit { bit, value }) => {
                w.put_u8(1);
                w.put_u32(bit);
                w.put_bool(value);
            }
            Some(AdcFault::StuckCode { code }) => {
                w.put_u8(2);
                w.put_i32(code);
            }
            Some(AdcFault::Overload { gain }) => {
                w.put_u8(3);
                w.put_f64(gain);
            }
        }
        w.put_f64(self.ref_scale);
    }

    /// Restores state saved by [`SarAdc::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] if the DNL table length does not
    /// match this converter's resolution, the fault tag is unknown, or the
    /// reference scale is not physical; propagates other [`SnapshotError`]s
    /// on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.noise.load_state(r)?;
        let dnl = r.take_f64_vec()?;
        if dnl.len() != self.dnl.len() {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "ADC DNL table of {} codes in snapshot, converter has {}",
                    dnl.len(),
                    self.dnl.len()
                ),
            });
        }
        self.conversions = r.take_u64()?;
        self.clips = r.take_u64()?;
        self.fault = match r.take_u8()? {
            0 => None,
            1 => Some(AdcFault::StuckBit {
                bit: r.take_u32()?,
                value: r.take_bool()?,
            }),
            2 => Some(AdcFault::StuckCode {
                code: r.take_i32()?,
            }),
            3 => Some(AdcFault::Overload {
                gain: r.take_f64()?,
            }),
            t => {
                return Err(SnapshotError::Corrupt {
                    context: format!("unknown ADC fault tag {t}"),
                });
            }
        };
        let ref_scale = r.take_f64()?;
        if !(ref_scale.is_finite() && ref_scale > 0.0) {
            return Err(SnapshotError::Corrupt {
                context: format!("ADC ref scale {ref_scale} not physical"),
            });
        }
        self.dnl = dnl;
        self.ref_scale = ref_scale;
        Ok(())
    }
}

/// Lane-parallel SAR ADC kernel: batched thermal-noise draws plus the
/// per-lane conversion pipeline of [`SarAdc::convert_q15`], expression for
/// expression (INL bow, seeded DNL lookup, clip accounting,
/// left-justification into Q15).
///
/// Extraction refuses converters with an active injected fault — faulted
/// scenarios take the scalar path, keeping the fault logic in one place.
#[derive(Debug, Clone)]
pub struct AdcLanes {
    half: Vec<f64>,
    offset: Vec<f64>,
    gain: Vec<f64>,
    inl_lsb: Vec<f64>,
    lsb: Vec<f64>,
    vref_eff: Vec<f64>,
    shift: Vec<u32>,
    /// Per-lane seeded DNL tables, cloned once at extraction.
    dnl: Vec<Vec<f64>>,
    conversions: Vec<u64>,
    clips: Vec<u64>,
    noise: WhiteLanes,
    draw: Vec<f64>,
    /// Scratch: pre-DNL fractional codes between the two convert passes.
    ideal: Vec<f64>,
}

impl AdcLanes {
    /// Captures N converters for lockstep conversion.
    ///
    /// Returns `None` if any converter has an active fault or the noise
    /// generators are not phase-uniform.
    pub fn extract<'a>(adcs: impl Iterator<Item = &'a SarAdc>) -> Option<Self> {
        let cs: Vec<&SarAdc> = adcs.collect();
        if cs.iter().any(|a| a.fault.is_some()) {
            return None;
        }
        let noise = WhiteLanes::extract(cs.iter().map(|a| &a.noise))?;
        let n = cs.len();
        let mut lanes = Self {
            half: Vec::with_capacity(n),
            offset: Vec::with_capacity(n),
            gain: Vec::with_capacity(n),
            inl_lsb: Vec::with_capacity(n),
            lsb: Vec::with_capacity(n),
            vref_eff: Vec::with_capacity(n),
            shift: Vec::with_capacity(n),
            dnl: Vec::with_capacity(n),
            conversions: Vec::with_capacity(n),
            clips: Vec::with_capacity(n),
            noise,
            draw: vec![0.0; n],
            ideal: vec![0.0; n],
        };
        for a in &cs {
            let c = &a.config;
            lanes.half.push((1i64 << (c.bits - 1)) as f64);
            lanes.offset.push(c.offset.0);
            lanes.gain.push(c.gain);
            lanes.inl_lsb.push(c.inl_lsb);
            lanes.lsb.push(a.lsb());
            lanes.vref_eff.push(c.vref.0 * a.ref_scale);
            lanes.shift.push(15 - (c.bits - 1));
            lanes.dnl.push(a.dnl.clone());
            lanes.conversions.push(a.conversions);
            lanes.clips.push(a.clips);
        }
        Some(lanes)
    }

    /// Cheaply re-synchronizes an extracted kernel with its source
    /// converters, skipping the per-lane DNL table clone (the expensive
    /// part of [`AdcLanes::extract`] — up to `2^bits` entries per lane).
    ///
    /// Sound because the DNL table is a pure function of the converter's
    /// seeded configuration: as long as the resolution is unchanged, the
    /// tables captured at extraction are still exact. Returns `false` —
    /// and leaves `self` unmodified — when the caller must fall back to a
    /// full re-extraction: a converter was rebuilt at a different
    /// resolution, carries an active fault, or the noise generators lost
    /// phase uniformity.
    pub fn refresh<'a>(&mut self, adcs: impl Iterator<Item = &'a SarAdc>) -> bool {
        let cs: Vec<&SarAdc> = adcs.collect();
        if cs.len() != self.half.len() || cs.iter().any(|a| a.fault.is_some()) {
            return false;
        }
        if cs
            .iter()
            .zip(&self.dnl)
            .any(|(a, dnl)| dnl.len() != a.dnl.len())
        {
            return false;
        }
        let Some(noise) = WhiteLanes::extract(cs.iter().map(|a| &a.noise)) else {
            return false;
        };
        self.noise = noise;
        for (l, a) in cs.into_iter().enumerate() {
            let c = &a.config;
            self.half[l] = (1i64 << (c.bits - 1)) as f64;
            self.offset[l] = c.offset.0;
            self.gain[l] = c.gain;
            self.inl_lsb[l] = c.inl_lsb;
            self.lsb[l] = a.lsb();
            self.vref_eff[l] = c.vref.0 * a.ref_scale;
            self.shift[l] = 15 - (c.bits - 1);
            self.conversions[l] = a.conversions;
            self.clips[l] = a.clips;
        }
        true
    }

    /// Writes noise state and the conversion/clip counters back.
    pub fn restore<'a>(&self, adcs: impl Iterator<Item = &'a mut SarAdc>) {
        let mut cs: Vec<&mut SarAdc> = adcs.collect();
        self.noise.restore(cs.iter_mut().map(|a| &mut a.noise));
        for (l, a) in cs.into_iter().enumerate() {
            a.conversions = self.conversions[l];
            a.clips = self.clips[l];
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.half.len()
    }

    /// Converts one voltage per lane into left-justified Q15 raw codes.
    #[inline]
    pub fn convert_q15(&mut self, input: &[f64], out: &mut [i32]) {
        let n = self.half.len();
        self.noise.sample(&mut self.draw);
        // Pass 1 (auto-vectorizes): the analog front — offset, gain,
        // thermal noise, INL bow — down to the ideal fractional code.
        for (l, &x) in input.iter().enumerate().take(n) {
            let mut v = (x + self.offset[l]) * self.gain[l] + self.draw[l];
            let vref = self.vref_eff[l];
            let u = (v / vref).clamp(-1.0, 1.0);
            v += self.inl_lsb[l] * (1.0 - u * u) * self.lsb[l];
            self.ideal[l] = (v / vref) * self.half[l];
        }
        // Pass 2 (scalar): decision rounding plus the seeded per-code DNL
        // perturbation — `round` (half away from zero) and the data-
        // dependent table gather have no AVX2 lowering, so isolating them
        // here is what lets pass 1 vectorize.
        for (l, o) in out.iter_mut().enumerate().take(n) {
            self.conversions[l] += 1;
            let half = self.half[l];
            let ideal = self.ideal[l];
            let mut code = ideal.round();
            let idx = (code + half) as isize;
            if idx >= 0 && (idx as usize) < self.dnl[l].len() {
                code = (ideal + self.dnl[l][idx as usize]).round();
            }
            if code < -half || code > half - 1.0 {
                self.clips[l] += 1;
            }
            let code = code.clamp(-half, half - 1.0) as i32;
            *o = code << self.shift[l];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_config(bits: u32) -> AdcConfig {
        AdcConfig {
            bits,
            noise_rms: 0.0,
            inl_lsb: 0.0,
            dnl_lsb: 0.0,
            ..AdcConfig::default()
        }
    }

    #[test]
    fn ideal_transfer_is_linear() {
        let mut adc = SarAdc::new(quiet_config(12));
        for mv in (-2400..=2400).step_by(300) {
            let v = mv as f64 / 1000.0;
            let code = adc.convert(Volts(v));
            let expect = (v / 2.5 * 2048.0).round();
            assert!(
                (code as f64 - expect).abs() <= 1.0,
                "{v} V -> {code}, expected {expect}"
            );
        }
    }

    #[test]
    fn clips_at_rails() {
        let mut adc = SarAdc::new(quiet_config(12));
        assert_eq!(adc.convert(Volts(10.0)), 2047);
        assert_eq!(adc.convert(Volts(-10.0)), -2048);
        assert_eq!(adc.clips(), 2);
        adc.convert(Volts(0.0));
        assert_eq!(adc.clips(), 2, "in-range conversion must not count");
    }

    #[test]
    fn q15_left_justification() {
        let mut adc = SarAdc::new(quiet_config(12));
        let q = adc.convert_q15(Volts(2.5));
        // Full scale positive: 2047 << 4 = 32752.
        assert_eq!(q.raw(), 2047 << 4);
        let q = adc.convert_q15(Volts(1.25));
        assert!((q.to_f64() - 0.5).abs() < 0.002, "got {}", q.to_f64());
    }

    #[test]
    fn resolution_changes_step_size() {
        let mut adc8 = SarAdc::new(quiet_config(8));
        let mut adc16 = SarAdc::new(quiet_config(16));
        // A voltage below the 8-bit LSB but above the 16-bit LSB.
        let v = Volts(adc8.lsb() * 0.3);
        assert_eq!(adc8.convert(v), 0);
        assert!(adc16.convert(v) > 0);
    }

    #[test]
    fn noise_dithers_a_fixed_input() {
        let mut adc = SarAdc::new(AdcConfig {
            noise_rms: 3.0e-3,
            ..quiet_config(12)
        });
        let codes: Vec<i32> = (0..200).map(|_| adc.convert(Volts(0.1))).collect();
        let distinct: std::collections::HashSet<_> = codes.iter().collect();
        assert!(distinct.len() > 1, "noise not visible");
    }

    #[test]
    fn inl_bows_mid_scale() {
        let mut ideal = SarAdc::new(quiet_config(14));
        let mut bowed = SarAdc::new(AdcConfig {
            inl_lsb: 4.0,
            ..quiet_config(14)
        });
        let mid = Volts(0.0);
        let d_mid = bowed.convert(mid) - ideal.convert(mid);
        assert!(d_mid >= 3, "INL bow missing at mid-scale: {d_mid}");
        let edge = Volts(2.45);
        let d_edge = bowed.convert(edge) - ideal.convert(edge);
        assert!(d_edge < d_mid, "INL should shrink toward the rails");
    }

    #[test]
    fn dnl_pattern_is_deterministic() {
        let mut a = SarAdc::new(AdcConfig::default());
        let mut b = SarAdc::new(AdcConfig::default());
        for mv in -1000..1000 {
            let v = Volts(mv as f64 / 500.0);
            assert_eq!(a.convert(v), b.convert(v));
        }
    }

    #[test]
    fn conversion_counter() {
        let mut adc = SarAdc::new(quiet_config(10));
        for _ in 0..5 {
            adc.convert(Volts(0.0));
        }
        assert_eq!(adc.conversions(), 5);
    }

    #[test]
    fn code_to_volts_round_trip() {
        let mut adc = SarAdc::new(quiet_config(12));
        let code = adc.convert(Volts(1.0));
        let v = adc.code_to_volts(code);
        assert!((v.0 - 1.0).abs() < 2.0 * adc.lsb());
    }

    #[test]
    fn stuck_code_freezes_output() {
        let mut adc = SarAdc::new(quiet_config(12));
        adc.set_fault(Some(AdcFault::StuckCode { code: 123 }));
        assert_eq!(adc.convert(Volts(2.0)), 123);
        assert_eq!(adc.convert(Volts(-2.0)), 123);
        adc.set_fault(None);
        assert!(adc.convert(Volts(2.0)) > 1000, "fault cleared");
    }

    #[test]
    fn stuck_bit_forces_the_bit() {
        let mut adc = SarAdc::new(quiet_config(12));
        adc.set_fault(Some(AdcFault::StuckBit {
            bit: 10,
            value: true,
        }));
        for mv in [-2000, -500, 0, 500, 2000] {
            let code = adc.convert(Volts(mv as f64 / 1000.0));
            let raw = (code + 2048) as u32;
            assert_eq!(raw & (1 << 10), 1 << 10, "bit 10 must read high");
        }
    }

    #[test]
    fn overload_clips_mid_scale_inputs() {
        let mut adc = SarAdc::new(quiet_config(12));
        assert_eq!(adc.clips(), 0);
        adc.set_fault(Some(AdcFault::Overload { gain: 8.0 }));
        let code = adc.convert(Volts(1.0));
        assert_eq!(code, 2047, "overdriven input rails");
        assert_eq!(adc.clips(), 1);
    }

    #[test]
    fn reference_droop_inflates_codes() {
        let mut adc = SarAdc::new(quiet_config(12));
        let nominal = adc.convert(Volts(1.0));
        adc.set_ref_scale(0.9);
        let drooped = adc.convert(Volts(1.0));
        let ratio = drooped as f64 / nominal as f64;
        assert!((ratio - 1.0 / 0.9).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "outside 8..=16")]
    fn rejects_out_of_range_bits() {
        let _ = SarAdc::new(AdcConfig {
            bits: 20,
            ..AdcConfig::default()
        });
    }

    #[test]
    fn adc_lanes_match_scalar_bit_for_bit() {
        // Mixed resolutions and error terms per lane, clipping included.
        let mut scalars: Vec<SarAdc> = (0..6)
            .map(|i| {
                SarAdc::new(AdcConfig {
                    bits: 10 + (i as u32 % 4) * 2,
                    inl_lsb: 0.5 * i as f64,
                    seed: 0xadc0 ^ (i as u64) << 5,
                    ..AdcConfig::default()
                })
            })
            .collect();
        let mut lanes = AdcLanes::extract(scalars.iter()).expect("no faults");
        let mut reference = scalars.clone();
        let mut input = vec![0.0; 6];
        let mut out = vec![0i32; 6];
        for k in 0..500u64 {
            for (l, v) in input.iter_mut().enumerate() {
                // Sweep through the range, hitting the rails sometimes.
                *v = 3.0 * (0.13 * (k as f64 + l as f64)).sin();
            }
            lanes.convert_q15(&input, &mut out);
            for (l, a) in reference.iter_mut().enumerate() {
                assert_eq!(
                    a.convert_q15(Volts(input[l])).raw(),
                    out[l],
                    "lane {l} tick {k}"
                );
            }
        }
        lanes.restore(scalars.iter_mut());
        for (a, b) in scalars.iter_mut().zip(reference.iter_mut()) {
            assert_eq!(a.convert_q15(Volts(0.5)), b.convert_q15(Volts(0.5)));
            assert_eq!(a.conversions(), b.conversions());
            assert_eq!(a.clips(), b.clips());
        }
    }

    #[test]
    fn adc_lanes_reject_active_faults() {
        let mut adc = SarAdc::new(AdcConfig::default());
        adc.set_fault(Some(AdcFault::StuckCode { code: 7 }));
        assert!(AdcLanes::extract(std::iter::once(&adc)).is_none());
    }
}
