//! Digital-to-analog converter model.
//!
//! The platform "drives the sensor's electrodes through couples of DACs for
//! each loop" (§4.2): primary drive, secondary (force-rebalance) drive, and
//! the analog rate output that the datasheet tables characterize
//! (5 mV/°/s around a 2.5 V null).

use ascp_dsp::fixed::Q15;
use ascp_sim::noise::{WhiteLanes, WhiteNoise};
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};
use ascp_sim::units::Volts;

/// DAC configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DacConfig {
    /// Resolution in bits (8..=16).
    pub bits: u32,
    /// Full-scale output: codes span ±`vref` around `midscale`.
    pub vref: Volts,
    /// Output common-mode (e.g. 2.5 V for the rate output).
    pub midscale: Volts,
    /// Output noise RMS (volts).
    pub noise_rms: f64,
    /// Gain error (1.0 = ideal).
    pub gain: f64,
    /// Offset error (volts).
    pub offset: Volts,
    /// Noise seed.
    pub seed: u64,
}

impl Default for DacConfig {
    fn default() -> Self {
        Self {
            bits: 12,
            vref: Volts(2.5),
            midscale: Volts(0.0),
            noise_rms: 100.0e-6,
            gain: 1.0,
            offset: Volts(0.0),
            seed: 0xdac0,
        }
    }
}

impl DacConfig {
    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if !(8..=16).contains(&self.bits) {
            return Err(format!("DAC bits {} outside 8..=16", self.bits));
        }
        if !(self.vref.0 > 0.0) {
            return Err("vref must be positive".into());
        }
        if self.noise_rms < 0.0 {
            return Err("noise must be non-negative".into());
        }
        if !(self.gain > 0.0) {
            return Err("gain must be positive".into());
        }
        Ok(())
    }
}

/// DAC instance (zero-order hold: output persists between updates).
#[derive(Debug, Clone)]
pub struct Dac {
    config: DacConfig,
    noise: WhiteNoise,
    held: Volts,
    updates: u64,
    /// Reference scale factor (1.0 nominal): a drooped bandgap shrinks the
    /// output full scale ratiometrically.
    ref_scale: f64,
}

impl Dac {
    /// Builds a DAC holding mid-scale.
    ///
    /// # Panics
    ///
    /// Panics if `config.validate()` fails.
    #[must_use]
    pub fn new(config: DacConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid DAC config: {e}");
        }
        Self {
            config,
            noise: WhiteNoise::new(config.noise_rms, config.seed),
            held: config.midscale,
            updates: 0,
            ref_scale: 1.0,
        }
    }

    /// Scales the output reference (1.0 nominal; 0.9 models a −10% droop
    /// of the shared bandgap). Takes effect on the next write.
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is positive and finite.
    pub fn set_ref_scale(&mut self, scale: f64) {
        assert!(scale.is_finite() && scale > 0.0, "ref scale {scale}");
        self.ref_scale = scale;
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &DacConfig {
        &self.config
    }

    /// One LSB in volts.
    #[must_use]
    pub fn lsb(&self) -> f64 {
        2.0 * self.config.vref.0 / (1u64 << self.config.bits) as f64
    }

    /// Writes a signed code (`−2^(bits−1) ..= 2^(bits−1)−1`, clamped) and
    /// updates the held output.
    pub fn write(&mut self, code: i32) -> Volts {
        self.updates += 1;
        let c = &self.config;
        let half = (1i64 << (c.bits - 1)) as f64;
        let code = (code as f64).clamp(-half, half - 1.0);
        let v = code / half * c.vref.0 * self.ref_scale * c.gain + c.offset.0 + c.midscale.0;
        self.held = Volts(v);
        self.output()
    }

    /// Writes a Q15 sample, quantizing into the DAC resolution (the RTL
    /// takes the top `bits` of the 16-bit sample bus).
    pub fn write_q15(&mut self, sample: Q15) -> Volts {
        let code = sample.raw() >> (15 - (self.config.bits - 1));
        self.write(code)
    }

    /// Current output including noise (read at the analog rate).
    pub fn output(&mut self) -> Volts {
        Volts(self.held.0 + self.noise.sample())
    }

    /// Held (noise-free) value, for verification.
    #[must_use]
    pub fn held(&self) -> Volts {
        self.held
    }

    /// Update counter (read back by the monitor CPU).
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Serializes the held output, update counter, noise generator, and
    /// reference scale.
    pub fn save_state(&self, w: &mut StateWriter) {
        self.noise.save_state(w);
        w.put_f64(self.held.0);
        w.put_u64(self.updates);
        w.put_f64(self.ref_scale);
    }

    /// Restores state saved by [`Dac::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] if the reference scale is not
    /// physical; propagates other [`SnapshotError`]s on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.noise.load_state(r)?;
        self.held = Volts(r.take_f64()?);
        self.updates = r.take_u64()?;
        let ref_scale = r.take_f64()?;
        if !(ref_scale.is_finite() && ref_scale > 0.0) {
            return Err(SnapshotError::Corrupt {
                context: format!("DAC ref scale {ref_scale} not physical"),
            });
        }
        self.ref_scale = ref_scale;
        Ok(())
    }
}

/// Lane-parallel DAC kernel: batched output-noise draws plus the per-lane
/// code → volts mapping of [`Dac::write_q15`], expression for expression.
#[derive(Debug, Clone)]
pub struct DacLanes {
    half: Vec<f64>,
    vref: Vec<f64>,
    ref_scale: Vec<f64>,
    gain: Vec<f64>,
    offset: Vec<f64>,
    midscale: Vec<f64>,
    shift: Vec<u32>,
    held: Vec<f64>,
    updates: Vec<u64>,
    noise: WhiteLanes,
    draw: Vec<f64>,
}

impl DacLanes {
    /// Captures N DACs for lockstep writes.
    ///
    /// Returns `None` if the noise generators are not phase-uniform.
    pub fn extract<'a>(dacs: impl Iterator<Item = &'a Dac>) -> Option<Self> {
        let ds: Vec<&Dac> = dacs.collect();
        let noise = WhiteLanes::extract(ds.iter().map(|d| &d.noise))?;
        let n = ds.len();
        let mut lanes = Self {
            half: Vec::with_capacity(n),
            vref: Vec::with_capacity(n),
            ref_scale: Vec::with_capacity(n),
            gain: Vec::with_capacity(n),
            offset: Vec::with_capacity(n),
            midscale: Vec::with_capacity(n),
            shift: Vec::with_capacity(n),
            held: Vec::with_capacity(n),
            updates: Vec::with_capacity(n),
            noise,
            draw: vec![0.0; n],
        };
        for d in &ds {
            let c = &d.config;
            lanes.half.push((1i64 << (c.bits - 1)) as f64);
            lanes.vref.push(c.vref.0);
            lanes.ref_scale.push(d.ref_scale);
            lanes.gain.push(c.gain);
            lanes.offset.push(c.offset.0);
            lanes.midscale.push(c.midscale.0);
            lanes.shift.push(15 - (c.bits - 1));
            lanes.held.push(d.held.0);
            lanes.updates.push(d.updates);
        }
        Some(lanes)
    }

    /// Writes held outputs, update counters, and noise state back.
    pub fn restore<'a>(&self, dacs: impl Iterator<Item = &'a mut Dac>) {
        let mut ds: Vec<&mut Dac> = dacs.collect();
        self.noise.restore(ds.iter_mut().map(|d| &mut d.noise));
        for (l, d) in ds.into_iter().enumerate() {
            d.held = Volts(self.held[l]);
            d.updates = self.updates[l];
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.half.len()
    }

    /// Held (noiseless) output per lane — [`Dac::held`] across the fleet.
    #[must_use]
    pub fn held_outputs(&self) -> &[f64] {
        &self.held
    }

    /// Mid-scale offset per lane (the rate-output null voltage).
    #[must_use]
    pub fn midscales(&self) -> &[f64] {
        &self.midscale
    }

    /// Writes one Q15 raw sample per lane; the noisy analog output lands in
    /// `out[l]`.
    #[inline]
    pub fn write_q15(&mut self, raw: &[i32], out: &mut [f64]) {
        let n = self.half.len();
        self.noise.sample(&mut self.draw);
        for l in 0..n {
            self.updates[l] += 1;
            let half = self.half[l];
            let code = raw[l] >> self.shift[l];
            let code = (code as f64).clamp(-half, half - 1.0);
            let v = code / half * self.vref[l] * self.ref_scale[l] * self.gain[l]
                + self.offset[l]
                + self.midscale[l];
            self.held[l] = v;
            out[l] = v + self.draw[l];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(bits: u32) -> DacConfig {
        DacConfig {
            bits,
            noise_rms: 0.0,
            ..DacConfig::default()
        }
    }

    #[test]
    fn transfer_is_linear() {
        let mut dac = Dac::new(quiet(12));
        assert!((dac.write(0).0).abs() < 1e-12);
        assert!((dac.write(1024).0 - 1.25).abs() < 1e-9);
        assert!((dac.write(-2048).0 + 2.5).abs() < 1e-9);
    }

    #[test]
    fn clamps_codes() {
        let mut dac = Dac::new(quiet(12));
        let hi = dac.write(100_000);
        assert!((hi.0 - (2047.0 / 2048.0) * 2.5).abs() < 1e-9);
    }

    #[test]
    fn midscale_offset_applies() {
        let mut dac = Dac::new(DacConfig {
            midscale: Volts(2.5),
            ..quiet(12)
        });
        assert!((dac.write(0).0 - 2.5).abs() < 1e-12);
    }

    #[test]
    fn q15_write_uses_top_bits() {
        let mut dac = Dac::new(quiet(12));
        let v = dac.write_q15(Q15::from_f64(0.5));
        assert!((v.0 - 1.25).abs() < 2.0 * dac.lsb(), "got {}", v.0);
    }

    #[test]
    fn zero_order_hold_persists() {
        let mut dac = Dac::new(quiet(10));
        dac.write(100);
        let a = dac.output();
        let b = dac.output();
        assert_eq!(a, b);
        assert_eq!(dac.held(), a);
    }

    #[test]
    fn noise_varies_output() {
        let mut dac = Dac::new(DacConfig {
            noise_rms: 1.0e-3,
            ..quiet(12)
        });
        dac.write(0);
        let a = dac.output();
        let b = dac.output();
        assert_ne!(a, b);
    }

    #[test]
    fn gain_and_offset_errors() {
        let mut dac = Dac::new(DacConfig {
            gain: 1.01,
            offset: Volts(0.002),
            ..quiet(12)
        });
        let v = dac.write(1024);
        assert!((v.0 - (1.25 * 1.01 + 0.002)).abs() < 1e-9);
    }

    #[test]
    fn update_counter() {
        let mut dac = Dac::new(quiet(8));
        for k in 0..7 {
            dac.write(k);
        }
        assert_eq!(dac.updates(), 7);
    }

    #[test]
    fn ref_droop_shrinks_full_scale() {
        let mut dac = Dac::new(quiet(12));
        let nominal = dac.write(1024);
        dac.set_ref_scale(0.9);
        let drooped = dac.write(1024);
        assert!((drooped.0 / nominal.0 - 0.9).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "outside 8..=16")]
    fn rejects_bad_bits() {
        let _ = Dac::new(DacConfig {
            bits: 4,
            ..DacConfig::default()
        });
    }

    #[test]
    fn dac_lanes_match_scalar_bit_for_bit() {
        let mut scalars: Vec<Dac> = (0..5)
            .map(|i| {
                Dac::new(DacConfig {
                    bits: 10 + (i as u32 % 3) * 2,
                    midscale: Volts(0.5 * i as f64),
                    gain: 1.0 + 0.001 * i as f64,
                    seed: 0xdac0 ^ (i as u64) << 6,
                    ..DacConfig::default()
                })
            })
            .collect();
        let mut lanes = DacLanes::extract(scalars.iter()).expect("uniform phase");
        let mut reference = scalars.clone();
        let mut raw = vec![0i32; 5];
        let mut out = vec![0.0; 5];
        for k in 0..400u64 {
            for (l, r) in raw.iter_mut().enumerate() {
                *r = Q15::from_f64(0.8 * (0.11 * (k as f64 + l as f64)).sin()).raw();
            }
            lanes.write_q15(&raw, &mut out);
            for (l, d) in reference.iter_mut().enumerate() {
                assert_eq!(
                    d.write_q15(Q15::from_raw(raw[l])).0.to_bits(),
                    out[l].to_bits(),
                    "lane {l} tick {k}"
                );
            }
        }
        lanes.restore(scalars.iter_mut());
        for (a, b) in scalars.iter_mut().zip(reference.iter_mut()) {
            assert_eq!(
                a.write_q15(Q15::from_f64(0.3)),
                b.write_q15(Q15::from_f64(0.3))
            );
            assert_eq!(a.updates(), b.updates());
        }
    }
}
