//! # ascp-afe — analog front-end models
//!
//! The analog section of the ASCP platform (reproduction of *Platform Based
//! Design for Automotive Sensor Conditioning*, DATE 2005). The paper keeps
//! the analog side deliberately minimal — "the analog front-end only
//! consists of ADCs, DACs, amplifiers and voltage/current sources" (§3) —
//! and makes every cell digitally programmable. This crate provides those
//! cells as discrete-time behavioural models (the Rust stand-in for the
//! paper's VHDL-AMS):
//!
//! - [`adc`] — SAR ADC with programmable resolution, INL/DNL, noise;
//! - [`dac`] — drive/output DACs with gain/offset errors;
//! - [`amp`] — programmable-gain amplifier (gain ladder ×1..×512,
//!   bandwidth, offset drift, 1/f noise) and charge amplifier;
//! - [`filter`] — continuous-time anti-alias Butterworth stage;
//! - [`refs`] — bandgap reference and system oscillator with drift;
//! - [`regs`] — the JTAG-visible configuration register bank.
//!
//! # Example
//!
//! ```
//! use ascp_afe::adc::{AdcConfig, SarAdc};
//! use ascp_sim::units::Volts;
//!
//! let mut adc = SarAdc::new(AdcConfig::default());
//! let code = adc.convert(Volts(1.25));
//! assert!((code - 1024).abs() < 8); // half scale of a 12-bit ±2.5 V ADC
//! ```

pub mod adc;
pub mod amp;
pub mod dac;
pub mod filter;
pub mod refs;
pub mod regs;
