//! Programmable-gain and charge amplifiers.
//!
//! Per the paper, "programming main components parameters (such as
//! amplifier gains and bandwidth ...) through the digital part allows a more
//! accurate adaptation of the front end circuitry to the requirements of
//! different sensors, both at design stage and during real working
//! conditions (with the chance of on-line trimming)" (§3). Both amplifier
//! models expose gain/bandwidth as run-time programmable parameters, and
//! include the nonidealities that matter for the datasheet rows: offset and
//! its temperature drift (null stability), input-referred white + flicker
//! noise (rate noise density), and rail saturation.

use ascp_sim::noise::{PinkLanes, PinkNoise, WhiteLanes, WhiteNoise};
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};
use ascp_sim::units::{Celsius, Volts};

/// Programmable-gain amplifier with a single-pole bandwidth limit.
#[derive(Debug, Clone)]
pub struct Pga {
    gain_code: u8,
    gains: Vec<f64>,
    /// Pole frequency (Hz).
    bandwidth: f64,
    /// Internal one-pole state.
    state: f64,
    /// Input-referred offset at 25 °C (V).
    offset: f64,
    /// Offset drift (V/°C).
    offset_tc: f64,
    temperature: Celsius,
    /// Output rails.
    rail: Volts,
    white: WhiteNoise,
    pink: PinkNoise,
}

impl Pga {
    /// Available gain settings (binary ladder ×1 … ×512, gain codes 0..=9).
    pub const GAIN_LADDER: [f64; 10] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0];

    /// Creates a PGA at gain code 0 (×1) with bandwidth `bandwidth_hz`,
    /// offset `offset_v` (drifting `offset_tc_v` per °C), input-referred
    /// white noise `noise_rms` per sample and matching flicker noise.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_hz` is not positive or `noise_rms` is negative.
    #[must_use]
    pub fn new(
        bandwidth_hz: f64,
        offset_v: f64,
        offset_tc_v: f64,
        noise_rms: f64,
        seed: u64,
    ) -> Self {
        assert!(bandwidth_hz > 0.0, "bandwidth must be positive");
        assert!(noise_rms >= 0.0, "noise must be non-negative");
        Self {
            gain_code: 0,
            gains: Self::GAIN_LADDER.to_vec(),
            bandwidth: bandwidth_hz,
            state: 0.0,
            offset: offset_v,
            offset_tc: offset_tc_v,
            temperature: Celsius(25.0),
            rail: Volts(2.5),
            white: WhiteNoise::new(noise_rms, seed),
            pink: PinkNoise::new(noise_rms * 0.5, 14, seed ^ 0x99),
        }
    }

    /// Selects a gain code (0..=9 → ×1..×512); the platform writes this
    /// register over JTAG.
    ///
    /// # Panics
    ///
    /// Panics if `code` exceeds the ladder.
    pub fn set_gain_code(&mut self, code: u8) {
        assert!(
            (code as usize) < self.gains.len(),
            "gain code {code} outside ladder"
        );
        self.gain_code = code;
    }

    /// Current gain code.
    #[must_use]
    pub fn gain_code(&self) -> u8 {
        self.gain_code
    }

    /// Current linear gain.
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.gains[self.gain_code as usize]
    }

    /// Reprograms the pole frequency (on-line bandwidth trimming).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_hz` is not positive.
    pub fn set_bandwidth(&mut self, bandwidth_hz: f64) {
        assert!(bandwidth_hz > 0.0, "bandwidth must be positive");
        self.bandwidth = bandwidth_hz;
    }

    /// Pole frequency (Hz).
    #[must_use]
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Sets die temperature (shifts the offset).
    pub fn set_temperature(&mut self, t: Celsius) {
        self.temperature = t;
    }

    /// Effective input-referred offset at the current temperature.
    #[must_use]
    pub fn effective_offset(&self) -> Volts {
        Volts(self.offset + self.offset_tc * (self.temperature.0 - 25.0))
    }

    /// Processes one sample taken `dt` seconds after the previous one.
    pub fn process(&mut self, input: Volts, dt: f64) -> Volts {
        let x = input.0 + self.effective_offset().0 + self.white.sample() + self.pink.sample();
        let y_target = x * self.gain();
        // One-pole lowpass toward the target (amplifier bandwidth).
        let alpha = 1.0 - (-2.0 * std::f64::consts::PI * self.bandwidth * dt).exp();
        self.state += alpha * (y_target - self.state);
        Volts(self.state.clamp(-self.rail.0, self.rail.0))
    }

    /// Clears the filter state.
    pub fn reset(&mut self) {
        self.state = 0.0;
    }

    /// Serializes the programmable settings (gain code, bandwidth), filter
    /// state, temperature, and both noise generators.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_u8(self.gain_code);
        w.put_f64(self.bandwidth);
        w.put_f64(self.state);
        w.put_f64(self.temperature.0);
        self.white.save_state(w);
        self.pink.save_state(w);
    }

    /// Restores state saved by [`Pga::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] if the gain code is outside the
    /// ladder or the bandwidth is not physical; propagates other
    /// [`SnapshotError`]s on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let gain_code = r.take_u8()?;
        if gain_code as usize >= self.gains.len() {
            return Err(SnapshotError::Corrupt {
                context: format!("PGA gain code {gain_code} outside ladder"),
            });
        }
        let bandwidth = r.take_f64()?;
        if !(bandwidth.is_finite() && bandwidth > 0.0) {
            return Err(SnapshotError::Corrupt {
                context: format!("PGA bandwidth {bandwidth} not physical"),
            });
        }
        self.gain_code = gain_code;
        self.bandwidth = bandwidth;
        self.state = r.take_f64()?;
        self.temperature = Celsius(r.take_f64()?);
        self.white.load_state(r)?;
        self.pink.load_state(r)?;
        Ok(())
    }
}

/// Charge amplifier: converts a capacitive pickoff displacement (normalized
/// units) into volts. Gain is the platform's pickoff scale factor.
#[derive(Debug, Clone)]
pub struct ChargeAmplifier {
    /// Volts per normalized displacement unit.
    gain: f64,
    noise: WhiteNoise,
    rail: Volts,
}

impl ChargeAmplifier {
    /// Creates a charge amp with `gain` volts per displacement unit and
    /// output noise `noise_rms`.
    ///
    /// # Panics
    ///
    /// Panics if `gain` is zero/negative or `noise_rms` negative.
    #[must_use]
    pub fn new(gain: f64, noise_rms: f64, seed: u64) -> Self {
        assert!(gain > 0.0, "charge-amp gain must be positive");
        assert!(noise_rms >= 0.0, "noise must be non-negative");
        Self {
            gain,
            noise: WhiteNoise::new(noise_rms, seed),
            rail: Volts(2.5),
        }
    }

    /// Volts per displacement unit.
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Converts one displacement sample to a voltage.
    pub fn convert(&mut self, displacement: f64) -> Volts {
        Volts((displacement * self.gain + self.noise.sample()).clamp(-self.rail.0, self.rail.0))
    }

    /// Serializes the noise generator (gain and rails are configuration).
    pub fn save_state(&self, w: &mut StateWriter) {
        self.noise.save_state(w);
    }

    /// Restores state saved by [`ChargeAmplifier::save_state`].
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.noise.load_state(r)
    }
}

/// Lane-parallel PGA kernel: N amplifiers in lockstep with batched noise
/// and per-lane cached pole coefficients.
///
/// The one-pole update and clamp are the exact expressions of
/// [`Pga::process`]; the `alpha` coefficient (an `exp` per scalar call) is
/// precomputed per lane for the fixed fleet `dt` — the same pure function
/// of the same inputs, hence the same bits.
#[derive(Debug, Clone)]
pub struct PgaLanes {
    gain: Vec<f64>,
    offset_eff: Vec<f64>,
    alpha: Vec<f64>,
    state: Vec<f64>,
    rail: Vec<f64>,
    white: WhiteLanes,
    pink: PinkLanes,
    w_draw: Vec<f64>,
    p_draw: Vec<f64>,
}

impl PgaLanes {
    /// Captures N PGAs for lockstep processing at sample interval `dt`.
    ///
    /// Returns `None` if the noise generators are not phase-uniform.
    pub fn extract<'a>(pgas: impl Iterator<Item = &'a Pga>, dt: f64) -> Option<Self> {
        let ps: Vec<&Pga> = pgas.collect();
        let white = WhiteLanes::extract(ps.iter().map(|p| &p.white))?;
        let pink = PinkLanes::extract(ps.iter().map(|p| &p.pink))?;
        let n = ps.len();
        let mut lanes = Self {
            gain: Vec::with_capacity(n),
            offset_eff: Vec::with_capacity(n),
            alpha: Vec::with_capacity(n),
            state: Vec::with_capacity(n),
            rail: Vec::with_capacity(n),
            white,
            pink,
            w_draw: vec![0.0; n],
            p_draw: vec![0.0; n],
        };
        for p in &ps {
            lanes.gain.push(p.gain());
            lanes.offset_eff.push(p.effective_offset().0);
            lanes
                .alpha
                .push(1.0 - (-2.0 * std::f64::consts::PI * p.bandwidth * dt).exp());
            lanes.state.push(p.state);
            lanes.rail.push(p.rail.0);
        }
        Some(lanes)
    }

    /// Writes filter state and noise generators back.
    pub fn restore<'a>(&self, pgas: impl Iterator<Item = &'a mut Pga>) {
        let mut ps: Vec<&mut Pga> = pgas.collect();
        self.white.restore(ps.iter_mut().map(|p| &mut p.white));
        self.pink.restore(ps.iter_mut().map(|p| &mut p.pink));
        for (l, p) in ps.into_iter().enumerate() {
            p.state = self.state[l];
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.gain.len()
    }

    /// Processes one sample per lane.
    #[inline]
    pub fn process(&mut self, input: &[f64], out: &mut [f64]) {
        let n = self.gain.len();
        self.white.sample(&mut self.w_draw);
        self.pink.sample(&mut self.p_draw);
        for l in 0..n {
            let x = input[l] + self.offset_eff[l] + self.w_draw[l] + self.p_draw[l];
            let y_target = x * self.gain[l];
            self.state[l] += self.alpha[l] * (y_target - self.state[l]);
            out[l] = self.state[l].clamp(-self.rail[l], self.rail[l]);
        }
    }
}

/// Lane-parallel charge-amplifier kernel (batched noise + SoA convert).
#[derive(Debug, Clone)]
pub struct ChargeLanes {
    gain: Vec<f64>,
    rail: Vec<f64>,
    noise: WhiteLanes,
    draw: Vec<f64>,
}

impl ChargeLanes {
    /// Captures N charge amps; `None` if noise phases are not uniform.
    pub fn extract<'a>(amps: impl Iterator<Item = &'a ChargeAmplifier>) -> Option<Self> {
        let cs: Vec<&ChargeAmplifier> = amps.collect();
        let noise = WhiteLanes::extract(cs.iter().map(|c| &c.noise))?;
        let n = cs.len();
        Some(Self {
            gain: cs.iter().map(|c| c.gain).collect(),
            rail: cs.iter().map(|c| c.rail.0).collect(),
            noise,
            draw: vec![0.0; n],
        })
    }

    /// Writes the noise generators back (gain and rails are configuration).
    pub fn restore<'a>(&self, amps: impl Iterator<Item = &'a mut ChargeAmplifier>) {
        let mut cs: Vec<&mut ChargeAmplifier> = amps.collect();
        self.noise.restore(cs.iter_mut().map(|c| &mut c.noise));
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.gain.len()
    }

    /// Converts one displacement sample per lane.
    #[inline]
    pub fn convert(&mut self, displacement: &[f64], out: &mut [f64]) {
        let n = self.gain.len();
        self.noise.sample(&mut self.draw);
        for l in 0..n {
            out[l] =
                (displacement[l] * self.gain[l] + self.draw[l]).clamp(-self.rail[l], self.rail[l]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: f64 = 1.0e-6;

    fn quiet_pga() -> Pga {
        Pga::new(100_000.0, 0.0, 0.0, 0.0, 1)
    }

    #[test]
    fn gain_ladder_steps() {
        let mut pga = quiet_pga();
        for code in 0..10u8 {
            pga.set_gain_code(code);
            assert_eq!(pga.gain(), 2f64.powi(code as i32));
        }
    }

    #[test]
    #[should_panic(expected = "gain code")]
    fn rejects_gain_code_out_of_ladder() {
        quiet_pga().set_gain_code(10);
    }

    #[test]
    fn dc_gain_after_settling() {
        let mut pga = quiet_pga();
        pga.set_gain_code(3); // ×8
        let mut y = Volts(0.0);
        for _ in 0..10_000 {
            y = pga.process(Volts(0.01), DT);
        }
        assert!((y.0 - 0.08).abs() < 1e-4, "output {}", y.0);
    }

    #[test]
    fn saturates_at_rails() {
        let mut pga = quiet_pga();
        pga.set_gain_code(9); // ×512
        let mut y = Volts(0.0);
        for _ in 0..10_000 {
            y = pga.process(Volts(0.5), DT);
        }
        assert!((y.0 - 2.5).abs() < 1e-9, "not railed: {}", y.0);
    }

    #[test]
    fn bandwidth_attenuates_fast_signals() {
        let mut pga = Pga::new(1_000.0, 0.0, 0.0, 0.0, 1);
        // 50 kHz input through a 1 kHz pole: heavily attenuated.
        let w = 2.0 * std::f64::consts::PI * 50_000.0;
        let mut peak = 0.0f64;
        for k in 0..200_000 {
            let y = pga.process(Volts(1.0 * (w * k as f64 * DT).sin()), DT);
            if k > 100_000 {
                peak = peak.max(y.0.abs());
            }
        }
        assert!(peak < 0.05, "insufficient rolloff: {peak}");
    }

    #[test]
    fn offset_drifts_with_temperature() {
        let mut pga = Pga::new(100_000.0, 1.0e-3, 10.0e-6, 0.0, 1);
        assert!((pga.effective_offset().0 - 1.0e-3).abs() < 1e-12);
        pga.set_temperature(Celsius(125.0));
        assert!((pga.effective_offset().0 - 2.0e-3).abs() < 1e-9);
        pga.set_temperature(Celsius(-40.0));
        assert!((pga.effective_offset().0 - 0.35e-3).abs() < 1e-9);
    }

    #[test]
    fn noise_present_when_configured() {
        let mut pga = Pga::new(100_000.0, 0.0, 0.0, 1.0e-3, 7);
        let a = pga.process(Volts(0.0), DT);
        let mut differs = false;
        for _ in 0..50 {
            if pga.process(Volts(0.0), DT) != a {
                differs = true;
            }
        }
        assert!(differs, "noise missing");
    }

    #[test]
    fn charge_amp_scales_displacement() {
        let mut ca = ChargeAmplifier::new(4.0, 0.0, 1);
        assert!((ca.convert(0.5).0 - 2.0).abs() < 1e-12);
        assert!((ca.convert(-0.25).0 + 1.0).abs() < 1e-12);
    }

    #[test]
    fn charge_amp_clips() {
        let mut ca = ChargeAmplifier::new(4.0, 0.0, 1);
        assert_eq!(ca.convert(10.0).0, 2.5);
        assert_eq!(ca.convert(-10.0).0, -2.5);
    }

    #[test]
    fn reprogramming_bandwidth() {
        let mut pga = quiet_pga();
        pga.set_bandwidth(5_000.0);
        assert_eq!(pga.bandwidth(), 5_000.0);
    }

    #[test]
    fn pga_lanes_match_scalar_bit_for_bit() {
        for n in [1usize, 3, 8] {
            let mut scalars: Vec<Pga> = (0..n)
                .map(|i| {
                    let mut p = Pga::new(
                        200_000.0 * (1.0 + 0.01 * i as f64),
                        100.0e-6 * (i as f64 + 1.0),
                        2.0e-6,
                        20.0e-6,
                        42 ^ (i as u64) << 4,
                    );
                    p.set_gain_code((i % 4) as u8);
                    p.set_temperature(Celsius(25.0 + 10.0 * i as f64));
                    p
                })
                .collect();
            let mut lanes = PgaLanes::extract(scalars.iter(), DT).expect("uniform phase");
            let mut reference = scalars.clone();
            let mut input = vec![0.0; n];
            let mut out = vec![0.0; n];
            for k in 0..600u64 {
                for (l, x) in input.iter_mut().enumerate() {
                    *x = 0.01 * (0.05 * (k as f64 + l as f64)).sin();
                }
                lanes.process(&input, &mut out);
                for (l, p) in reference.iter_mut().enumerate() {
                    let y = p.process(Volts(input[l]), DT);
                    assert_eq!(y.0.to_bits(), out[l].to_bits(), "lane {l} tick {k}");
                }
            }
            lanes.restore(scalars.iter_mut());
            for (a, b) in scalars.iter_mut().zip(reference.iter_mut()) {
                assert_eq!(a.process(Volts(0.02), DT), b.process(Volts(0.02), DT));
            }
        }
    }

    #[test]
    fn charge_lanes_match_scalar_bit_for_bit() {
        let mut scalars: Vec<ChargeAmplifier> = (0..5)
            .map(|i| ChargeAmplifier::new(1.0e7, 50.0e-6, 7 ^ (i as u64) << 3))
            .collect();
        let mut lanes = ChargeLanes::extract(scalars.iter()).expect("uniform phase");
        let mut reference = scalars.clone();
        let mut disp = vec![0.0; 5];
        let mut out = vec![0.0; 5];
        for k in 0..400u64 {
            for (l, d) in disp.iter_mut().enumerate() {
                *d = 1.0e-8 * (0.2 * (k as f64 - l as f64)).cos();
            }
            lanes.convert(&disp, &mut out);
            for (l, c) in reference.iter_mut().enumerate() {
                assert_eq!(c.convert(disp[l]).0.to_bits(), out[l].to_bits(), "lane {l}");
            }
        }
        lanes.restore(scalars.iter_mut());
        for (a, b) in scalars.iter_mut().zip(reference.iter_mut()) {
            assert_eq!(a.convert(2.0e-9), b.convert(2.0e-9));
        }
    }
}
