//! Voltage/current references and the system oscillator.
//!
//! "The front-end ... provides stable power supply and clock to the digital
//! section" (§4.2). Reference drift feeds straight into ratiometric errors
//! (sensitivity over temperature), and oscillator drift shifts every
//! digital filter corner, so both are modelled with first-order temperature
//! coefficients plus noise.

use ascp_sim::noise::WhiteNoise;
use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};
use ascp_sim::units::{Celsius, Hertz, Volts};

/// Bandgap voltage reference.
#[derive(Debug, Clone)]
pub struct VoltageReference {
    nominal: Volts,
    /// Relative drift per °C (bandgap: tens of ppm/°C).
    tempco: f64,
    temperature: Celsius,
    noise: WhiteNoise,
    /// Injected supply droop as a fraction of nominal (0.0 = healthy).
    droop: f64,
}

impl VoltageReference {
    /// Creates a reference of `nominal` volts with relative `tempco`
    /// (1/°C) and RMS `noise_rms` volts.
    ///
    /// # Panics
    ///
    /// Panics if `nominal` is not positive or `noise_rms` is negative.
    #[must_use]
    pub fn new(nominal: Volts, tempco: f64, noise_rms: f64, seed: u64) -> Self {
        assert!(nominal.0 > 0.0, "reference voltage must be positive");
        assert!(noise_rms >= 0.0, "noise must be non-negative");
        Self {
            nominal,
            tempco,
            temperature: Celsius(25.0),
            noise: WhiteNoise::new(noise_rms, seed),
            droop: 0.0,
        }
    }

    /// Injects a supply/reference droop as a fraction of nominal
    /// (0.1 = −10%); `0.0` restores a healthy reference.
    ///
    /// # Panics
    ///
    /// Panics unless `frac` is in `[0, 1)`.
    pub fn set_droop(&mut self, frac: f64) {
        assert!((0.0..1.0).contains(&frac), "droop fraction {frac}");
        self.droop = frac;
    }

    /// Currently injected droop fraction.
    #[must_use]
    pub fn droop(&self) -> f64 {
        self.droop
    }

    /// A typical automotive bandgap: 2.5 V, 25 ppm/°C, 20 µV RMS.
    #[must_use]
    pub fn bandgap_2v5(seed: u64) -> Self {
        Self::new(Volts(2.5), 25.0e-6, 20.0e-6, seed)
    }

    /// Nominal output.
    #[must_use]
    pub fn nominal(&self) -> Volts {
        self.nominal
    }

    /// Sets die temperature.
    pub fn set_temperature(&mut self, t: Celsius) {
        self.temperature = t;
    }

    /// Instantaneous output voltage.
    pub fn output(&mut self) -> Volts {
        let drift = 1.0 + self.tempco * (self.temperature.0 - 25.0);
        Volts(self.nominal.0 * drift * (1.0 - self.droop) + self.noise.sample())
    }

    /// Serializes temperature, injected droop, and the noise generator.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_f64(self.temperature.0);
        w.put_f64(self.droop);
        self.noise.save_state(w);
    }

    /// Restores state saved by [`VoltageReference::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] if the droop fraction is outside
    /// `[0, 1)`; propagates other [`SnapshotError`]s on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.temperature = Celsius(r.take_f64()?);
        let droop = r.take_f64()?;
        if !(0.0..1.0).contains(&droop) {
            return Err(SnapshotError::Corrupt {
                context: format!("reference droop fraction {droop} outside [0, 1)"),
            });
        }
        self.droop = droop;
        self.noise.load_state(r)
    }
}

/// System oscillator (the 20 MHz clock of the paper's FPGA prototype).
#[derive(Debug, Clone)]
pub struct Oscillator {
    nominal: Hertz,
    /// Relative frequency drift per °C.
    tempco: f64,
    temperature: Celsius,
    noise: WhiteNoise,
}

impl Oscillator {
    /// Creates an oscillator.
    ///
    /// # Panics
    ///
    /// Panics if `nominal` is not positive or `jitter` is negative.
    #[must_use]
    pub fn new(nominal: Hertz, tempco: f64, jitter: f64, seed: u64) -> Self {
        assert!(nominal.0 > 0.0, "oscillator frequency must be positive");
        assert!(jitter >= 0.0, "jitter must be non-negative");
        Self {
            nominal,
            tempco,
            temperature: Celsius(25.0),
            noise: WhiteNoise::new(jitter, seed),
        }
    }

    /// The platform's 20 MHz system clock (50 ppm/°C crystal-less RC spec).
    #[must_use]
    pub fn system_20mhz(seed: u64) -> Self {
        Self::new(Hertz(20.0e6), 50.0e-6, 1.0e-5, seed)
    }

    /// Nominal frequency.
    #[must_use]
    pub fn nominal(&self) -> Hertz {
        self.nominal
    }

    /// Sets die temperature.
    pub fn set_temperature(&mut self, t: Celsius) {
        self.temperature = t;
    }

    /// Effective frequency at the current temperature (no jitter).
    #[must_use]
    pub fn frequency(&self) -> Hertz {
        Hertz(self.nominal.0 * (1.0 + self.tempco * (self.temperature.0 - 25.0)))
    }

    /// One clock period including jitter (seconds).
    pub fn period(&mut self) -> f64 {
        let f = self.frequency().0;
        (1.0 / f) * (1.0 + self.noise.sample())
    }

    /// Serializes temperature and the jitter generator.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_f64(self.temperature.0);
        self.noise.save_state(w);
    }

    /// Restores state saved by [`Oscillator::save_state`].
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.temperature = Celsius(r.take_f64()?);
        self.noise.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_drifts_with_temperature() {
        let mut r = VoltageReference::new(Volts(2.5), 100.0e-6, 0.0, 1);
        assert!((r.output().0 - 2.5).abs() < 1e-12);
        r.set_temperature(Celsius(125.0));
        assert!((r.output().0 - 2.5 * 1.01).abs() < 1e-9);
    }

    #[test]
    fn bandgap_is_tight() {
        let mut r = VoltageReference::bandgap_2v5(1);
        r.set_temperature(Celsius(-40.0));
        let cold = r.output().0;
        r.set_temperature(Celsius(125.0));
        let hot = r.output().0;
        // 25 ppm/°C over 165 °C ≈ 0.41 %.
        assert!((hot - cold).abs() / 2.5 < 0.006);
    }

    #[test]
    fn oscillator_nominal_period() {
        let mut o = Oscillator::new(Hertz(20.0e6), 0.0, 0.0, 1);
        assert!((o.period() - 50.0e-9).abs() < 1e-18);
    }

    #[test]
    fn oscillator_temperature_drift() {
        let mut o = Oscillator::system_20mhz(1);
        o.set_temperature(Celsius(125.0));
        let f = o.frequency().0;
        assert!((f / 20.0e6 - 1.005).abs() < 1e-6, "drifted to {f}");
    }

    #[test]
    fn jitter_varies_period() {
        let mut o = Oscillator::new(Hertz(1.0e6), 0.0, 1.0e-3, 3);
        let a = o.period();
        let mut differs = false;
        for _ in 0..20 {
            if (o.period() - a).abs() > 1e-15 {
                differs = true;
            }
        }
        assert!(differs, "jitter missing");
    }

    #[test]
    fn droop_scales_output() {
        let mut r = VoltageReference::new(Volts(2.5), 0.0, 0.0, 1);
        r.set_droop(0.1);
        assert!((r.output().0 - 2.25).abs() < 1e-12);
        assert!((r.droop() - 0.1).abs() < 1e-15);
        r.set_droop(0.0);
        assert!((r.output().0 - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_reference() {
        let _ = VoltageReference::new(Volts(0.0), 0.0, 0.0, 1);
    }
}
