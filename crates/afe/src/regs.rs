//! AFE configuration register file.
//!
//! "Each analog cell in the front end is digitally controlled" (§4.2): the
//! AFE exposes a bank of 16-bit registers written and read back over JTAG.
//! This module holds the register storage and the typed field accessors;
//! the platform glue (ascp-core) applies the values to the component
//! models, and the JTAG chain (ascp-jtag) moves the bits.

use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};
use std::error::Error;
use std::fmt;

/// Register addresses of the AFE bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AfeReg {
    /// Primary-channel PGA gain code (0..=9).
    PgaPrimaryGain = 0x00,
    /// Secondary-channel PGA gain code (0..=9).
    PgaSecondaryGain = 0x01,
    /// ADC resolution in bits (8..=16).
    AdcBits = 0x02,
    /// Anti-alias corner frequency in units of 100 Hz.
    AafCorner = 0x03,
    /// Primary drive DAC enable (bit 0) / secondary DAC enable (bit 1).
    DacEnable = 0x04,
    /// Excitation amplitude for generic sensors, millivolts.
    Excitation = 0x05,
    /// Die-temperature sensor readout (read-only, 0.1 °C units, offset
    /// +50 °C so −40 °C reads 100).
    TempSensor = 0x06,
    /// Status: bit 0 = references settled, bit 1 = ADC busy.
    Status = 0x07,
}

impl AfeReg {
    /// All registers in address order.
    pub const ALL: [AfeReg; 8] = [
        AfeReg::PgaPrimaryGain,
        AfeReg::PgaSecondaryGain,
        AfeReg::AdcBits,
        AfeReg::AafCorner,
        AfeReg::DacEnable,
        AfeReg::Excitation,
        AfeReg::TempSensor,
        AfeReg::Status,
    ];

    /// Register address.
    #[must_use]
    pub fn addr(self) -> u8 {
        self as u8
    }

    /// `true` if the register is writable from the digital side.
    #[must_use]
    pub fn is_writable(self) -> bool {
        !matches!(self, AfeReg::TempSensor | AfeReg::Status)
    }
}

/// Error writing an AFE register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteRegError {
    /// Address does not exist.
    UnknownAddress(u8),
    /// Register is read-only.
    ReadOnly(u8),
    /// Value outside the field's legal range.
    ValueOutOfRange {
        /// Register address.
        addr: u8,
        /// Rejected value.
        value: u16,
    },
}

impl fmt::Display for WriteRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownAddress(a) => write!(f, "unknown AFE register address {a:#04x}"),
            Self::ReadOnly(a) => write!(f, "AFE register {a:#04x} is read-only"),
            Self::ValueOutOfRange { addr, value } => {
                write!(f, "value {value} out of range for AFE register {addr:#04x}")
            }
        }
    }
}

impl Error for WriteRegError {}

/// The AFE register bank with reset defaults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AfeRegisterFile {
    values: [u16; 8],
    /// Successful configuration writes (telemetry; hardware-side
    /// temperature updates are not counted).
    writes: u64,
}

impl Default for AfeRegisterFile {
    fn default() -> Self {
        Self::new()
    }
}

impl AfeRegisterFile {
    /// Creates the bank at reset defaults (×1 gains, 12-bit ADC, 30 kHz
    /// corner, DACs off, 2.5 V excitation).
    #[must_use]
    pub fn new() -> Self {
        let mut values = [0u16; 8];
        values[AfeReg::AdcBits.addr() as usize] = 12;
        values[AfeReg::AafCorner.addr() as usize] = 300; // 30 kHz
        values[AfeReg::Excitation.addr() as usize] = 2500;
        values[AfeReg::TempSensor.addr() as usize] = 750; // 25 °C
        values[AfeReg::Status.addr() as usize] = 0x0001;
        Self { values, writes: 0 }
    }

    /// Reads a register by typed name.
    #[must_use]
    pub fn read(&self, reg: AfeReg) -> u16 {
        self.values[reg.addr() as usize]
    }

    /// Reads by raw address (the JTAG path).
    ///
    /// # Errors
    ///
    /// Returns [`WriteRegError::UnknownAddress`] for addresses ≥ 8.
    pub fn read_addr(&self, addr: u8) -> Result<u16, WriteRegError> {
        self.values
            .get(addr as usize)
            .copied()
            .ok_or(WriteRegError::UnknownAddress(addr))
    }

    /// Writes a register by typed name, validating the field range.
    ///
    /// # Errors
    ///
    /// Returns [`WriteRegError::ReadOnly`] or
    /// [`WriteRegError::ValueOutOfRange`].
    pub fn write(&mut self, reg: AfeReg, value: u16) -> Result<(), WriteRegError> {
        if !reg.is_writable() {
            return Err(WriteRegError::ReadOnly(reg.addr()));
        }
        let ok = match reg {
            AfeReg::PgaPrimaryGain | AfeReg::PgaSecondaryGain => value <= 9,
            AfeReg::AdcBits => (8..=16).contains(&value),
            AfeReg::AafCorner => (1..=5000).contains(&value),
            AfeReg::DacEnable => value <= 0b11,
            AfeReg::Excitation => value <= 5000,
            AfeReg::TempSensor | AfeReg::Status => false,
        };
        if !ok {
            return Err(WriteRegError::ValueOutOfRange {
                addr: reg.addr(),
                value,
            });
        }
        self.values[reg.addr() as usize] = value;
        self.writes += 1;
        Ok(())
    }

    /// Writes by raw address (the JTAG path).
    ///
    /// # Errors
    ///
    /// Same as [`AfeRegisterFile::write`], plus
    /// [`WriteRegError::UnknownAddress`].
    pub fn write_addr(&mut self, addr: u8, value: u16) -> Result<(), WriteRegError> {
        let reg = AfeReg::ALL
            .into_iter()
            .find(|r| r.addr() == addr)
            .ok_or(WriteRegError::UnknownAddress(addr))?;
        self.write(reg, value)
    }

    /// Hardware-side update of the die-temperature readout.
    pub fn set_temp_sensor(&mut self, celsius: f64) {
        let code = ((celsius + 50.0) * 10.0).clamp(0.0, u16::MAX as f64) as u16;
        self.values[AfeReg::TempSensor.addr() as usize] = code;
    }

    /// Successful configuration writes since reset (telemetry).
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Die temperature decoded from the sensor register (°C).
    #[must_use]
    pub fn temp_celsius(&self) -> f64 {
        self.read(AfeReg::TempSensor) as f64 / 10.0 - 50.0
    }

    /// Number of registers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always false — the bank has fixed registers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Serializes the register values and the write counter.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_u16_slice(&self.values);
        w.put_u64(self.writes);
    }

    /// Restores state saved by [`AfeRegisterFile::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] if the register count does not
    /// match the bank; propagates other [`SnapshotError`]s on malformed
    /// input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let values = r.take_u16_vec()?;
        if values.len() != self.values.len() {
            return Err(SnapshotError::Corrupt {
                context: format!(
                    "AFE register bank of {} registers in snapshot, expected {}",
                    values.len(),
                    self.values.len()
                ),
            });
        }
        self.values.copy_from_slice(&values);
        self.writes = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let r = AfeRegisterFile::new();
        assert_eq!(r.read(AfeReg::AdcBits), 12);
        assert_eq!(r.read(AfeReg::PgaPrimaryGain), 0);
        assert!((r.temp_celsius() - 25.0).abs() < 0.05);
    }

    #[test]
    fn write_and_read_back() {
        let mut r = AfeRegisterFile::new();
        r.write(AfeReg::PgaSecondaryGain, 7).unwrap();
        assert_eq!(r.read(AfeReg::PgaSecondaryGain), 7);
    }

    #[test]
    fn rejects_out_of_range_gain() {
        let mut r = AfeRegisterFile::new();
        let err = r.write(AfeReg::PgaPrimaryGain, 12).unwrap_err();
        assert!(matches!(err, WriteRegError::ValueOutOfRange { .. }));
    }

    #[test]
    fn rejects_read_only_writes() {
        let mut r = AfeRegisterFile::new();
        assert_eq!(
            r.write(AfeReg::Status, 0),
            Err(WriteRegError::ReadOnly(AfeReg::Status.addr()))
        );
    }

    #[test]
    fn raw_address_paths() {
        let mut r = AfeRegisterFile::new();
        r.write_addr(0x02, 14).unwrap();
        assert_eq!(r.read_addr(0x02).unwrap(), 14);
        assert_eq!(r.read_addr(0x55), Err(WriteRegError::UnknownAddress(0x55)));
        assert_eq!(
            r.write_addr(0x55, 0),
            Err(WriteRegError::UnknownAddress(0x55))
        );
    }

    #[test]
    fn temp_sensor_codec_round_trip() {
        let mut r = AfeRegisterFile::new();
        for t in [-40.0, 0.0, 25.0, 85.0, 125.0] {
            r.set_temp_sensor(t);
            assert!((r.temp_celsius() - t).abs() < 0.11, "T={t}");
        }
    }

    #[test]
    fn adc_bits_bounds() {
        let mut r = AfeRegisterFile::new();
        assert!(r.write(AfeReg::AdcBits, 8).is_ok());
        assert!(r.write(AfeReg::AdcBits, 16).is_ok());
        assert!(r.write(AfeReg::AdcBits, 7).is_err());
        assert!(r.write(AfeReg::AdcBits, 17).is_err());
    }

    #[test]
    fn error_messages_are_informative() {
        let e = WriteRegError::ValueOutOfRange {
            addr: 0x02,
            value: 99,
        };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("0x02"));
    }
}
