//! Continuous-time anti-alias filter model.
//!
//! The AFE's "basic filters" (§4.2) in front of the SAR ADCs. A 2nd-order
//! Butterworth stage integrated with the trapezoidal (bilinear) rule at the
//! analog solver rate: accurate well past the audio-range corners used
//! here, stable at any step size.

use ascp_sim::snapshot::{SnapshotError, StateReader, StateWriter};
use ascp_sim::units::Volts;

/// Second-order continuous lowpass `H(s) = ω₀² / (s² + (ω₀/Q)s + ω₀²)`.
#[derive(Debug, Clone)]
pub struct AntiAliasFilter {
    f0: f64,
    q: f64,
    /// State variables (position, velocity of the filter ODE).
    x: f64,
    v: f64,
}

impl AntiAliasFilter {
    /// Creates a filter with corner `f0_hz` and quality `q` (0.707 =
    /// Butterworth).
    ///
    /// # Panics
    ///
    /// Panics if `f0_hz` or `q` is not positive.
    #[must_use]
    pub fn new(f0_hz: f64, q: f64) -> Self {
        assert!(f0_hz > 0.0, "corner frequency must be positive");
        assert!(q > 0.0, "quality factor must be positive");
        Self {
            f0: f0_hz,
            q,
            x: 0.0,
            v: 0.0,
        }
    }

    /// Butterworth (Q = 1/√2) at `f0_hz`.
    #[must_use]
    pub fn butterworth(f0_hz: f64) -> Self {
        Self::new(f0_hz, std::f64::consts::FRAC_1_SQRT_2)
    }

    /// Corner frequency (Hz).
    #[must_use]
    pub fn corner(&self) -> f64 {
        self.f0
    }

    /// Retunes the corner (a JTAG-programmable parameter).
    ///
    /// # Panics
    ///
    /// Panics if `f0_hz` is not positive.
    pub fn set_corner(&mut self, f0_hz: f64) {
        assert!(f0_hz > 0.0, "corner frequency must be positive");
        self.f0 = f0_hz;
    }

    /// Advances by `dt` with input `u`; returns the filtered output.
    ///
    /// Semi-implicit (symplectic Euler) update — unconditionally stable for
    /// the ω·dt < 1 regime the AFE operates in, with RK4-class accuracy for
    /// these slow corners.
    pub fn process(&mut self, u: Volts, dt: f64) -> Volts {
        let w = 2.0 * std::f64::consts::PI * self.f0;
        // ẍ = ω²(u − x) − (ω/Q) ẋ
        let a = w * w * (u.0 - self.x) - (w / self.q) * self.v;
        self.v += a * dt;
        self.x += self.v * dt;
        Volts(self.x)
    }

    /// Clears state.
    pub fn reset(&mut self) {
        self.x = 0.0;
        self.v = 0.0;
    }

    /// Serializes the programmable corner and the ODE state.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.put_f64(self.f0);
        w.put_f64(self.x);
        w.put_f64(self.v);
    }

    /// Restores state saved by [`AntiAliasFilter::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] if the saved corner is not
    /// physical; propagates other [`SnapshotError`]s on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let f0 = r.take_f64()?;
        if !(f0.is_finite() && f0 > 0.0) {
            return Err(SnapshotError::Corrupt {
                context: format!("anti-alias corner {f0} not physical"),
            });
        }
        self.f0 = f0;
        self.x = r.take_f64()?;
        self.v = r.take_f64()?;
        Ok(())
    }
}

/// Lane-parallel anti-alias filter kernel: SoA semi-implicit Euler.
///
/// Same update expressions as [`AntiAliasFilter::process`]; `ω = 2πf₀` is
/// hoisted per lane (the scalar path recomputes it each call — pure, same
/// bits).
#[derive(Debug, Clone)]
pub struct AafLanes {
    w: Vec<f64>,
    q: Vec<f64>,
    x: Vec<f64>,
    v: Vec<f64>,
}

impl AafLanes {
    /// Captures N filters for lockstep processing.
    pub fn extract<'a>(filters: impl Iterator<Item = &'a AntiAliasFilter>) -> Self {
        let mut lanes = Self {
            w: Vec::new(),
            q: Vec::new(),
            x: Vec::new(),
            v: Vec::new(),
        };
        for f in filters {
            lanes.w.push(2.0 * std::f64::consts::PI * f.f0);
            lanes.q.push(f.q);
            lanes.x.push(f.x);
            lanes.v.push(f.v);
        }
        lanes
    }

    /// Writes the ODE state back.
    pub fn restore<'a>(&self, filters: impl Iterator<Item = &'a mut AntiAliasFilter>) {
        for (l, f) in filters.enumerate() {
            f.x = self.x[l];
            f.v = self.v[l];
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.w.len()
    }

    /// Advances every lane by `dt` with input `u[l]`; output lands in
    /// `out[l]`.
    #[inline]
    pub fn process(&mut self, u: &[f64], dt: f64, out: &mut [f64]) {
        let n = self.w.len();
        for (l, o) in out.iter_mut().enumerate().take(n) {
            let w = self.w[l];
            let a = w * w * (u[l] - self.x[l]) - (w / self.q[l]) * self.v[l];
            self.v[l] += a * dt;
            self.x[l] += self.v[l] * dt;
            *o = self.x[l];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: f64 = 1.0e-6;

    fn gain_at(filter: &mut AntiAliasFilter, f: f64) -> f64 {
        let w = 2.0 * std::f64::consts::PI * f;
        let mut peak = 0.0f64;
        let n = ((20.0 / f) / DT) as usize + 200_000;
        for k in 0..n {
            let y = filter.process(Volts((w * k as f64 * DT).sin()), DT);
            if k > n * 3 / 4 {
                peak = peak.max(y.0.abs());
            }
        }
        peak
    }

    #[test]
    fn passes_dc() {
        let mut f = AntiAliasFilter::butterworth(30_000.0);
        let mut y = Volts(0.0);
        for _ in 0..100_000 {
            y = f.process(Volts(1.0), DT);
        }
        assert!((y.0 - 1.0).abs() < 1e-6, "DC gain {}", y.0);
    }

    #[test]
    fn corner_attenuation_3db() {
        let mut f = AntiAliasFilter::butterworth(30_000.0);
        let g = gain_at(&mut f, 30_000.0);
        assert!(
            (g - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.05,
            "corner gain {g}"
        );
    }

    #[test]
    fn stopband_rolloff_40db_per_decade() {
        let mut f = AntiAliasFilter::butterworth(10_000.0);
        let g = gain_at(&mut f, 100_000.0);
        assert!(g < 0.015, "one decade out gain {g}"); // −40 dB = 0.01
    }

    #[test]
    fn passband_is_flat() {
        let mut f = AntiAliasFilter::butterworth(30_000.0);
        let g = gain_at(&mut f, 3_000.0);
        assert!((g - 1.0).abs() < 0.02, "passband gain {g}");
    }

    #[test]
    fn retune_moves_corner() {
        let mut f = AntiAliasFilter::butterworth(30_000.0);
        f.set_corner(5_000.0);
        assert_eq!(f.corner(), 5_000.0);
        let g = gain_at(&mut f, 30_000.0);
        assert!(g < 0.05, "retuned corner not effective: {g}");
    }

    #[test]
    fn reset_clears_state() {
        let mut f = AntiAliasFilter::butterworth(1_000.0);
        for _ in 0..1000 {
            f.process(Volts(1.0), DT);
        }
        f.reset();
        let y = f.process(Volts(0.0), DT);
        assert_eq!(y.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_corner() {
        let _ = AntiAliasFilter::butterworth(0.0);
    }

    #[test]
    fn aaf_lanes_match_scalar_bit_for_bit() {
        let mut scalars: Vec<AntiAliasFilter> = (0..6)
            .map(|i| AntiAliasFilter::butterworth(60_000.0 * (1.0 + 0.02 * i as f64)))
            .collect();
        let mut lanes = AafLanes::extract(scalars.iter());
        let mut reference = scalars.clone();
        let mut u = vec![0.0; 6];
        let mut out = vec![0.0; 6];
        for k in 0..2000u64 {
            for (l, x) in u.iter_mut().enumerate() {
                *x = 0.5 * (0.3 * (k as f64 + 2.0 * l as f64)).sin();
            }
            lanes.process(&u, DT, &mut out);
            for (l, f) in reference.iter_mut().enumerate() {
                assert_eq!(
                    f.process(Volts(u[l]), DT).0.to_bits(),
                    out[l].to_bits(),
                    "lane {l} tick {k}"
                );
            }
        }
        lanes.restore(scalars.iter_mut());
        for (a, b) in scalars.iter_mut().zip(reference.iter_mut()) {
            assert_eq!(a.process(Volts(0.1), DT), b.process(Volts(0.1), DT));
        }
    }
}
