//! Property tests of the analog front-end models: converter transfer
//! invariants that must hold for any input, resolution and seed.

use ascp_afe::adc::{AdcConfig, SarAdc};
use ascp_afe::dac::{Dac, DacConfig};
use ascp_sim::units::Volts;
use proptest::prelude::*;

fn quiet_adc(bits: u32, seed: u64) -> SarAdc {
    SarAdc::new(AdcConfig {
        bits,
        noise_rms: 0.0,
        inl_lsb: 0.0,
        dnl_lsb: 0.0,
        seed,
        ..AdcConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ideal_adc_is_monotone(bits in 8u32..=16, seed in any::<u64>()) {
        let mut adc = quiet_adc(bits, seed);
        let mut last = i32::MIN;
        for k in 0..200 {
            let v = -2.5 + 5.0 * f64::from(k) / 200.0;
            let code = adc.convert(Volts(v));
            prop_assert!(code >= last, "non-monotone at {v} V");
            last = code;
        }
    }

    #[test]
    fn adc_code_inverse_within_lsb(bits in 8u32..=16, mv in -2400i32..=2400) {
        let mut adc = quiet_adc(bits, 1);
        let v = f64::from(mv) / 1000.0;
        let code = adc.convert(Volts(v));
        let back = adc.code_to_volts(code);
        prop_assert!((back.0 - v).abs() <= 1.5 * adc.lsb(), "{v} -> {code} -> {}", back.0);
    }

    #[test]
    fn adc_codes_stay_in_range(
        bits in 8u32..=16,
        v in -100.0f64..100.0,
        seed in any::<u64>(),
    ) {
        let mut adc = SarAdc::new(AdcConfig {
            bits,
            seed,
            ..AdcConfig::default()
        });
        let half = 1i32 << (bits - 1);
        let code = adc.convert(Volts(v));
        prop_assert!(code >= -half && code < half, "code {code} at {v} V");
    }

    #[test]
    fn dac_transfer_is_affine(bits in 8u32..=16, code in -2000i32..2000) {
        let mut dac = Dac::new(DacConfig {
            bits,
            noise_rms: 0.0,
            ..DacConfig::default()
        });
        let half = 1i64 << (bits - 1);
        prop_assume!(i64::from(code) >= -half && i64::from(code) < half);
        let v = dac.write(code);
        let expect = f64::from(code) / half as f64 * 2.5;
        prop_assert!((v.0 - expect).abs() < 1e-9, "{code} -> {} vs {expect}", v.0);
    }

    #[test]
    fn adc_dac_loopback_error_bounded(bits in 8u32..=16, mv in -2000i32..=2000) {
        let mut adc = quiet_adc(bits, 2);
        let mut dac = Dac::new(DacConfig {
            bits,
            noise_rms: 0.0,
            ..DacConfig::default()
        });
        let v = f64::from(mv) / 1000.0;
        let out = dac.write(adc.convert(Volts(v)));
        prop_assert!((out.0 - v).abs() <= 1.5 * adc.lsb(), "{v} -> {}", out.0);
    }

    #[test]
    fn pga_output_never_exceeds_rails(
        gain_code in 0u8..=9,
        v in -10.0f64..10.0,
    ) {
        let mut pga = ascp_afe::amp::Pga::new(100_000.0, 0.0, 0.0, 0.0, 3);
        pga.set_gain_code(gain_code);
        let mut y = Volts(0.0);
        for _ in 0..5000 {
            y = pga.process(Volts(v), 1.0e-6);
        }
        prop_assert!(y.0.abs() <= 2.5 + 1e-12, "railed past 2.5: {}", y.0);
    }
}
