//! Offline property-testing shim.
//!
//! This crate implements the subset of the `proptest` API that the ASCP
//! test suite uses — `proptest!`, `prop_assert*`, `prop_assume!`, `any`,
//! numeric range strategies, tuple strategies, `prop_map`, and
//! `collection::vec` — so the property tests run with **no registry
//! access**. It is a behavioural stand-in, not a fork: cases are sampled
//! from a deterministic per-test PRNG and failures are reported with the
//! sampled inputs, but there is **no shrinking** and no persistence of
//! failing cases (`*.proptest-regressions` files are ignored).
//!
//! If you have network access and want the real engine, point the
//! workspace `proptest` dependency back at crates.io — the test sources
//! are written against the upstream API and compile against either.

use std::ops::{Range, RangeFrom, RangeInclusive};

/// Deterministic xorshift64* generator used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator; zero is remapped internally.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Self {
            state: if z == 0 { 1 } else { z },
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Modulo bias is irrelevant at test-sampling quality.
        self.next_u64() % n
    }
}

/// A source of values for one generated test argument.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f` (upstream: `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value (upstream: `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (upstream: `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 != 0
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning a wide magnitude range.
        let mag = rng.next_f64() * 2.0 - 1.0;
        let exp = rng.below(64) as i32 - 32;
        mag * f64::from(exp).exp2()
    }
}

/// Strategy for an unconstrained value of `A` (upstream: `any`).
#[derive(Debug, Clone, Default)]
pub struct Any<A>(std::marker::PhantomData<A>);

/// Returns the canonical strategy for any value of `A`.
#[must_use]
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// Integers sampleable uniformly from a range (implementation detail).
pub trait SampleUniform: Copy {
    /// Uniform draw in `[lo, hi]`.
    fn uniform_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    /// Uniform draw in `[lo, hi)`; the range must be non-empty.
    fn uniform_exclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    /// The maximum representable value (for `lo..` ranges).
    const MAX_VALUE: Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn uniform_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + draw) as $t
            }
            fn uniform_exclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + draw) as $t
            }
            const MAX_VALUE: Self = <$t>::MAX;
        }
    )*};
}

sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::uniform_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::uniform_inclusive(*self.start(), *self.end(), rng)
    }
}

impl<T: SampleUniform> Strategy for RangeFrom<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::uniform_inclusive(self.start, T::MAX_VALUE, rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.next_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
}

/// Collection strategies (upstream: `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification accepted by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner types (upstream: `proptest::test_runner`).
pub mod test_runner {
    use super::TestRng;

    /// Per-block configuration (upstream: `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
        /// Maximum rejected (`prop_assume!`) cases before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl Config {
        /// A config running `cases` successful cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// An assertion failure carrying `msg`.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// An input rejection carrying `msg`.
        #[must_use]
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }

        /// `true` for [`TestCaseError::Reject`].
        #[must_use]
        pub fn is_reject(&self) -> bool {
            matches!(self, Self::Reject(_))
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Self::Reject(m) => write!(f, "input rejected: {m}"),
                Self::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    /// Result type each generated case body produces.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Derives a deterministic per-test seed from the test path.
    #[must_use]
    pub fn seed_for(test_name: &str) -> u64 {
        // FNV-1a: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `case` until `config.cases` successes; panics on the first
    /// failure, echoing the sampled inputs via the message `case` builds.
    pub fn run(
        config: &Config,
        test_name: &str,
        mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
    ) {
        let mut rng = TestRng::new(seed_for(test_name));
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(e) if e.is_reject() => {
                    rejected += 1;
                    assert!(
                        rejected <= config.max_global_rejects,
                        "{test_name}: too many prop_assume! rejections ({rejected})"
                    );
                }
                Err(e) => panic!("{test_name}: case failed after {passed} passing cases\n{e}"),
            }
        }
    }
}

/// Everything the test files import (upstream: `proptest::prelude::*`).
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest, Just, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                $crate::test_runner::run(&config, test_name, |rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                    // Echo string built before the body so the body may
                    // freely consume the inputs by value.
                    let __proptest_inputs = [
                        $(format!(concat!(stringify!($arg), " = {:?}"), $arg)),+
                    ]
                    .join(", ");
                    let result: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match result {
                        ::std::result::Result::Err(e) if !e.is_reject() => {
                            ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                                format!("{e}\ninputs: {__proptest_inputs}"),
                            ))
                        }
                        other => other,
                    }
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::{run, seed_for, Config, TestCaseError};

    #[test]
    fn rng_is_deterministic_per_name() {
        assert_eq!(seed_for("a::b"), seed_for("a::b"));
        assert_ne!(seed_for("a::b"), seed_for("a::c"));
    }

    #[test]
    fn failing_case_panics_with_message() {
        let result = std::panic::catch_unwind(|| {
            run(&Config::with_cases(4), "shim::fail_demo", |rng| {
                let v = crate::Strategy::sample(&(0u8..=255), rng);
                let _ = v;
                Err(TestCaseError::fail("always fails"))
            });
        });
        let msg = *result
            .expect_err("must panic")
            .downcast::<String>()
            .expect("string panic");
        assert!(msg.contains("always fails"), "panic message: {msg}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3u32..=9, b in -5i32..5, x in 0.25f64..0.75) {
            prop_assert!((3..=9).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&x), "x = {x}");
        }

        #[test]
        fn range_from_saturates_high(v in 250u8..) {
            prop_assert!(v >= 250);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
        }

        #[test]
        fn map_applies(v in any::<i32>().prop_map(|x| i64::from(x) * 2)) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn assume_rejects_and_redraws(v in 0u8..=255) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn tuples_sample_elementwise(pair in (any::<bool>(), 1u8..=3)) {
            prop_assert!((1..=3).contains(&pair.1));
        }

        #[test]
        fn body_may_consume_inputs(v in crate::collection::vec(any::<u16>(), 1..4)) {
            let owned: Vec<u16> = v;
            prop_assert!(!owned.is_empty());
        }
    }
}
