//! # ASCP — Automotive Sensor Conditioning Platform
//!
//! A pure-Rust reproduction of *Platform Based Design for Automotive Sensor
//! Conditioning* (Fanucci, Giambastiani, Iozzi, Marino, Rocchi — DATE
//! 2005): a generic mixed-signal platform for conditioning automotive
//! sensors, customized for the paper's case study — a MEMS vibrating-ring
//! yaw-rate gyroscope.
//!
//! This facade crate re-exports the subsystem crates:
//!
//! | crate | role |
//! |---|---|
//! | [`core`] ([`ascp_core`]) | the platform: system model, fixed-point chain, co-simulation, characterization |
//! | [`sim`] ([`ascp_sim`]) | simulation kernel: time base, traces, noise, stats |
//! | [`dsp`] ([`ascp_dsp`]) | fixed-point DSP IP portfolio |
//! | [`mems`] ([`ascp_mems`]) | sensor physics models |
//! | [`afe`] ([`ascp_afe`]) | analog front-end models |
//! | [`jtag`] ([`ascp_jtag`]) | IEEE 1149.1 configuration interface |
//! | [`mcu8051`] ([`ascp_mcu8051`]) | 8051 CPU, assembler, peripherals |
//!
//! # Quickstart
//!
//! ```
//! use ascp::core::prelude::*;
//! use ascp::sim::units::DegPerSec;
//!
//! let cfg = PlatformConfig::builder()
//!     .cpu_enabled(false) // faster for a doc test
//!     .build()
//!     .expect("valid config");
//! let mut platform = Platform::new(cfg);
//! let turn_on = platform.wait_for_ready(2.0).expect("lock");
//! assert!(turn_on.0 < 1.5);
//! platform.set_rate(DegPerSec(120.0));
//! platform.run(0.3);
//! let dps = platform.rate_output_dps().abs();
//! assert!((dps - 120.0).abs() < 15.0, "read {dps} °/s");
//! ```

pub use ascp_afe as afe;
pub use ascp_core as core;
pub use ascp_dsp as dsp;
pub use ascp_jtag as jtag;
pub use ascp_mcu8051 as mcu8051;
pub use ascp_mems as mems;
pub use ascp_sim as sim;
